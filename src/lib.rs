//! # polyquery
//!
//! A Rust implementation of **"Handling Non-linear Polynomial Queries over
//! Dynamic Data"** (Shah & Ramamritham, ICDE 2008): accuracy-bounded
//! monitoring of polynomial continuous queries over rapidly changing,
//! distributed data.
//!
//! Given queries `P(x_1..x_n) : B` — each a polynomial over data items with
//! a user accuracy bound `B` — the system assigns every data item a push
//! filter (*Data Accuracy Bound*, DAB) such that:
//!
//! 1. whenever each item is within its DAB, every query is within its
//!    accuracy bound (*correctness*);
//! 2. sources push as few refreshes as possible (*communication
//!    efficiency*); and
//! 3. the DABs themselves are recomputed as rarely as possible — for
//!    non-linear queries the filters depend on current data values and go
//!    stale, and the paper shows recomputation cost can dominate.
//!
//! The headline technique is the **Dual-DAB** assignment: a tight primary
//! filter at the source plus a wider secondary validity range at the
//! coordinator, jointly optimized by geometric programming, trading a few
//! extra refreshes for an order-of-magnitude drop in recomputations.
//!
//! ## Crates
//!
//! | Crate | Contents |
//! |---|---|
//! | [`pq_gp`] | from-scratch geometric-programming solver |
//! | [`pq_poly`] | polynomial queries, QAB-condition construction |
//! | [`pq_ddm`] | traces, rate estimation, data-dynamics models |
//! | [`pq_core`] | the DAB assignment algorithms (the paper's contribution) |
//! | [`pq_sim`] | discrete-event evaluation harness |
//! | [`pq_workload`] | the paper's §V-A workloads |
//!
//! ## Quick start
//!
//! ```
//! use polyquery::{Monitor, PolynomialQuery};
//!
//! let mut monitor = Monitor::new();
//! let ibm = monitor.add_item("ibm", 100.0, 0.5);   // value, rate of change
//! let usd = monitor.add_item("usd_inr", 80.0, 0.05);
//! monitor.add_query(PolynomialQuery::portfolio([(10.0, ibm, usd)], 800.0).unwrap());
//!
//! // Ship these filters to the sources:
//! let filters = monitor.install().unwrap();
//! assert!(!filters.is_empty());
//!
//! // Feed refreshes as they arrive; the monitor tells you who to notify
//! // and which filters changed.
//! let outcome = monitor.on_refresh(ibm, 101.0).unwrap();
//! assert!(outcome.notify.is_empty()); // 10*1*80 = 800 not exceeded
//! ```

#![warn(missing_docs)]

pub mod monitor;

pub use monitor::{Monitor, RefreshOutcome};

// Re-export the subsystem crates under stable names.
pub use pq_core as core;
pub use pq_ddm as ddm;
pub use pq_gp as gp;
pub use pq_obs as obs;
pub use pq_poly as poly;
pub use pq_sim as sim;
pub use pq_workload as workload;

// Flat re-exports of the types almost every user touches.
pub use pq_core::{
    assign_query, AssignmentStrategy, CoordinatorAssignment, DabError, PqHeuristic,
    QueryAssignment, SolveContext, ValidityRange,
};
pub use pq_ddm::{DataDynamicsModel, RateEstimator, Trace, TraceSet};
pub use pq_obs::{Obs, ObsConfig};
pub use pq_poly::{ItemCatalog, ItemId, Polynomial, PolynomialQuery, QueryClass, QueryId};
