//! A coordinator runtime for embedding accuracy-bounded monitoring.
//!
//! [`Monitor`] is the high-level API a downstream application uses: register
//! data items and polynomial queries, install DAB filters, then feed it
//! refreshes as they arrive. It maintains Condition 1 (every query within
//! its QAB whenever every item is within its filter), recomputes stale
//! assignments automatically, and reports exactly which filters must be
//! re-shipped to which sources.
//!
//! The discrete-event simulator in [`pq_sim`] exists to *evaluate* the
//! algorithms; `Monitor` is the piece you would deploy.

use pq_core::{
    assign_unit_cached, assignment_units, default_recompute_threads, filter_changed,
    recompute_parallel, AssignmentStrategy, AssignmentUnit, DabError, PqHeuristic, QueryAssignment,
    RecomputeJob, SolveCache, SolveContext,
};
use pq_ddm::DataDynamicsModel;
use pq_gp::SolverOptions;
use pq_obs::{names, EventKind, Obs, ObsConfig, Watchdog};
use pq_poly::{ItemCatalog, ItemId, PolyError, Polynomial, PolynomialQuery, QueryId};
use std::sync::Arc;

/// What happened when a refresh was applied.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefreshOutcome {
    /// Queries whose value moved past their QAB, with the new values —
    /// push these to the interested users.
    pub notify: Vec<(QueryId, f64)>,
    /// Queries whose DABs were recomputed because the refresh invalidated
    /// their assignment.
    pub recomputed: Vec<QueryId>,
    /// Items whose installed filters changed — ship these to the sources.
    pub filter_changes: Vec<(ItemId, f64)>,
}

/// Builder-style configuration + runtime state for one coordinator.
#[derive(Debug)]
pub struct Monitor {
    catalog: ItemCatalog,
    values: Vec<f64>,
    rates: Vec<f64>,
    queries: Vec<PolynomialQuery>,
    last_notified: Vec<f64>,
    strategy: AssignmentStrategy,
    heuristic: PqHeuristic,
    ddm: DataDynamicsModel,
    gp: SolverOptions,
    /// Per-query maintenance units (two under Half-and-Half, else one).
    units: Vec<Vec<AssignmentUnit>>,
    assignments: Vec<Vec<QueryAssignment>>,
    item_dabs: Vec<f64>,
    /// For each item index, the queries referencing it (built at install).
    item_queries: Vec<Vec<usize>>,
    /// Warm-start caches, one per (query, unit).
    cache: SolveCache,
    /// Max worker threads for recompute fan-out (1 = serial).
    threads: usize,
    installed: bool,
    /// Telemetry handle; threaded into every GP solve.
    obs: Obs,
    /// Optional liveness watchdog, beaten on every applied refresh so the
    /// live exporter's `/health` can flag a wedged coordinator.
    watchdog: Option<Arc<Watchdog>>,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// A monitor with the paper's recommended defaults: Dual-DAB with
    /// `mu = 5`, Different-Sum for mixed signs, monotonic ddm.
    pub fn new() -> Self {
        Monitor {
            catalog: ItemCatalog::new(),
            values: Vec::new(),
            rates: Vec::new(),
            queries: Vec::new(),
            last_notified: Vec::new(),
            strategy: AssignmentStrategy::DualDab { mu: 5.0 },
            heuristic: PqHeuristic::DifferentSum,
            ddm: DataDynamicsModel::Monotonic,
            gp: SolverOptions::default(),
            units: Vec::new(),
            assignments: Vec::new(),
            item_dabs: Vec::new(),
            item_queries: Vec::new(),
            cache: SolveCache::new(),
            threads: default_recompute_threads(),
            installed: false,
            obs: Obs::null(),
            watchdog: None,
        }
    }

    /// Caps the recompute fan-out at `threads` worker threads (also capped
    /// at the machine's available parallelism). `1` forces the serial
    /// path; results are identical either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a telemetry handle: install/refresh outcomes and all DAB
    /// and GP solver timings are reported through it (see [`pq_obs`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Builds a telemetry handle from a configuration and attaches it.
    ///
    /// # Errors
    /// I/O errors from opening the configured JSONL trace file.
    pub fn with_obs_config(self, config: &ObsConfig) -> std::io::Result<Self> {
        Ok(self.with_obs(Obs::from_config(config)?))
    }

    /// The attached telemetry handle (null unless configured).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Arms a liveness watchdog: every applied refresh heartbeats it, and
    /// the handle is installed on the telemetry plane so the live
    /// exporter's `/health` reports `stalled` when no refresh has been
    /// applied for `stall_after`. Only meaningful for deployments with a
    /// steady refresh stream — an idle-by-design coordinator should not
    /// arm one. Call after [`Monitor::with_obs`] / `with_obs_config` so
    /// the watchdog lands on the final handle.
    pub fn with_watchdog(mut self, stall_after: std::time::Duration) -> Self {
        let watchdog = Arc::new(Watchdog::new(stall_after));
        self.obs.install_watchdog(watchdog.clone());
        self.watchdog = Some(watchdog);
        self
    }

    /// The armed watchdog, if any.
    pub fn watchdog(&self) -> Option<&Arc<Watchdog>> {
        self.watchdog.as_ref()
    }

    /// Replaces the assignment strategy (before or after `install`).
    pub fn with_strategy(mut self, strategy: AssignmentStrategy) -> Self {
        self.strategy = strategy;
        self.installed = false;
        self
    }

    /// Replaces the mixed-sign heuristic.
    pub fn with_heuristic(mut self, heuristic: PqHeuristic) -> Self {
        self.heuristic = heuristic;
        self.installed = false;
        self
    }

    /// Replaces the data-dynamics model.
    pub fn with_ddm(mut self, ddm: DataDynamicsModel) -> Self {
        self.ddm = ddm;
        self.installed = false;
        self
    }

    /// Registers a data item with its current value and estimated rate of
    /// change (per unit time). Re-registering a name updates it.
    pub fn add_item(&mut self, name: &str, value: f64, rate: f64) -> ItemId {
        let id = self.catalog.intern(name);
        if id.index() >= self.values.len() {
            self.values.resize(id.index() + 1, 0.0);
            self.rates.resize(id.index() + 1, 0.0);
        }
        self.values[id.index()] = value;
        self.rates[id.index()] = rate;
        self.installed = false;
        id
    }

    /// Looks up a registered item by name.
    pub fn item(&self, name: &str) -> Option<ItemId> {
        self.catalog.get(name)
    }

    /// Registers a query built from a [`PolynomialQuery`].
    pub fn add_query(&mut self, query: PolynomialQuery) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        self.last_notified.push(query.eval(&self.values));
        self.queries.push(query);
        self.installed = false;
        id
    }

    /// Registers a query from an expression string (item names are
    /// resolved/created in the monitor's catalog), e.g.
    /// `"3 ibm usd + 2 tcs inr"`.
    pub fn add_query_str(&mut self, expr: &str, qab: f64) -> Result<QueryId, PolyError> {
        let poly: Polynomial = pq_poly::parse_polynomial(expr, &mut self.catalog)?;
        if self.catalog.len() > self.values.len() {
            // Items first mentioned in the expression default to value 0 /
            // rate 0 until `add_item` updates them.
            self.values.resize(self.catalog.len(), 0.0);
            self.rates.resize(self.catalog.len(), 0.0);
        }
        Ok(self.add_query(PolynomialQuery::new(poly, qab)?))
    }

    /// The registered queries.
    pub fn queries(&self) -> &[PolynomialQuery] {
        &self.queries
    }

    /// Computes DAB assignments for every query and derives the installed
    /// per-item filters (EQI minimum rule). Returns the filters to ship.
    pub fn install(&mut self) -> Result<Vec<(ItemId, f64)>, DabError> {
        let _span = self.obs.timed(names::MONITOR_INSTALL);
        self.units = self
            .queries
            .iter()
            .map(|q| assignment_units(q, self.strategy, self.heuristic))
            .collect();
        // Shape the warm-start caches to the unit decomposition and index
        // which queries reference each item (used by on_refresh to touch
        // only affected queries instead of scanning all of them).
        let unit_counts: Vec<usize> = self.units.iter().map(Vec::len).collect();
        self.cache.resize(&unit_counts);
        self.item_queries = vec![Vec::new(); self.values.len()];
        for (qi, q) in self.queries.iter().enumerate() {
            for it in q.items() {
                self.item_queries[it.index()].push(qi);
            }
        }
        let mut assignments = Vec::with_capacity(self.units.len());
        for (qi, units) in self.units.iter().enumerate() {
            // Attribute the install-time solves to their query.
            let ctx = SolveContext {
                values: &self.values,
                rates: &self.rates,
                ddm: self.ddm,
                gp: self.solver_options(Some(qi as u32)),
            };
            let mut per_query = Vec::with_capacity(units.len());
            for (ui, u) in units.iter().enumerate() {
                per_query.push(assign_unit_cached(
                    u,
                    &ctx,
                    self.strategy,
                    self.cache.unit_mut(qi, ui),
                )?);
            }
            assignments.push(per_query);
        }
        self.assignments = assignments;
        self.item_dabs = vec![f64::INFINITY; self.values.len()];
        for per_query in &self.assignments {
            for qa in per_query {
                for (&item, &b) in &qa.primary {
                    let d = &mut self.item_dabs[item.index()];
                    *d = d.min(b);
                }
            }
        }
        self.installed = true;
        let filters: Vec<(ItemId, f64)> = self
            .item_dabs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_finite())
            .map(|(i, &b)| (ItemId(i as u32), b))
            .collect();
        self.obs
            .emit_with(names::MONITOR_INSTALL, EventKind::Point, |e| {
                e.with("n_queries", self.queries.len())
                    .with("n_items", self.values.len())
                    .with("n_filters", filters.len())
            });
        Ok(filters)
    }

    /// Solver options with this monitor's telemetry handle attached,
    /// attributed to `query` when given (its GP solves then carry
    /// `query=<qi>` labels).
    fn solver_options(&self, query: Option<u32>) -> SolverOptions {
        let mut gp = self.gp.clone();
        gp.obs = self.obs.clone();
        gp.query = query;
        gp
    }

    /// True once `install` has run and no registration changed since.
    pub fn is_installed(&self) -> bool {
        self.installed
    }

    /// The filter currently installed for `item` (None if the item is not
    /// referenced by any query).
    pub fn filter(&self, item: ItemId) -> Option<f64> {
        self.item_dabs
            .get(item.index())
            .copied()
            .filter(|b| b.is_finite())
    }

    /// The coordinator's cached value of `item`.
    pub fn value(&self, item: ItemId) -> Option<f64> {
        self.values.get(item.index()).copied()
    }

    /// The cached value of query `q`.
    pub fn query_value(&self, q: QueryId) -> Option<f64> {
        self.queries.get(q.index()).map(|qq| qq.eval(&self.values))
    }

    /// Applies an arriving refresh: updates the cached value, determines
    /// user notifications, recomputes any invalidated assignments, and
    /// reports filter changes to ship back to sources.
    ///
    /// # Errors
    /// Solver errors if a recomputation fails; [`Monitor::install`] must
    /// have been called first (panics otherwise — a programming error).
    pub fn on_refresh(&mut self, item: ItemId, value: f64) -> Result<RefreshOutcome, DabError> {
        assert!(self.installed, "call install() before feeding refreshes");
        assert!(item.index() < self.values.len(), "unknown item");
        if let Some(watchdog) = &self.watchdog {
            watchdog.beat();
        }
        self.values[item.index()] = value;
        let mut outcome = RefreshOutcome::default();

        // Only queries referencing the item can notify or go stale; the
        // per-item index (built at install) avoids scanning every query.
        let mut stale: Vec<(usize, usize)> = Vec::new();
        for &qi in &self.item_queries[item.index()] {
            let q = &self.queries[qi];
            let qv = q.eval(&self.values);
            if (qv - self.last_notified[qi]).abs() > q.qab() {
                self.last_notified[qi] = qv;
                outcome.notify.push((QueryId(qi as u32), qv));
            }
            for (ui, a) in self.assignments[qi].iter().enumerate() {
                if !a.is_valid_at(&self.values) {
                    stale.push((qi, ui));
                }
            }
        }
        if !stale.is_empty() {
            // Fan the independent unit recomputes out over worker threads.
            // Staleness depends only on each unit's own assignment and the
            // (already updated) values, so collecting first then solving in
            // parallel is equivalent to the old solve-as-you-scan loop; the
            // results merge back in collection order, keeping counters,
            // outcome lists and installed filters byte-identical to a
            // serial run.
            let mut jobs: Vec<RecomputeJob<'_>> = Vec::with_capacity(stale.len());
            for &(qi, ui) in &stale {
                let gp = self.solver_options(Some(qi as u32));
                let cache = self.cache.take(qi, ui);
                jobs.push(RecomputeJob {
                    qi,
                    ui,
                    unit: &self.units[qi][ui],
                    ctx: SolveContext {
                        values: &self.values,
                        rates: &self.rates,
                        ddm: self.ddm,
                        gp,
                    },
                    cache,
                });
            }
            let done = recompute_parallel(jobs, self.strategy, self.threads);
            let mut failure: Option<DabError> = None;
            for d in done {
                self.cache.put_back(d.qi, d.ui, d.cache);
                match d.result {
                    Ok(a) if failure.is_none() => {
                        self.assignments[d.qi][d.ui] = a;
                        self.obs.counter(names::DAB_RECOMPUTE).inc();
                        self.obs
                            .labeled_counter(
                                names::DAB_RECOMPUTE,
                                names::LABEL_QUERY,
                                &d.qi.to_string(),
                            )
                            .inc();
                        self.obs
                            .emit_with(names::DAB_RECOMPUTE, EventKind::Count, |e| {
                                e.with("query", d.qi)
                                    .with("unit", d.ui)
                                    .with("item", item.index())
                                    .with("reason", "validity")
                            });
                        let id = QueryId(d.qi as u32);
                        if outcome.recomputed.last() != Some(&id) {
                            outcome.recomputed.push(id);
                        }
                    }
                    Ok(_) => {}
                    Err(e) => {
                        if failure.is_none() {
                            failure = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = failure {
                return Err(e);
            }
        }
        // Attribution: this item's refresh forced recomputations.
        if !outcome.recomputed.is_empty() {
            self.obs
                .labeled_counter(
                    names::DAB_RECOMPUTE_TRIGGER,
                    names::LABEL_ITEM,
                    &item.index().to_string(),
                )
                .inc();
            self.obs
                .emit_with(names::DAB_RECOMPUTE_TRIGGER, EventKind::Count, |e| {
                    e.with("item", item.index())
                        .with("recomputes", outcome.recomputed.len())
                });
        }

        // Re-derive installed filters for items touched by recomputed
        // queries.
        if !outcome.recomputed.is_empty() {
            let mut touched: Vec<usize> = outcome
                .recomputed
                .iter()
                .flat_map(|q| self.queries[q.index()].items())
                .map(|i| i.index())
                .collect();
            touched.sort_unstable();
            touched.dedup();
            for i in touched {
                // Only queries referencing item i can contribute a primary
                // DAB for it, so the min runs over the per-item index, not
                // every assignment in the system.
                let mut m = f64::INFINITY;
                for &qi in &self.item_queries[i] {
                    for qa in &self.assignments[qi] {
                        if let Some(b) = qa.primary_dab(ItemId(i as u32)) {
                            m = m.min(b);
                        }
                    }
                }
                let old = self.item_dabs[i];
                let changed = if old.is_finite() && m.is_finite() {
                    filter_changed(old, m)
                } else {
                    old.is_finite() != m.is_finite()
                };
                if changed {
                    self.item_dabs[i] = m;
                    outcome.filter_changes.push((ItemId(i as u32), m));
                }
            }
        }
        self.obs
            .emit_with(names::MONITOR_REFRESH, EventKind::Point, |e| {
                e.with("item", item.index())
                    .with("value", value)
                    .with("notified", outcome.notify.len())
                    .with("recomputed", outcome.recomputed.len())
                    .with("filter_changes", outcome.filter_changes.len())
            });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_item_monitor() -> (Monitor, ItemId, ItemId, QueryId) {
        let mut m = Monitor::new();
        let x = m.add_item("x", 2.0, 1.0);
        let y = m.add_item("y", 2.0, 1.0);
        let q = m.add_query(PolynomialQuery::portfolio([(1.0, x, y)], 5.0).unwrap());
        m.install().unwrap();
        (m, x, y, q)
    }

    #[test]
    fn install_ships_finite_filters() {
        let (m, x, y, _) = two_item_monitor();
        assert!(m.is_installed());
        assert!(m.filter(x).unwrap() > 0.0);
        assert!(m.filter(y).unwrap() > 0.0);
    }

    #[test]
    fn refresh_within_range_neither_notifies_nor_recomputes() {
        let (mut m, x, _, _) = two_item_monitor();
        // A tiny change: inside the QAB and inside the validity range.
        let out = m.on_refresh(x, 2.01).unwrap();
        assert!(out.notify.is_empty());
        assert!(out.recomputed.is_empty());
        assert!(out.filter_changes.is_empty());
    }

    #[test]
    fn large_move_notifies_and_eventually_recomputes() {
        let (mut m, x, _, q) = two_item_monitor();
        // Jump x from 2 to 30: query value 4 -> 60, way past QAB 5, and far
        // outside any secondary range.
        let out = m.on_refresh(x, 30.0).unwrap();
        assert_eq!(out.notify, vec![(q, 60.0)]);
        assert_eq!(out.recomputed, vec![q]);
        assert!(!out.filter_changes.is_empty());
        assert_eq!(m.query_value(q), Some(60.0));
    }

    #[test]
    fn query_strings_parse_against_the_catalog() {
        let mut m = Monitor::new();
        m.add_item("ibm", 100.0, 0.5);
        m.add_item("usd", 80.0, 0.1);
        let q = m.add_query_str("2 ibm usd", 100.0).unwrap();
        m.install().unwrap();
        assert_eq!(m.query_value(q), Some(16000.0));
    }

    #[test]
    fn reinstall_required_after_new_query() {
        let (mut m, x, y, _) = two_item_monitor();
        m.add_query(PolynomialQuery::portfolio([(2.0, x, y)], 3.0).unwrap());
        assert!(!m.is_installed());
        m.install().unwrap();
        // The tighter second query shrinks the installed filters.
        assert!(m.filter(x).unwrap() > 0.0);
    }

    #[test]
    fn telemetry_reports_install_and_refresh_outcomes() {
        let (obs, ring) = Obs::ring(4096);
        let mut m = Monitor::new().with_obs(obs.clone());
        let x = m.add_item("x", 2.0, 1.0);
        let y = m.add_item("y", 2.0, 1.0);
        m.add_query(PolynomialQuery::portfolio([(1.0, x, y)], 5.0).unwrap());
        m.install().unwrap();
        m.on_refresh(x, 30.0).unwrap();

        let events = ring.events();
        assert!(events.iter().any(|e| e.target == names::MONITOR_INSTALL));
        let refresh = events
            .iter()
            .find(|e| e.target == names::MONITOR_REFRESH)
            .expect("refresh event");
        assert_eq!(refresh.field("recomputed"), Some(&pq_obs::Value::U64(1)));
        // The GP solver ran under the same registry.
        let snap = obs.snapshot();
        assert!(snap.histograms["gp.solve_ns"].count > 0);
        assert!(snap.histograms["monitor.install_ns"].count == 1);
        // Attribution: the recomputation and its GP solves carry query 0,
        // and the trigger is charged to the item that forced it.
        assert_eq!(snap.counters["dab.recompute"], 1);
        assert_eq!(snap.labeled["dab.recompute"].key, "query");
        assert_eq!(snap.labeled["dab.recompute"].values["0"], 1);
        assert_eq!(snap.labeled["dab.recompute_trigger"].key, "item");
        assert_eq!(snap.labeled["dab.recompute_trigger"].values["0"], 1);
        assert!(snap.labeled["gp.solve"].values["0"] >= 1);
    }

    #[test]
    fn watchdog_beats_on_refresh_and_lands_on_the_obs_handle() {
        let obs = Obs::null();
        let mut m = Monitor::new()
            .with_obs(obs.clone())
            .with_watchdog(std::time::Duration::from_secs(60));
        let x = m.add_item("x", 2.0, 1.0);
        let y = m.add_item("y", 2.0, 1.0);
        m.add_query(PolynomialQuery::portfolio([(1.0, x, y)], 5.0).unwrap());
        m.install().unwrap();
        use pq_obs::slo::WatchdogStatus;
        let installed = obs.watchdog().expect("watchdog installed on the handle");
        assert_eq!(installed.status(), WatchdogStatus::Disarmed, "no beat yet");
        m.on_refresh(x, 2.2).unwrap();
        assert_eq!(installed.status(), WatchdogStatus::Ok);
        // Deterministic stall check: far past the threshold, same episode.
        let far = pq_obs::now_ns() + 120_000_000_000;
        assert_eq!(installed.status_at(far), WatchdogStatus::Stalled);
    }

    #[test]
    fn condition1_holds_through_a_run() {
        // Feed a drifting series of refreshes; after each, every query
        // assignment must still respect its QAB at the new anchor.
        let (mut m, x, y, _) = two_item_monitor();
        let mut vx = 2.0;
        let mut vy = 2.0;
        for step in 0..50 {
            if step % 2 == 0 {
                vx += 0.4;
                m.on_refresh(x, vx).unwrap();
            } else {
                vy += 0.3;
                m.on_refresh(y, vy).unwrap();
            }
            for (per_query, units) in m.assignments.iter().zip(&m.units) {
                for (qa, u) in per_query.iter().zip(units) {
                    let uq = PolynomialQuery::new(u.body.clone(), u.qab).unwrap();
                    assert!(qa.respects_qab(&uq, 1e-6), "step {step}");
                }
            }
        }
    }
}
