//! Property-based tests of the system's core invariants.

use proptest::prelude::*;

use polyquery::core::{
    assign_query, dual_dab, optimal_refresh, AssignmentStrategy, PqHeuristic, SolveContext,
};
use polyquery::gp::{GpProblem, Monomial, Posynomial, SolverOptions};
use polyquery::poly::{PTerm, Polynomial};
use polyquery::{ItemId, PolynomialQuery};

fn x(i: u32) -> ItemId {
    ItemId(i)
}

/// Strategy for a 2-4 item positive-coefficient degree-2 polynomial.
fn ppq_body() -> impl Strategy<Value = Polynomial> {
    // Legs as (weight, item a, item b) with items in 0..4.
    proptest::collection::vec((0.5f64..50.0, 0u32..4, 0u32..4), 1..4)
        .prop_map(|legs| {
            Polynomial::from_terms(
                legs.into_iter()
                    .map(|(w, a, b)| PTerm::new(w, [(x(a), 1), (x(b), 1)]).unwrap()),
            )
        })
        .prop_filter("degree 2 required", |p| p.degree() >= 2)
}

fn values4() -> impl Strategy<Value = [f64; 4]> {
    [0.5f64..100.0, 0.5f64..100.0, 0.5f64..100.0, 0.5f64..100.0]
}

fn rates4() -> impl Strategy<Value = [f64; 4]> {
    [0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Condition 1: every optimal-refresh assignment keeps the worst-case
    /// deviation within the QAB at its anchor.
    #[test]
    fn optimal_refresh_respects_qab(
        body in ppq_body(),
        values in values4(),
        rates in rates4(),
        qab_frac in 0.001f64..0.2,
    ) {
        let initial = body.eval(&values);
        prop_assume!(initial > 1e-6);
        let q = PolynomialQuery::new(body, qab_frac * initial).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = optimal_refresh(&q, &ctx).unwrap();
        prop_assert!(a.respects_qab(&q, 1e-5 * q.qab() + 1e-9));
        prop_assert!(a.primary.values().all(|&b| b > 0.0 && b.is_finite()));
    }

    /// Dual-DAB keeps the QAB over its *entire* validity range, and the
    /// secondary DABs dominate the primary ones.
    #[test]
    fn dual_dab_valid_over_whole_range(
        body in ppq_body(),
        values in values4(),
        rates in rates4(),
        mu in 0.5f64..20.0,
    ) {
        let initial = body.eval(&values);
        prop_assume!(initial > 1e-6);
        let q = PolynomialQuery::new(body, 0.02 * initial).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = dual_dab(&q, &ctx, mu).unwrap();
        prop_assert!(a.respects_qab(&q, 1e-5 * q.qab() + 1e-9));
        for (&item, &b) in &a.primary {
            let c = a.secondary_dab(item).unwrap();
            prop_assert!(c >= b - 1e-9, "c_{item} = {c} < b = {b}");
        }
        prop_assert!(a.recompute_rate >= 0.0);
    }

    /// Claim 1: DABs derived from `P1 + P2 : B` (Different Sum) always
    /// satisfy the general query `P1 - P2 : B` over the whole box.
    #[test]
    fn different_sum_claim1(
        pos in ppq_body(),
        neg in ppq_body(),
        values in values4(),
        rates in rates4(),
    ) {
        let body = pos.sub(&neg);
        prop_assume!(!body.is_zero());
        let (p1, p2) = body.split_pos_neg();
        prop_assume!(!p1.is_zero() && !p2.is_zero());
        let magnitude = p1.eval(&values) + p2.eval(&values);
        prop_assume!(magnitude > 1e-6);
        let q = PolynomialQuery::new(body, 0.02 * magnitude).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = assign_query(
            &q,
            &ctx,
            AssignmentStrategy::DualDab { mu: 5.0 },
            PqHeuristic::DifferentSum,
        ).unwrap();
        prop_assert!(a.respects_qab(&q, 1e-5 * q.qab() + 1e-9));
    }

    /// The GP solver returns feasible points whose objective cannot be
    /// beaten by scaled perturbations of themselves.
    #[test]
    fn gp_solutions_are_feasible_and_locally_optimal(
        a in 0.1f64..10.0,
        b in 0.1f64..10.0,
        bound in 1.0f64..50.0,
    ) {
        // min a/x + b/y s.t. x + y <= bound.
        let mut p = GpProblem::new(2);
        let mut obj = Posynomial::monomial(Monomial::new(a, [(0, -1.0)]).unwrap());
        obj.add(&Posynomial::monomial(Monomial::new(b, [(1, -1.0)]).unwrap()));
        p.set_objective(obj.clone()).unwrap();
        let mut c = Posynomial::monomial(Monomial::new(1.0, [(0, 1.0)]).unwrap());
        c.add(&Posynomial::monomial(Monomial::new(1.0, [(1, 1.0)]).unwrap()));
        p.add_constraint_le(c, bound).unwrap();
        let start = [bound / 4.0, bound / 4.0];
        let sol = polyquery::gp::solve_with_start(&p, &start, &SolverOptions::default()).unwrap();
        prop_assert!(p.max_violation(&sol.x) <= 1e-7);
        // Compare against the closed form:
        // x* = sqrt(a) * bound / (sqrt(a) + sqrt(b)).
        let xs = a.sqrt() * bound / (a.sqrt() + b.sqrt());
        let ys = bound - xs;
        let best = a / xs + b / ys;
        prop_assert!(sol.objective <= best * (1.0 + 1e-5),
            "solver {} vs closed form {best}", sol.objective);
    }

    /// Polynomial algebra: split/recombine and evaluation consistency.
    #[test]
    fn split_recombine_identity(
        pos in ppq_body(),
        neg in ppq_body(),
        values in values4(),
    ) {
        let p = pos.sub(&neg);
        let (p1, p2) = p.split_pos_neg();
        let direct = p.eval(&values);
        let split = p1.eval(&values) - p2.eval(&values);
        prop_assert!((direct - split).abs() <= 1e-9 * (1.0 + direct.abs()));
        prop_assert!(p1.is_positive_coefficient());
        prop_assert!(p2.is_positive_coefficient());
    }

    /// The deviation posynomial is exact: evaluating it at any box widths
    /// equals the worst-case deviation over that box for PPQs.
    #[test]
    fn deviation_posynomial_matches_corner_search(
        body in ppq_body(),
        values in values4(),
        widths in [0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0],
    ) {
        use polyquery::poly::{deviation_posynomial, DabVarMap};
        let vmap = DabVarMap::for_polynomial(&body, false);
        let g = deviation_posynomial(&body, &values, &vmap).unwrap();
        let bvec: Vec<f64> = vmap.items().iter().map(|i| widths[i.index()]).collect();
        let mut dabs = [0.0; 4];
        for &i in vmap.items() {
            dabs[i.index()] = widths[i.index()];
        }
        let exact = body.max_abs_deviation_over_box(&values, &dabs);
        let symbolic = g.eval(&bvec);
        prop_assert!((exact - symbolic).abs() <= 1e-7 * (1.0 + exact.abs()),
            "corner {exact} vs symbolic {symbolic}");
    }
}
