//! Cross-crate integration tests: generated workloads, driven through the
//! discrete-event simulator, asserting the paper's headline trends.

use polyquery::core::{AssignmentStrategy, PqHeuristic};
use polyquery::sim::{run, DelayConfig, SimConfig, SimStrategy};
use polyquery::workload::{WorkloadConfig, WorkloadGen};
use polyquery::TraceSet;

const N_ITEMS: usize = 24;
const N_TICKS: usize = 800;

fn universe() -> TraceSet {
    TraceSet::stock_universe(N_ITEMS, N_TICKS, 0xDEED)
}

fn small_workload() -> WorkloadGen {
    WorkloadGen::with_config(
        WorkloadConfig {
            n_items: N_ITEMS,
            legs: 2..=3,
            ..WorkloadConfig::default()
        },
        0xBEEF,
    )
}

fn config(strategy: SimStrategy, queries_n: usize) -> SimConfig {
    let traces = universe();
    let queries = small_workload().portfolio_queries(queries_n, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.strategy = strategy;
    cfg.delays = DelayConfig::zero();
    cfg
}

fn per_query(strategy: AssignmentStrategy) -> SimStrategy {
    SimStrategy::PerQuery {
        strategy,
        heuristic: PqHeuristic::DifferentSum,
    }
}

#[test]
fn zero_delay_guarantees_fidelity_for_generated_workloads() {
    for strategy in [
        per_query(AssignmentStrategy::OptimalRefresh),
        per_query(AssignmentStrategy::DualDab { mu: 5.0 }),
        per_query(AssignmentStrategy::PerItemSplit),
    ] {
        let m = run(&config(strategy.clone(), 6)).unwrap();
        assert_eq!(
            m.loss_in_fidelity_percent(),
            0.0,
            "{strategy:?} violated a QAB under zero delay"
        );
        assert!(m.refreshes > 0);
    }
}

#[test]
fn fig5_trend_dual_dab_cuts_recomputations() {
    let opt = run(&config(per_query(AssignmentStrategy::OptimalRefresh), 8)).unwrap();
    let dual = run(&config(
        per_query(AssignmentStrategy::DualDab { mu: 5.0 }),
        8,
    ))
    .unwrap();
    // The paper reports a >9x reduction at mu=1 and more at larger mu; at
    // this scale just require a substantial factor.
    assert!(
        dual.recomputations * 3 < opt.recomputations,
        "dual {} vs optimal {}",
        dual.recomputations,
        opt.recomputations
    );
    // And the total cost ordering that motivates the design:
    assert!(dual.total_cost(5.0) < opt.total_cost(5.0));
}

#[test]
fn fig5_trend_mu_scales_the_tradeoff() {
    let m1 = run(&config(
        per_query(AssignmentStrategy::DualDab { mu: 1.0 }),
        6,
    ))
    .unwrap();
    let m10 = run(&config(
        per_query(AssignmentStrategy::DualDab { mu: 10.0 }),
        6,
    ))
    .unwrap();
    assert!(
        m10.recomputations <= m1.recomputations,
        "mu=10 {} vs mu=1 {}",
        m10.recomputations,
        m1.recomputations
    );
    assert!(
        m10.refreshes >= m1.refreshes,
        "mu=10 {} vs mu=1 {}",
        m10.refreshes,
        m1.refreshes
    );
}

#[test]
fn fig8_trend_different_sum_beats_half_and_half() {
    // Drift-dominated traces: the regime of the paper's monotonic ddm,
    // where Fig. 8's DS-over-HH recomputation ordering holds.
    let traces = TraceSet::drifting_universe(N_ITEMS, N_TICKS, 0xD1F7);
    let queries = small_workload().arbitrage_queries(12, &traces.initial_values(), true);
    let run_with = |heuristic| {
        let mut cfg = SimConfig::new(traces.clone(), queries.clone());
        cfg.strategy = SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu: 5.0 },
            heuristic,
        };
        cfg.delays = DelayConfig::zero();
        run(&cfg).unwrap()
    };
    let hh = run_with(PqHeuristic::HalfAndHalf);
    let ds = run_with(PqHeuristic::DifferentSum);
    assert_eq!(hh.loss_in_fidelity_percent(), 0.0);
    assert_eq!(ds.loss_in_fidelity_percent(), 0.0);
    assert!(
        ds.recomputations <= hh.recomputations,
        "DS {} vs HH {}",
        ds.recomputations,
        hh.recomputations
    );
}

#[test]
fn baseline_produces_more_refreshes_than_optimal() {
    let opt = run(&config(per_query(AssignmentStrategy::OptimalRefresh), 6)).unwrap();
    let base = run(&config(per_query(AssignmentStrategy::PerItemSplit), 6)).unwrap();
    assert!(
        base.refreshes >= opt.refreshes,
        "baseline {} vs optimal {}",
        base.refreshes,
        opt.refreshes
    );
}

#[test]
fn aao_periodic_strategy_completes_with_valid_fidelity() {
    let m = run(&config(
        SimStrategy::AaoPeriodic {
            period_ticks: 200,
            mu: 5.0,
        },
        4,
    ))
    .unwrap();
    assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    assert!(m.recomputations >= (N_TICKS / 200 - 1) as u64 * 4);
}

#[test]
fn delayed_network_only_adds_bounded_fidelity_loss() {
    let mut cfg = config(per_query(AssignmentStrategy::DualDab { mu: 5.0 }), 6);
    cfg.delays = DelayConfig::planetlab_like();
    let m = run(&cfg).unwrap();
    // ~110 ms delays against 1 s ticks: loss should be small but the run
    // must complete and stay sane.
    assert!(m.loss_in_fidelity_percent() < 20.0);
}
