#!/usr/bin/env python3
"""Splices measured harness outputs into EXPERIMENTS.md placeholders."""
import pathlib, re

root = pathlib.Path(__file__).resolve().parent.parent
quick = root / "results" / "quick"

def tables(fname, keep=None):
    text = (quick / fname).read_text()
    # Drop CSV blocks; keep the aligned tables.
    out, skip = [], False
    for line in text.splitlines():
        if line.startswith("# CSV"):
            skip = True
            continue
        if line.startswith("== "):
            skip = False
        if not skip:
            out.append(line)
    body = "\n".join(out).strip()
    return "```text\n" + body + "\n```"

md = (root / "EXPERIMENTS.md").read_text()
subs = {
    "<!-- FIG5_TABLES -->": tables("fig5.txt"),
    "<!-- FIG6_TABLES -->": tables("fig6.txt"),
    "<!-- FIG7_TABLES -->": tables("fig7.txt"),
    "<!-- FIG8AB_TABLES -->": tables("fig8a.txt") + "\n\n" + tables("fig8b.txt"),
    "<!-- FIG8C_TABLE -->": tables("fig8c.txt"),
    "<!-- COMPARE_TABLE -->": tables("compare_related.txt"),
    "<!-- DELAY_TABLE -->": tables("delay_sweep.txt"),
    "<!-- ABLATION_TABLES -->": tables("ablations.txt"),
}
for marker, table in subs.items():
    if marker in md:
        md = md.replace(marker, table)
    else:
        print("missing marker", marker)
(root / "EXPERIMENTS.md").write_text(md)
print("EXPERIMENTS.md filled")
