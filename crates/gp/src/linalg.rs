//! Minimal dense linear algebra used by the interior-point solver.
//!
//! The solver now has two KKT backends. Small geometric programs (tens to
//! a couple hundred variables) use the dense, row-major Cholesky kernels
//! here — simpler, cache-friendly, and the correctness oracle for the
//! sparse path. Large AAO units route through the sparse path in
//! [`crate::sparse`] (upper-CSC up-looking Cholesky under a min-degree
//! ordering from [`crate::ordering`], driven by the structure plan in
//! `kkt.rs`). The crossover is picked automatically in `solver.rs`:
//! sparse kicks in when the variable count is large and the estimated
//! clique density of the query↔item graph stays low (see
//! [`crate::KktMode`]); dense remains the unconditional fallback.

/// A dense, row-major matrix of `f64`. `Default` is the empty `0 x 0`
/// matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n_rows x n_cols` matrix of zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Matrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Returns a view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n_rows);
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Returns a mutable view of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.n_rows);
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix-vector product `self * x` written into `out` — the
    /// allocation-free variant of [`Matrix::matvec`] for hot paths that
    /// own a reusable buffer.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.n_rows, "matvec output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(i), x);
        }
    }

    /// Rank-one symmetric update `self += alpha * v * v^T`.
    ///
    /// Only valid for square matrices with `v.len() == n`.
    pub fn add_outer(&mut self, alpha: f64, v: &[f64]) {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(v.len(), self.n_rows);
        if alpha == 0.0 {
            return;
        }
        let n = self.n_rows;
        for i in 0..n {
            let avi = alpha * v[i];
            if avi == 0.0 {
                continue;
            }
            let row = self.row_mut(i);
            for (j, vj) in v.iter().enumerate().take(n) {
                row[j] += avi * vj;
            }
        }
    }

    /// Adds `alpha` to every diagonal entry (Tikhonov regularization).
    pub fn add_diagonal(&mut self, alpha: f64) {
        let n = self.n_rows.min(self.n_cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Adds `alpha * other` elementwise.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn set_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Resizes to `n x n` zeros, reusing the allocation when possible.
    pub fn resize_zeroed(&mut self, n_rows: usize, n_cols: usize) {
        self.n_rows = n_rows;
        self.n_cols = n_cols;
        self.data.clear();
        self.data.resize(n_rows * n_cols, 0.0);
    }

    /// Largest absolute diagonal entry (used to scale regularization).
    pub fn max_abs_diagonal(&self) -> f64 {
        let n = self.n_rows.min(self.n_cols);
        (0..n).fold(0.0_f64, |m, i| m.max(self[(i, i)].abs()))
    }

    /// In-place Cholesky factorization of a symmetric positive-definite
    /// matrix; on success the lower triangle holds `L` with `L L^T = A`.
    /// Pair with [`Matrix::solve_factored`] to solve many right-hand
    /// sides against one factorization without cloning the matrix.
    ///
    /// Returns `false` if the matrix is not numerically positive definite.
    pub fn factor_in_place(&mut self) -> bool {
        assert_eq!(self.n_rows, self.n_cols);
        let n = self.n_rows;
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                let ljk = self[(j, k)];
                d -= ljk * ljk;
            }
            if !(d.is_finite() && d > 0.0) {
                return false;
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            let inv_d = 1.0 / d;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= self[(i, k)] * self[(j, k)];
                }
                self[(i, j)] = s * inv_d;
            }
        }
        true
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// Returns `None` if the factorization fails (matrix not PD).
    pub fn cholesky_solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        let mut scratch = Matrix::zeros(self.n_rows, self.n_cols);
        let mut x = Vec::new();
        if self.cholesky_solve_into(b, &mut scratch, &mut x) {
            Some(x)
        } else {
            None
        }
    }

    /// Allocation-free variant of [`Matrix::cholesky_solve`]: factors into
    /// `scratch` (resized as needed) and writes the solution into `x`.
    /// Returns `false` if the matrix is not numerically positive definite.
    pub fn cholesky_solve_into(&self, b: &[f64], scratch: &mut Matrix, x: &mut Vec<f64>) -> bool {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(b.len(), self.n_rows);
        scratch.clone_from(self);
        if !scratch.factor_in_place() {
            return false;
        }
        x.clear();
        x.extend_from_slice(b);
        scratch.solve_factored(x);
        true
    }

    /// Forward/back substitution with an already-factored `L` (as left by
    /// [`Matrix::factor_in_place`]), overwriting `z` with the solution.
    pub fn solve_factored(&self, z: &mut [f64]) {
        let n = self.n_rows;
        debug_assert_eq!(z.len(), n);
        for i in 0..n {
            let mut s = z[i];
            for k in 0..i {
                s -= self[(i, k)] * z[k];
            }
            z[i] = s / self[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in (i + 1)..n {
                s -= self[(k, i)] * z[k];
            }
            z[i] = s / self[(i, i)];
        }
    }

    /// Solves `A x = b` for a symmetric matrix that should be positive
    /// definite, retrying with progressively larger diagonal regularization
    /// if the plain factorization fails.
    ///
    /// Interior-point Hessians can lose definiteness to rounding near the
    /// central path; a small ridge restores it while barely perturbing the
    /// Newton direction.
    pub fn cholesky_solve_regularized(&self, b: &[f64]) -> Option<Vec<f64>> {
        let mut scratch = Matrix::zeros(self.n_rows, self.n_cols);
        let mut x = Vec::new();
        if self.cholesky_solve_regularized_into(b, &mut scratch, &mut x) {
            Some(x)
        } else {
            None
        }
    }

    /// Allocation-free variant of [`Matrix::cholesky_solve_regularized`]:
    /// the factorization happens in `scratch` (resized as needed) and the
    /// solution lands in `x`. Returns `false` if every regularization level
    /// fails.
    pub fn cholesky_solve_regularized_into(
        &self,
        b: &[f64],
        scratch: &mut Matrix,
        x: &mut Vec<f64>,
    ) -> bool {
        self.cholesky_solve_regularized_level_into(b, scratch, x)
            .is_some()
    }

    /// Like [`Matrix::cholesky_solve_regularized_into`], but reports the
    /// diagonal shift that was actually needed: `Some(0.0)` when the plain
    /// factorization succeeded, `Some(reg > 0)` when the ladder had to bump
    /// the diagonal (callers surface this as the `gp.chol_regularized`
    /// counter), `None` when every level failed.
    pub fn cholesky_solve_regularized_level_into(
        &self,
        b: &[f64],
        scratch: &mut Matrix,
        x: &mut Vec<f64>,
    ) -> Option<f64> {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(b.len(), self.n_rows);
        let mut reg = 0.0;
        let scale = self.max_abs_diagonal().max(1.0);
        for _ in 0..41 {
            scratch.clone_from(self);
            if reg > 0.0 {
                scratch.add_diagonal(reg);
            }
            if scratch.factor_in_place() {
                x.clear();
                x.extend_from_slice(b);
                scratch.solve_factored(x);
                return Some(reg);
            }
            reg = if reg == 0.0 {
                1e-12 * scale
            } else {
                reg * 10.0
            };
        }
        None
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        &self.data[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        &mut self.data[i * self.n_cols + j]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` elementwise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.cholesky_solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_known_spd_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [1/2, 0].
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let x = a.cholesky_solve(&[2.0, 1.0]).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_on_random_spd() {
        // Build SPD as M^T M + I from a deterministic pseudo-random M.
        let n = 12;
        let mut m = Matrix::zeros(n, n);
        let mut state = 0x12345678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
        }
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[(k, i)] * m[(k, j)];
                }
                a[(i, j)] += s;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let x = a.cholesky_solve(&b).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn non_pd_matrix_is_rejected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn regularized_solve_recovers_semidefinite() {
        // Singular PSD matrix: ones(2,2). Regularized solve should succeed.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        let x = a.cholesky_solve_regularized(&[1.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regularized_level_reports_shift() {
        // Well-conditioned SPD: no shift needed.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let mut scratch = Matrix::zeros(0, 0);
        let mut x = Vec::new();
        assert_eq!(
            a.cholesky_solve_regularized_level_into(&[2.0, 1.0], &mut scratch, &mut x),
            Some(0.0)
        );
        // Singular PSD: ladder must bump the diagonal.
        let mut s = Matrix::zeros(2, 2);
        s[(0, 0)] = 1.0;
        s[(0, 1)] = 1.0;
        s[(1, 0)] = 1.0;
        s[(1, 1)] = 1.0;
        let reg = s
            .cholesky_solve_regularized_level_into(&[1.0, 1.0], &mut scratch, &mut x)
            .unwrap();
        assert!(reg > 0.0);
    }

    #[test]
    fn add_outer_matches_manual() {
        let mut a = Matrix::zeros(3, 3);
        let v = [1.0, 2.0, 3.0];
        a.add_outer(2.0, &v);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], 2.0 * v[i] * v[j]);
            }
        }
    }

    #[test]
    fn matvec_matches_manual() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        a.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let y = a.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn matvec_into_reuses_buffer_and_matches_matvec() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        a.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let mut out = vec![99.0, 99.0];
        a.matvec_into(&[0.5, -1.0, 2.0], &mut out);
        assert_eq!(out, a.matvec(&[0.5, -1.0, 2.0]));
    }

    #[test]
    fn one_factorization_solves_many_rhs() {
        // A = [[4,2],[2,3]]; factor once, solve two right-hand sides, and
        // check each against the cloning cholesky_solve path bit-for-bit.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let mut l = a.clone();
        assert!(l.factor_in_place());
        for b in [[2.0, 1.0], [-1.0, 5.0]] {
            let mut z = b.to_vec();
            l.solve_factored(&mut z);
            assert_eq!(z, a.cholesky_solve(&b).unwrap());
        }
    }

    #[test]
    fn cholesky_solve_into_matches_allocating_solve() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let mut scratch = Matrix::zeros(0, 0);
        let mut x = Vec::new();
        assert!(a.cholesky_solve_into(&[2.0, 1.0], &mut scratch, &mut x));
        assert_eq!(x, a.cholesky_solve(&[2.0, 1.0]).unwrap());

        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 0)] = 1.0;
        bad[(1, 1)] = -1.0;
        assert!(!bad.cholesky_solve_into(&[1.0, 1.0], &mut scratch, &mut x));
    }
}
