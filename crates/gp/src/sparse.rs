//! Sparse symmetric Cholesky with a cached symbolic analysis.
//!
//! The barrier solver's KKT matrix is stored as the **upper triangle in
//! CSC order** (column `k` holds rows `j <= k`). By symmetry that column
//! is exactly row `k` of the lower triangle — precisely the access
//! pattern the up-looking factorization wants, so no transposition ever
//! happens at numeric time.
//!
//! Factorization is split the classic way:
//!
//! * [`SymbolicChol::analyze`] — elimination tree, per-row reach
//!   patterns, exact column counts, and the full structure of `L`. Runs
//!   once per compiled GP (the pattern of the KKT system is fixed by the
//!   query↔item graph) and is reused across every Newton step, every
//!   regularization retry, and every warm-started refresh.
//! * [`SymbolicChol::factor`] — numeric up-looking Cholesky `A + reg·I =
//!   L Lᵀ` into caller-owned buffers. Fails cleanly (returning `false`
//!   with all scratch re-zeroed) on a non-positive pivot so the caller's
//!   regularization ladder can retry at a higher shift.
//! * [`SymbolicChol::solve`] — forward/backward substitution in place.
//!
//! Everything is deterministic: patterns are sorted, loops run in fixed
//! order, and no hashing is involved.

/// Builds an upper-triangle CSC pattern from an unordered list of
/// `(row, col)` index pairs (either orientation; duplicates fine). The
/// full diagonal is always present so a diagonal shift can be applied
/// with no structural change. Returns `(col_ptr, row_idx)`.
pub fn upper_csc_from_pairs(n: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(pairs.len() + n);
    for k in 0..n as u32 {
        entries.push((k, k));
    }
    for &(a, b) in pairs {
        debug_assert!((a as usize) < n && (b as usize) < n);
        // Normalize to (col, row) with row <= col: upper triangle.
        let (row, col) = if a <= b { (a, b) } else { (b, a) };
        entries.push((col, row));
    }
    entries.sort_unstable();
    entries.dedup();
    let mut col_ptr = vec![0u32; n + 1];
    let mut row_idx = Vec::with_capacity(entries.len());
    for &(col, row) in &entries {
        col_ptr[col as usize + 1] += 1;
        row_idx.push(row);
    }
    for k in 0..n {
        col_ptr[k + 1] += col_ptr[k];
    }
    (col_ptr, row_idx)
}

/// Symbolic Cholesky analysis of a fixed upper-CSC pattern, plus the
/// derived structure of the factor `L` (lower CSC, diagonal entry first
/// in each column, remaining rows ascending).
#[derive(Debug, Clone)]
pub struct SymbolicChol {
    n: usize,
    /// Input pattern (upper CSC), kept so `factor` can walk A directly.
    a_col_ptr: Vec<u32>,
    a_row_idx: Vec<u32>,
    /// Row patterns: for row `k`, the columns `j < k` where `L(k, j) != 0`,
    /// stored ascending (ascending order along an etree reach is a valid
    /// topological order for the up-looking triangular solve).
    rpat_ptr: Vec<u32>,
    rpat_col: Vec<u32>,
    /// Structure of `L` in lower CSC; `lrow_idx[lcol_ptr[j]] == j`.
    lcol_ptr: Vec<u32>,
    lrow_idx: Vec<u32>,
}

impl SymbolicChol {
    /// Analyzes the pattern `(col_ptr, row_idx)` of the upper triangle
    /// (diagonal must be present in every column).
    pub fn analyze(n: usize, a_col_ptr: Vec<u32>, a_row_idx: Vec<u32>) -> Self {
        debug_assert_eq!(a_col_ptr.len(), n + 1);
        // Elimination tree via ancestor path compression (Liu's
        // algorithm): for each strict entry (j, k), j < k, walk j's
        // ancestor chain; the first root found gets parent k.
        let mut parent = vec![u32::MAX; n];
        let mut ancestor = vec![u32::MAX; n];
        for k in 0..n {
            for &r in &a_row_idx[a_col_ptr[k] as usize..a_col_ptr[k + 1] as usize] {
                let mut j = r as usize;
                while j < k {
                    let next = ancestor[j];
                    ancestor[j] = k as u32;
                    if next == u32::MAX {
                        parent[j] = k as u32;
                        break;
                    }
                    j = next as usize;
                }
            }
        }

        // Row patterns: reach of row k's strict A entries in the etree,
        // truncated below k. Collect then sort ascending.
        let mut mark = vec![u32::MAX; n];
        let mut rpat_ptr = vec![0u32; n + 1];
        let mut rpat_col: Vec<u32> = Vec::new();
        let mut row: Vec<u32> = Vec::new();
        for k in 0..n {
            row.clear();
            mark[k] = k as u32;
            for &r in &a_row_idx[a_col_ptr[k] as usize..a_col_ptr[k + 1] as usize] {
                let mut j = r as usize;
                while j < k && mark[j] != k as u32 {
                    mark[j] = k as u32;
                    row.push(j as u32);
                    let p = parent[j];
                    if p == u32::MAX {
                        break;
                    }
                    j = p as usize;
                }
            }
            row.sort_unstable();
            rpat_col.extend_from_slice(&row);
            rpat_ptr[k + 1] = rpat_col.len() as u32;
        }

        // Column counts of L: each row-pattern entry (k, j) is one
        // off-diagonal in column j; every column also has its diagonal.
        let mut lcol_ptr = vec![0u32; n + 1];
        for k in 0..n {
            lcol_ptr[k + 1] += 1; // diagonal
        }
        for &j in &rpat_col {
            lcol_ptr[j as usize + 1] += 1;
        }
        for k in 0..n {
            lcol_ptr[k + 1] += lcol_ptr[k];
        }
        // Fill lrow_idx: diagonal first, then rows in ascending order —
        // guaranteed because rows k are visited in increasing order.
        let nnz = lcol_ptr[n] as usize;
        let mut lrow_idx = vec![0u32; nnz];
        let mut cursor: Vec<u32> = lcol_ptr[..n].to_vec();
        for k in 0..n {
            lrow_idx[cursor[k] as usize] = k as u32;
            cursor[k] += 1;
        }
        for k in 0..n {
            for &jc in &rpat_col[rpat_ptr[k] as usize..rpat_ptr[k + 1] as usize] {
                let j = jc as usize;
                lrow_idx[cursor[j] as usize] = k as u32;
                cursor[j] += 1;
            }
        }

        SymbolicChol {
            n,
            a_col_ptr,
            a_row_idx,
            rpat_ptr,
            rpat_col,
            lcol_ptr,
            lrow_idx,
        }
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L` (including the diagonal).
    pub fn l_nnz(&self) -> usize {
        self.lrow_idx.len()
    }

    /// Upper-CSC pattern of A this analysis was built for.
    pub fn a_pattern(&self) -> (&[u32], &[u32]) {
        (&self.a_col_ptr, &self.a_row_idx)
    }

    /// Numeric up-looking factorization of `A + reg·I` where `a_values`
    /// matches the analyzed pattern positionally. Writes the factor into
    /// `lvals` (`l_nnz` long). `x` is dense scratch of length `n` that
    /// must be all-zero on entry and is all-zero again on exit — also
    /// when the factorization fails — so the caller's regularization
    /// ladder can retry without re-clearing. `cursor` is scratch of
    /// length `n`. Returns `false` on a non-positive or non-finite
    /// pivot.
    pub fn factor(
        &self,
        a_values: &[f64],
        reg: f64,
        lvals: &mut [f64],
        x: &mut [f64],
        cursor: &mut [u32],
    ) -> bool {
        let n = self.n;
        debug_assert_eq!(a_values.len(), self.a_row_idx.len());
        debug_assert_eq!(lvals.len(), self.lrow_idx.len());
        debug_assert!(x.iter().all(|&v| v == 0.0), "x scratch must start zeroed");
        // cursor[j]: next free slot in column j of L, starting just past
        // the diagonal.
        for (c, &p) in cursor.iter_mut().zip(&self.lcol_ptr[..n]) {
            *c = p + 1;
        }
        for k in 0..n {
            // Scatter column k of upper(A) = row k of lower(A) into x.
            let mut d = reg;
            let (lo, hi) = (self.a_col_ptr[k] as usize, self.a_col_ptr[k + 1] as usize);
            for (&j, &v) in self.a_row_idx[lo..hi].iter().zip(&a_values[lo..hi]) {
                let j = j as usize;
                if j == k {
                    d += v;
                } else {
                    x[j] = v;
                }
            }
            // Sparse triangular solve over row k's pattern (ascending ==
            // topological): y_j = x_j / L(j,j), then eliminate.
            for idx in self.rpat_ptr[k] as usize..self.rpat_ptr[k + 1] as usize {
                let j = self.rpat_col[idx] as usize;
                let lj0 = self.lcol_ptr[j] as usize;
                let yj = x[j] / lvals[lj0];
                x[j] = 0.0;
                for s in lj0 + 1..cursor[j] as usize {
                    x[self.lrow_idx[s] as usize] -= lvals[s] * yj;
                }
                d -= yj * yj;
                lvals[cursor[j] as usize] = yj;
                cursor[j] += 1;
            }
            if d <= 0.0 || !d.is_finite() {
                // x is already re-zeroed for every pattern entry of row k
                // (each scatter target is either consumed above or is the
                // diagonal accumulated into d); nothing else was touched.
                // But a failed row may have scattered entries whose
                // pattern positions were never reached — clear explicitly.
                for idx in self.a_col_ptr[k] as usize..self.a_col_ptr[k + 1] as usize {
                    x[self.a_row_idx[idx] as usize] = 0.0;
                }
                for idx in self.rpat_ptr[k] as usize..self.rpat_ptr[k + 1] as usize {
                    x[self.rpat_col[idx] as usize] = 0.0;
                }
                return false;
            }
            lvals[self.lcol_ptr[k] as usize] = d.sqrt();
        }
        true
    }

    /// Solves `L Lᵀ z = b` in place given `lvals` from a successful
    /// [`factor`](Self::factor) call.
    pub fn solve(&self, lvals: &[f64], b: &mut [f64]) {
        let n = self.n;
        // Forward: L y = b, column-oriented.
        for j in 0..n {
            let p0 = self.lcol_ptr[j] as usize;
            let p1 = self.lcol_ptr[j + 1] as usize;
            let yj = b[j] / lvals[p0];
            b[j] = yj;
            for s in p0 + 1..p1 {
                b[self.lrow_idx[s] as usize] -= lvals[s] * yj;
            }
        }
        // Backward: Lᵀ z = y, column-oriented (dot with column j).
        for j in (0..n).rev() {
            let p0 = self.lcol_ptr[j] as usize;
            let p1 = self.lcol_ptr[j + 1] as usize;
            let mut acc = b[j];
            for s in p0 + 1..p1 {
                acc -= lvals[s] * b[self.lrow_idx[s] as usize];
            }
            b[j] = acc / lvals[p0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    /// Deterministic xorshift for test matrices.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Random sparse SPD matrix: banded + a few long-range couplings,
    /// diagonally dominant. Returns (dense, upper-CSC pattern, values).
    #[allow(clippy::type_complexity)]
    fn random_spd(n: usize, seed: u64) -> (Matrix, Vec<u32>, Vec<u32>, Vec<f64>) {
        let mut rng = Rng(seed | 1);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            for j in i + 1..(i + 4).min(n) {
                pairs.push((i as u32, j as u32));
            }
        }
        for _ in 0..n / 2 {
            let a = (rng.next_f64() * n as f64) as u32 % n as u32;
            let b = (rng.next_f64() * n as f64) as u32 % n as u32;
            if a != b {
                pairs.push((a, b));
            }
        }
        let (col_ptr, row_idx) = upper_csc_from_pairs(n, &pairs);
        let mut values = vec![0.0; row_idx.len()];
        let mut dense = Matrix::zeros(n, n);
        for col in 0..n {
            for idx in col_ptr[col] as usize..col_ptr[col + 1] as usize {
                let row = row_idx[idx] as usize;
                if row == col {
                    continue;
                }
                let v = rng.next_f64() - 0.5;
                values[idx] = v;
                dense[(row, col)] = v;
                dense[(col, row)] = v;
            }
        }
        // Diagonal dominance ⇒ SPD.
        for i in 0..n {
            let rowsum: f64 = (0..n).map(|j| dense[(i, j)].abs()).sum();
            let d = rowsum + 1.0 + rng.next_f64();
            dense[(i, i)] = d;
            for idx in col_ptr[i] as usize..col_ptr[i + 1] as usize {
                if row_idx[idx] as usize == i {
                    values[idx] = d;
                }
            }
        }
        (dense, col_ptr, row_idx, values)
    }

    #[test]
    fn pattern_builder_normalizes_and_includes_diagonal() {
        let (col_ptr, row_idx) = upper_csc_from_pairs(3, &[(2, 0), (0, 2), (1, 0)]);
        // Columns: 0 -> {0}; 1 -> {0,1}; 2 -> {0,2}
        assert_eq!(col_ptr, vec![0, 1, 3, 5]);
        assert_eq!(row_idx, vec![0, 0, 1, 0, 2]);
    }

    #[test]
    fn factor_solve_matches_dense_oracle() {
        for n in [1usize, 2, 5, 17, 40] {
            for seed in [3u64, 99, 12345] {
                let (dense, col_ptr, row_idx, values) = random_spd(n, seed);
                let sym = SymbolicChol::analyze(n, col_ptr, row_idx);
                let mut lvals = vec![0.0; sym.l_nnz()];
                let mut x = vec![0.0; n];
                let mut cur = vec![0u32; n];
                assert!(sym.factor(&values, 0.0, &mut lvals, &mut x, &mut cur));
                assert!(x.iter().all(|&v| v == 0.0), "scratch re-zeroed");

                let mut rng = Rng(seed ^ 0xabcd);
                let b: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
                let mut z = b.clone();
                sym.solve(&lvals, &mut z);

                let mut chol = Matrix::zeros(n, n);
                let mut expect = Vec::new();
                assert!(dense.cholesky_solve_into(&b, &mut chol, &mut expect));
                for i in 0..n {
                    assert!(
                        (z[i] - expect[i]).abs() <= 1e-9 * (1.0 + expect[i].abs()),
                        "n={n} seed={seed} i={i}: {} vs {}",
                        z[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn failed_factor_rezeroes_scratch_and_retries_with_reg() {
        // Indefinite matrix: [[1, 2], [2, 1]] fails; big shift succeeds.
        let (col_ptr, row_idx) = upper_csc_from_pairs(2, &[(0, 1)]);
        let sym = SymbolicChol::analyze(2, col_ptr.clone(), row_idx.clone());
        // values follow the pattern: col0 {0}, col1 {0,1}
        let values = vec![1.0, 2.0, 1.0];
        let mut lvals = vec![0.0; sym.l_nnz()];
        let mut x = vec![0.0; 2];
        let mut cur = vec![0u32; 2];
        assert!(!sym.factor(&values, 0.0, &mut lvals, &mut x, &mut cur));
        assert!(x.iter().all(|&v| v == 0.0), "scratch re-zeroed on failure");
        assert!(sym.factor(&values, 10.0, &mut lvals, &mut x, &mut cur));
        // Check against dense solve of A + 10 I.
        let mut dense = Matrix::zeros(2, 2);
        dense[(0, 0)] = 11.0;
        dense[(1, 1)] = 11.0;
        dense[(0, 1)] = 2.0;
        dense[(1, 0)] = 2.0;
        let b = [1.0, -3.0];
        let mut z = b.to_vec();
        sym.solve(&lvals, &mut z);
        let mut chol = Matrix::zeros(2, 2);
        let mut expect = Vec::new();
        assert!(dense.cholesky_solve_into(&b, &mut chol, &mut expect));
        for i in 0..2 {
            assert!((z[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn factorization_is_bitwise_deterministic() {
        let (_, col_ptr, row_idx, values) = random_spd(23, 7);
        let sym = SymbolicChol::analyze(23, col_ptr, row_idx);
        let mut l1 = vec![0.0; sym.l_nnz()];
        let mut l2 = vec![0.0; sym.l_nnz()];
        let mut x = vec![0.0; 23];
        let mut cur = vec![0u32; 23];
        assert!(sym.factor(&values, 1e-9, &mut l1, &mut x, &mut cur));
        assert!(sym.factor(&values, 1e-9, &mut l2, &mut x, &mut cur));
        assert_eq!(
            l1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            l2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
