//! A posteriori optimality verification via KKT residuals.
//!
//! Given a claimed solution of a GP, this module reconstructs Lagrange
//! multipliers for the log-transformed convex program and reports the KKT
//! residuals. Tests (and sceptical users) can thereby *verify* optimality
//! independently of the solver's own convergence claims.
//!
//! In log variables the program is `min F0(y) s.t. Fi(y) <= 0`; at an
//! optimum there exist `nu_i >= 0` with
//!
//! ```text
//! grad F0(y) + sum_i nu_i grad Fi(y) = 0      (stationarity)
//! nu_i * Fi(y) = 0                            (complementary slackness)
//! ```
//!
//! We find the `nu >= 0` minimizing the stationarity residual by
//! non-negative least squares (projected coordinate descent — problems
//! here have few constraints) and report both residuals.

use crate::linalg::{dot, norm2, Matrix};
use crate::logsumexp::LogPosynomial;
use crate::problem::GpProblem;

/// KKT residuals of a claimed solution.
#[derive(Debug, Clone)]
pub struct KktReport {
    /// Euclidean norm of the stationarity residual
    /// `grad F0 + sum nu_i grad Fi` (should be ~0 at an optimum).
    pub stationarity: f64,
    /// Largest `nu_i * |Fi(y)|` (complementary slackness; ~0).
    pub complementarity: f64,
    /// Largest constraint violation `max_i Fi(y)` (<= 0 when feasible).
    pub feasibility: f64,
    /// The recovered multipliers.
    pub multipliers: Vec<f64>,
}

impl KktReport {
    /// True if all residuals are within `tol` (feasibility within `tol`
    /// above zero).
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity <= tol && self.complementarity <= tol && self.feasibility <= tol
    }
}

/// Computes KKT residuals for `x` on `problem`.
///
/// # Panics
/// Panics if the problem has no objective or `x` has the wrong length or
/// non-positive entries (callers verify solutions, which are positive).
pub fn kkt_report(problem: &GpProblem, x: &[f64]) -> KktReport {
    let (objective, constraints) = problem.validated().expect("problem must have an objective");
    assert_eq!(x.len(), problem.n_vars());
    assert!(x.iter().all(|&v| v > 0.0), "point must be positive");
    let n = problem.n_vars();
    let y: Vec<f64> = x.iter().map(|&v| v.ln()).collect();

    let f0 = LogPosynomial::compile(objective, n);
    let (_, g0) = f0.value_grad(&y);

    let mut values = Vec::with_capacity(constraints.len());
    let mut grads = Vec::with_capacity(constraints.len());
    for c in constraints {
        let lc = LogPosynomial::compile(c, n);
        let (v, g) = lc.value_grad(&y);
        values.push(v);
        grads.push(g);
    }
    let feasibility = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    // Non-negative least squares: min || g0 + G^T nu ||^2, nu >= 0, via
    // projected coordinate descent (m is small).
    let m = grads.len();
    let mut nu = vec![0.0; m];
    let mut residual: Vec<f64> = g0.clone();
    // residual = g0 + sum nu_i grads_i; start nu = 0.
    let diag: Vec<f64> = grads.iter().map(|g| dot(g, g).max(1e-300)).collect();
    for _ in 0..400 {
        let mut moved = 0.0_f64;
        for i in 0..m {
            let step = -dot(&grads[i], &residual) / diag[i];
            let new = (nu[i] + step).max(0.0);
            let delta = new - nu[i];
            if delta != 0.0 {
                for (r, g) in residual.iter_mut().zip(&grads[i]) {
                    *r += delta * g;
                }
                nu[i] = new;
                moved = moved.max(delta.abs());
            }
        }
        if moved < 1e-14 {
            break;
        }
    }

    // The descent loop maintains `residual` incrementally; recompute it
    // exactly as `g0 + G^T nu` before reporting, so the published number
    // carries no accumulated update error.
    let mut gt = Matrix::zeros(n, m);
    for (i, g) in grads.iter().enumerate() {
        for (j, &gj) in g.iter().enumerate() {
            gt[(j, i)] = gj;
        }
    }
    let mut correction = vec![0.0; n];
    gt.matvec_into(&nu, &mut correction);
    for ((r, &g), &c) in residual.iter_mut().zip(&g0).zip(&correction) {
        *r = g + c;
    }
    let stationarity = norm2(&residual);
    let complementarity = nu
        .iter()
        .zip(&values)
        .map(|(&ni, &vi)| ni * vi.abs())
        .fold(0.0_f64, f64::max);
    KktReport {
        stationarity,
        complementarity,
        feasibility,
        multipliers: nu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::{Monomial, Posynomial};
    use crate::solver::{solve_with_start, SolverOptions};

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    fn sample_problem() -> GpProblem {
        // min 2/x + 3/y s.t. x y <= 4, x + y <= 5.
        let mut p = GpProblem::new(2);
        let mut obj = mono(2.0, &[(0, -1.0)]);
        obj.add(&mono(3.0, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        p.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), 4.0)
            .unwrap();
        let mut c2 = mono(1.0, &[(0, 1.0)]);
        c2.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c2, 5.0).unwrap();
        p
    }

    #[test]
    fn solver_output_passes_kkt() {
        let p = sample_problem();
        let s = solve_with_start(&p, &[0.5, 0.5], &SolverOptions::default()).unwrap();
        let report = kkt_report(&p, &s.x);
        assert!(
            report.is_optimal(1e-4),
            "stationarity {} complementarity {} feasibility {}",
            report.stationarity,
            report.complementarity,
            report.feasibility
        );
        assert!(report.multipliers.iter().all(|&nu| nu >= 0.0));
    }

    #[test]
    fn non_optimal_point_fails_kkt() {
        let p = sample_problem();
        // Interior, feasible, clearly not optimal.
        let report = kkt_report(&p, &[0.5, 0.5]);
        assert!(report.feasibility < 0.0, "point should be feasible");
        assert!(
            report.stationarity > 1e-2,
            "stationarity should be large away from the optimum, got {}",
            report.stationarity
        );
    }

    #[test]
    fn unconstrained_interior_minimum_has_zero_gradient() {
        // min x + 1/x: optimum x = 1, no constraints -> stationarity is
        // just the objective gradient.
        let mut p = GpProblem::new(1);
        let mut obj = mono(1.0, &[(0, 1.0)]);
        obj.add(&mono(1.0, &[(0, -1.0)]));
        p.set_objective(obj).unwrap();
        let report = kkt_report(&p, &[1.0]);
        assert!(report.stationarity < 1e-12);
        assert!(report.multipliers.is_empty());
    }

    #[test]
    fn active_constraint_receives_positive_multiplier() {
        // min 1/x s.t. x <= 2: optimum at x = 2 with active bound.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, -1.0)])).unwrap();
        p.add_upper_bound(0, 2.0).unwrap();
        let report = kkt_report(&p, &[2.0]);
        assert!(report.is_optimal(1e-9));
        assert!(report.multipliers[0] > 0.5, "bound must be active");
    }
}
