//! A posteriori optimality verification via KKT residuals.
//!
//! Given a claimed solution of a GP, this module reconstructs Lagrange
//! multipliers for the log-transformed convex program and reports the KKT
//! residuals. Tests (and sceptical users) can thereby *verify* optimality
//! independently of the solver's own convergence claims.
//!
//! In log variables the program is `min F0(y) s.t. Fi(y) <= 0`; at an
//! optimum there exist `nu_i >= 0` with
//!
//! ```text
//! grad F0(y) + sum_i nu_i grad Fi(y) = 0      (stationarity)
//! nu_i * Fi(y) = 0                            (complementary slackness)
//! ```
//!
//! We find the `nu >= 0` minimizing the stationarity residual by
//! non-negative least squares (projected coordinate descent — problems
//! here have few constraints) and report both residuals.

use crate::linalg::{dot, norm2, Matrix};
use crate::logsumexp::{log_sum_exp, softmax_in_place, LogPosynomial};
use crate::ordering::{invert_permutation, min_degree};
use crate::problem::GpProblem;
use crate::sparse::{upper_csc_from_pairs, SymbolicChol};

/// KKT residuals of a claimed solution.
#[derive(Debug, Clone)]
pub struct KktReport {
    /// Euclidean norm of the stationarity residual
    /// `grad F0 + sum nu_i grad Fi` (should be ~0 at an optimum).
    pub stationarity: f64,
    /// Largest `nu_i * |Fi(y)|` (complementary slackness; ~0).
    pub complementarity: f64,
    /// Largest constraint violation `max_i Fi(y)` (<= 0 when feasible).
    pub feasibility: f64,
    /// The recovered multipliers.
    pub multipliers: Vec<f64>,
}

impl KktReport {
    /// True if all residuals are within `tol` (feasibility within `tol`
    /// above zero).
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity <= tol && self.complementarity <= tol && self.feasibility <= tol
    }
}

/// Computes KKT residuals for `x` on `problem`.
///
/// # Panics
/// Panics if the problem has no objective or `x` has the wrong length or
/// non-positive entries (callers verify solutions, which are positive).
pub fn kkt_report(problem: &GpProblem, x: &[f64]) -> KktReport {
    let (objective, constraints) = problem.validated().expect("problem must have an objective");
    assert_eq!(x.len(), problem.n_vars());
    assert!(x.iter().all(|&v| v > 0.0), "point must be positive");
    let n = problem.n_vars();
    let y: Vec<f64> = x.iter().map(|&v| v.ln()).collect();

    let f0 = LogPosynomial::compile(objective, n);
    let (_, g0) = f0.value_grad(&y);

    let mut values = Vec::with_capacity(constraints.len());
    let mut grads = Vec::with_capacity(constraints.len());
    for c in constraints {
        let lc = LogPosynomial::compile(c, n);
        let (v, g) = lc.value_grad(&y);
        values.push(v);
        grads.push(g);
    }
    let feasibility = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    // Non-negative least squares: min || g0 + G^T nu ||^2, nu >= 0, via
    // projected coordinate descent (m is small).
    let m = grads.len();
    let mut nu = vec![0.0; m];
    let mut residual: Vec<f64> = g0.clone();
    // residual = g0 + sum nu_i grads_i; start nu = 0.
    let diag: Vec<f64> = grads.iter().map(|g| dot(g, g).max(1e-300)).collect();
    for _ in 0..400 {
        let mut moved = 0.0_f64;
        for i in 0..m {
            let step = -dot(&grads[i], &residual) / diag[i];
            let new = (nu[i] + step).max(0.0);
            let delta = new - nu[i];
            if delta != 0.0 {
                for (r, g) in residual.iter_mut().zip(&grads[i]) {
                    *r += delta * g;
                }
                nu[i] = new;
                moved = moved.max(delta.abs());
            }
        }
        if moved < 1e-14 {
            break;
        }
    }

    // The descent loop maintains `residual` incrementally; recompute it
    // exactly as `g0 + G^T nu` before reporting, so the published number
    // carries no accumulated update error.
    let mut gt = Matrix::zeros(n, m);
    for (i, g) in grads.iter().enumerate() {
        for (j, &gj) in g.iter().enumerate() {
            gt[(j, i)] = gj;
        }
    }
    let mut correction = vec![0.0; n];
    gt.matvec_into(&nu, &mut correction);
    for ((r, &g), &c) in residual.iter_mut().zip(&g0).zip(&correction) {
        *r = g + c;
    }
    let stationarity = norm2(&residual);
    let complementarity = nu
        .iter()
        .zip(&values)
        .map(|(&ni, &vi)| ni * vi.abs())
        .fold(0.0_f64, f64::max);
    KktReport {
        stationarity,
        complementarity,
        feasibility,
        multipliers: nu,
    }
}

// ---------------------------------------------------------------------------
// Sparse KKT plan
// ---------------------------------------------------------------------------
//
// The barrier Hessian at parameter `t` is
//
// ```text
// H = t (SM0 − g0 g0ᵀ)                                 (objective, multi-term)
//   + Σ_i [ 1/s_i (SMi − gi giᵀ) + 1/s_i² gi giᵀ ]     (constraints)
// ```
//
// where `SMi = Σ_k p_k a_k a_kᵀ` is the softmax second moment of posynomial
// `i`'s exponent rows, `gi = ∇Fi`, and `s_i = −Fi > 0` is the barrier slack.
// Every `SM` term only touches the handful of variables its monomial
// mentions, so `H` splits as `H = S + Σ_r β_r g_r g_rᵀ`:
//
// * `S` — a sparse matrix collecting, per posynomial, either the *whole*
//   contribution (when the posynomial's support is small: a support-clique
//   of nonzeros, and positive semidefinite because it is `1/s · ∇²Fi`
//   plus `1/s² gi giᵀ`), or only the per-term second-moment cliques (when
//   the support is large).
// * the corrections — gradient outer products of the few wide-support
//   posynomials (in AAO units: the joint objective), *hoisted* out of the
//   factorization and applied by Sherman–Morrison–Woodbury at solve time.
//
// `S` is positive semidefinite by construction, so `S + reg·I` factors for
// any `reg > 0`; solving `(S̃ + Σ β g gᵀ) x = b` by SMW then solves exactly
// `(H + reg·I) x = b` — the same regularization semantics as the dense
// ladder. A residual check guards the (possibly indefinite) capacitance
// system at `reg = 0`.
//
// Everything structural — canonical term order, supports, the min-degree
// permutation, the symbolic factorization, and every scatter slot — is
// computed once per compiled GP and reused across all Newton steps,
// regularization retries, and coefficient refreshes.

/// Posynomial supports larger than this keep their gradient outer product
/// out of `S` (hoisted into an SMW correction) instead of materializing an
/// `s × s` clique.
const GRAD_CLIQUE_CUTOFF: usize = 48;
/// `KktMode::Auto` never routes programs smaller than this to the sparse
/// backend — dense wins below it.
const SPARSE_MIN_N: usize = 192;
/// `KktMode::Auto` gives up when more than this many posynomials need
/// hoisting (each costs a dense triangular solve per Newton step).
const MAX_HOISTED_AUTO: usize = 16;
/// Relative residual accepted from an SMW-corrected solve before the
/// regularization ladder escalates.
const SMW_RESIDUAL_TOL: f64 = 1e-6;

/// How one posynomial's gradient outer product `β g gᵀ` enters the KKT
/// system.
#[derive(Debug, Clone)]
enum GradKind {
    /// Affine objective: no Hessian contribution at all.
    Skip,
    /// Small support: scattered into `S` as a support-clique. Slots cover
    /// the `(li, lj)`, `li <= lj` local pairs in row-major order.
    Clique(Vec<u32>),
    /// Wide support: hoisted into SMW correction `h`.
    Hoisted(u32),
}

/// One monomial term, pre-resolved against the global pattern.
#[derive(Debug, Clone)]
struct TermPlan {
    /// Index of this term's coefficient in the source [`LogPosynomial`]
    /// (terms are re-sorted canonically; coefficients are read live so
    /// in-place refreshes keep working).
    coef_idx: u32,
    /// `(local support index, exponent)` pairs, locals ascending.
    entries: Vec<(u32, f64)>,
    /// Second-moment scatter: `(value slot, e_a · e_b)` per unordered
    /// support pair of this term (diagonal included). Empty for affine
    /// posynomials (their second moment cancels against `g gᵀ`).
    sm_slots: Vec<(u32, f64)>,
}

/// One posynomial (objective or constraint) in plan form.
#[derive(Debug, Clone)]
struct PosyPlan {
    /// Sorted original variable ids this posynomial touches.
    support: Vec<u32>,
    /// Terms in canonical (insertion-order-independent) order.
    terms: Vec<TermPlan>,
    grad: GradKind,
}

/// The per-compiled-GP sparse KKT structure: canonical term ordering,
/// fill-reducing permutation, cached symbolic factorization, and
/// pre-resolved scatter slots for assembling `S` directly in permuted
/// upper-CSC form. Built once (it depends only on the term *structure*,
/// not coefficients) and shared via `Arc` across warm-started solves.
#[derive(Debug, Clone)]
pub struct SparseKktPlan {
    n: usize,
    posys: Vec<PosyPlan>,
    /// `perm[new] = old` (min-degree order).
    perm: Vec<u32>,
    sym: SymbolicChol,
    /// Value slot of diagonal `(k, k)` per permuted index `k`.
    diag_slots: Vec<u32>,
    /// Permuted variable ids of hoisted gradients, flat.
    hoist_pvars: Vec<u32>,
    /// Offsets into `hoist_pvars` / scratch values, length `n_hoisted+1`.
    hoist_offsets: Vec<u32>,
    max_terms: usize,
    max_support: usize,
}

/// Caller-owned numeric buffers for one solver workspace; every slice is
/// sized by [`SparseScratch::ensure`] against the active plan.
#[derive(Debug, Default)]
pub struct SparseScratch {
    /// Assembled values of `S`, positionally matching the plan's pattern.
    a_values: Vec<f64>,
    /// Numeric factor of `S + reg I`.
    lvals: Vec<f64>,
    /// Dense factor scratch (kept all-zero between factorizations).
    fx: Vec<f64>,
    cursor: Vec<u32>,
    /// Per-posynomial term values / softmax weights.
    z: Vec<f64>,
    /// Support-local gradient of the current posynomial.
    glocal: Vec<f64>,
    /// Permuted right-hand side, solution, residual, diagonal.
    pb: Vec<f64>,
    sol: Vec<f64>,
    resid: Vec<f64>,
    diag: Vec<f64>,
    /// Hoisted gradient values (aligned with the plan's `hoist_pvars`) and
    /// their per-eval `β` weights.
    hoist_vals: Vec<f64>,
    hoist_beta: Vec<f64>,
    /// Dense SMW workspace: `k` solved columns, capacitance matrix, rhs.
    w: Vec<f64>,
    cap: Vec<f64>,
    cap_rhs: Vec<f64>,
    active: Vec<usize>,
    /// Largest |diagonal| of the last assembled `H` (regularization scale).
    scale: f64,
}

impl SparseScratch {
    /// Grows every buffer to fit `plan`, re-establishing the all-zero
    /// invariant of the factor scratch.
    pub fn ensure(&mut self, plan: &SparseKktPlan) {
        let n = plan.n;
        let k = plan.n_hoisted();
        self.a_values.resize(plan.sym.a_pattern().1.len(), 0.0);
        self.lvals.resize(plan.sym.l_nnz(), 0.0);
        self.fx.clear();
        self.fx.resize(n, 0.0);
        self.cursor.resize(n, 0);
        self.z.reserve(plan.max_terms);
        self.glocal.resize(plan.max_support, 0.0);
        self.pb.resize(n, 0.0);
        self.sol.resize(n, 0.0);
        self.resid.resize(n, 0.0);
        self.diag.resize(n, 0.0);
        self.hoist_vals.resize(plan.hoist_pvars.len(), 0.0);
        self.hoist_beta.resize(k, 0.0);
        self.w.resize(k * n, 0.0);
        self.cap.resize(k * k, 0.0);
        self.cap_rhs.resize(k, 0.0);
    }
}

/// Canonical order of a posynomial's terms: by exponent row (variable
/// ascending, then exponent, then row length), then log-coefficient, then
/// original index. Any insertion order of the same term multiset yields
/// the same plan — the root of the sparse path's byte-determinism.
fn canonical_term_order(lp: &LogPosynomial) -> Vec<u32> {
    let rows = lp.rows();
    let mut order: Vec<u32> = (0..rows.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
        for ((va, ea), (vb, eb)) in ra.iter().zip(rb.iter()) {
            match va.cmp(vb).then(ea.total_cmp(eb)) {
                std::cmp::Ordering::Equal => {}
                ord => return ord,
            }
        }
        ra.len()
            .cmp(&rb.len())
            .then(lp.log_coef(a as usize).total_cmp(&lp.log_coef(b as usize)))
            .then(a.cmp(&b))
    });
    order
}

/// Sorted distinct variables of a posynomial.
fn posy_support(lp: &LogPosynomial) -> Vec<u32> {
    let mut support: Vec<u32> = lp
        .rows()
        .iter()
        .flat_map(|r| r.iter().map(|&(v, _)| v as u32))
        .collect();
    support.sort_unstable();
    support.dedup();
    support
}

/// Slot of the symmetric entry `(pi, pj)` (permuted indices) in the
/// upper-CSC pattern.
fn slot_of(col_ptr: &[u32], row_idx: &[u32], pi: u32, pj: u32) -> u32 {
    let (r, c) = if pi <= pj { (pi, pj) } else { (pj, pi) };
    let lo = col_ptr[c as usize] as usize;
    let hi = col_ptr[c as usize + 1] as usize;
    let off = row_idx[lo..hi]
        .binary_search(&r)
        .expect("pattern must contain every scatter target");
    (lo + off) as u32
}

/// True when [`crate::KktMode::Auto`] should route this program to the
/// sparse backend: large enough, clique density low enough, and few
/// enough wide-support posynomials to hoist.
pub(crate) fn auto_wanted(f0: &LogPosynomial, fs: &[LogPosynomial], n: usize) -> bool {
    if n < SPARSE_MIN_N {
        return false;
    }
    let mut hoisted = 0usize;
    let mut est_nnz: u64 = 0;
    for (pi, lp) in std::iter::once(f0).chain(fs.iter()).enumerate() {
        let affine = lp.n_terms() == 1;
        if pi == 0 && affine {
            continue;
        }
        let s = posy_support(lp).len() as u64;
        if s as usize > GRAD_CLIQUE_CUTOFF {
            hoisted += 1;
            for r in lp.rows() {
                let t = r.len() as u64;
                est_nnz += t * (t + 1) / 2;
            }
        } else {
            est_nnz += s * (s + 1) / 2;
        }
    }
    let n = n as u64;
    hoisted <= MAX_HOISTED_AUTO && est_nnz <= n * (n + 1) / 8
}

impl SparseKktPlan {
    /// Analyzes the structure of a compiled GP: canonical term order,
    /// hoisting decisions, sparsity pattern, min-degree permutation,
    /// symbolic factorization, and scatter slots.
    pub fn build(f0: &LogPosynomial, fs: &[LogPosynomial], n: usize) -> Self {
        struct Raw {
            support: Vec<u32>,
            order: Vec<u32>,
            kind: u8, // 0 = skip, 1 = clique, 2 = hoisted
        }
        let mut raws = Vec::with_capacity(1 + fs.len());
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (pi, lp) in std::iter::once(f0).chain(fs.iter()).enumerate() {
            let support = posy_support(lp);
            let order = canonical_term_order(lp);
            let affine = lp.n_terms() == 1;
            let kind = if pi == 0 && affine {
                0
            } else if support.len() <= GRAD_CLIQUE_CUTOFF {
                1
            } else {
                2
            };
            match kind {
                1 => {
                    // The support clique covers every term pair too.
                    for (ai, &va) in support.iter().enumerate() {
                        for &vb in &support[ai + 1..] {
                            pairs.push((va, vb));
                        }
                    }
                }
                2 if !affine => {
                    // Only the per-term second-moment cliques enter `S`.
                    for row in lp.rows() {
                        for (ai, &(va, _)) in row.iter().enumerate() {
                            for &(vb, _) in &row[ai + 1..] {
                                pairs.push((va as u32, vb as u32));
                            }
                        }
                    }
                }
                _ => {}
            }
            raws.push(Raw {
                support,
                order,
                kind,
            });
        }

        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &pairs {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        let perm = min_degree(n, &adjacency);
        let inv = invert_permutation(&perm);

        let permuted: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(a, b)| (inv[a as usize], inv[b as usize]))
            .collect();
        let (col_ptr, row_idx) = upper_csc_from_pairs(n, &permuted);
        let sym = SymbolicChol::analyze(n, col_ptr, row_idx);
        let (cp, ri) = sym.a_pattern();
        let diag_slots: Vec<u32> = (0..n)
            .map(|k| {
                let slot = cp[k + 1] - 1;
                debug_assert_eq!(ri[slot as usize] as usize, k, "diagonal is last in column");
                slot
            })
            .collect();

        // Second pass: resolve slots now that the pattern exists.
        let mut posys = Vec::with_capacity(raws.len());
        let mut hoist_pvars = Vec::new();
        let mut hoist_offsets = vec![0u32];
        let mut max_terms = 0usize;
        let mut max_support = 0usize;
        let mut n_hoisted = 0u32;
        for (raw, lp) in raws.iter().zip(std::iter::once(f0).chain(fs.iter())) {
            let rows = lp.rows();
            let multi = rows.len() > 1;
            max_terms = max_terms.max(rows.len());
            max_support = max_support.max(raw.support.len());
            let terms: Vec<TermPlan> = raw
                .order
                .iter()
                .map(|&orig| {
                    let row = &rows[orig as usize];
                    let entries: Vec<(u32, f64)> = row
                        .iter()
                        .map(|&(v, e)| {
                            let li = raw.support.binary_search(&(v as u32)).unwrap() as u32;
                            (li, e)
                        })
                        .collect();
                    let mut sm_slots = Vec::new();
                    if multi {
                        sm_slots.reserve(row.len() * (row.len() + 1) / 2);
                        for (ai, &(va, ea)) in row.iter().enumerate() {
                            for &(vb, eb) in &row[ai..] {
                                let slot = slot_of(cp, ri, inv[va], inv[vb]);
                                sm_slots.push((slot, ea * eb));
                            }
                        }
                    }
                    TermPlan {
                        coef_idx: orig,
                        entries,
                        sm_slots,
                    }
                })
                .collect();
            let grad = match raw.kind {
                0 => GradKind::Skip,
                1 => {
                    let s = raw.support.len();
                    let mut slots = Vec::with_capacity(s * (s + 1) / 2);
                    for (ai, &va) in raw.support.iter().enumerate() {
                        for &vb in &raw.support[ai..] {
                            slots.push(slot_of(cp, ri, inv[va as usize], inv[vb as usize]));
                        }
                    }
                    GradKind::Clique(slots)
                }
                _ => {
                    for &v in &raw.support {
                        hoist_pvars.push(inv[v as usize]);
                    }
                    hoist_offsets.push(hoist_pvars.len() as u32);
                    n_hoisted += 1;
                    GradKind::Hoisted(n_hoisted - 1)
                }
            };
            posys.push(PosyPlan {
                support: raw.support.clone(),
                terms,
                grad,
            });
        }

        SparseKktPlan {
            n,
            posys,
            perm,
            sym,
            diag_slots,
            hoist_pvars,
            hoist_offsets,
            max_terms,
            max_support,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Number of hoisted (SMW-corrected) gradient outer products.
    pub fn n_hoisted(&self) -> usize {
        self.hoist_offsets.len() - 1
    }

    /// Nonzeros in the factor `L`.
    pub fn l_nnz(&self) -> usize {
        self.sym.l_nnz()
    }

    /// Evaluates the barrier function `t F0 − Σ ln(−Fi)` at `y`,
    /// assembling value, gradient (into `grad`, original variable order)
    /// and the Hessian in decomposed form (`S` values + hoisted
    /// corrections) into `s`. Returns `None` outside the barrier domain.
    pub(crate) fn eval(
        &self,
        f0: &LogPosynomial,
        fs: &[LogPosynomial],
        t: f64,
        y: &[f64],
        s: &mut SparseScratch,
        grad: &mut [f64],
    ) -> Option<f64> {
        s.a_values.fill(0.0);
        grad.fill(0.0);
        let mut value = 0.0;
        for (pi, (pp, lp)) in self
            .posys
            .iter()
            .zip(std::iter::once(f0).chain(fs.iter()))
            .enumerate()
        {
            s.z.clear();
            for tp in &pp.terms {
                let mut zk = lp.log_coef(tp.coef_idx as usize);
                for &(li, e) in &tp.entries {
                    zk += e * y[pp.support[li as usize] as usize];
                }
                s.z.push(zk);
            }
            let v = softmax_in_place(&mut s.z);
            let multi = pp.terms.len() > 1;
            let (w_grad, alpha, beta) = if pi == 0 {
                value += t * v;
                (t, t, -t)
            } else {
                if v >= 0.0 {
                    return None;
                }
                let slack = -v;
                value -= slack.ln();
                let inv_s = 1.0 / slack;
                let beta = if multi {
                    inv_s * inv_s - inv_s
                } else {
                    inv_s * inv_s
                };
                (inv_s, inv_s, beta)
            };

            let sup = pp.support.len();
            s.glocal[..sup].fill(0.0);
            for (tp, &pk) in pp.terms.iter().zip(s.z.iter()) {
                if pk == 0.0 {
                    continue;
                }
                for &(li, e) in &tp.entries {
                    s.glocal[li as usize] += pk * e;
                }
                let apk = alpha * pk;
                for &(slot, eprod) in &tp.sm_slots {
                    s.a_values[slot as usize] += apk * eprod;
                }
            }
            for li in 0..sup {
                grad[pp.support[li] as usize] += w_grad * s.glocal[li];
            }
            match &pp.grad {
                GradKind::Skip => {}
                GradKind::Clique(slots) => {
                    let mut si = 0usize;
                    for li in 0..sup {
                        let gli = beta * s.glocal[li];
                        for lj in li..sup {
                            s.a_values[slots[si] as usize] += gli * s.glocal[lj];
                            si += 1;
                        }
                    }
                }
                GradKind::Hoisted(h) => {
                    let h = *h as usize;
                    s.hoist_beta[h] = beta;
                    let off = self.hoist_offsets[h] as usize;
                    s.hoist_vals[off..off + sup].copy_from_slice(&s.glocal[..sup]);
                }
            }
        }

        // Regularization scale: |diag H| = |diag S + Σ β g²| at its max.
        for k in 0..self.n {
            s.diag[k] = s.a_values[self.diag_slots[k] as usize];
        }
        for h in 0..self.n_hoisted() {
            let b = s.hoist_beta[h];
            let (o0, o1) = (
                self.hoist_offsets[h] as usize,
                self.hoist_offsets[h + 1] as usize,
            );
            for i in o0..o1 {
                let g = s.hoist_vals[i];
                s.diag[self.hoist_pvars[i] as usize] += b * g * g;
            }
        }
        s.scale = s.diag.iter().fold(0.0_f64, |m, &d| m.max(d.abs())).max(1.0);
        Some(value)
    }

    /// Barrier value only (line search), using the plan's canonical term
    /// order so the sparse path's arithmetic is independent of the term
    /// insertion order. Returns `None` outside the domain.
    pub(crate) fn barrier_value(
        &self,
        f0: &LogPosynomial,
        fs: &[LogPosynomial],
        t: f64,
        y: &[f64],
        z: &mut Vec<f64>,
    ) -> Option<f64> {
        let mut value = 0.0;
        for (pi, (pp, lp)) in self
            .posys
            .iter()
            .zip(std::iter::once(f0).chain(fs.iter()))
            .enumerate()
        {
            z.clear();
            for tp in &pp.terms {
                let mut zk = lp.log_coef(tp.coef_idx as usize);
                for &(li, e) in &tp.entries {
                    zk += e * y[pp.support[li as usize] as usize];
                }
                z.push(zk);
            }
            let v = log_sum_exp(z);
            if pi == 0 {
                value += t * v;
            } else {
                if v >= 0.0 {
                    return None;
                }
                value -= (-v).ln();
            }
        }
        Some(value)
    }

    /// Solves `H dy = rhs` for the Hessian last assembled by
    /// [`SparseKktPlan::eval`], walking the same regularization ladder as
    /// the dense path (`(H + reg I) dy = rhs`, `reg` escalating from 0).
    /// Returns the shift that was needed, or `None` when every level
    /// failed.
    pub(crate) fn solve_newton(
        &self,
        s: &mut SparseScratch,
        rhs: &[f64],
        dy: &mut Vec<f64>,
    ) -> Option<f64> {
        let n = self.n;
        for k in 0..n {
            s.pb[k] = rhs[self.perm[k] as usize];
        }
        let mut reg = 0.0;
        for _ in 0..41 {
            if self.try_solve(s, reg) {
                dy.clear();
                dy.resize(n, 0.0);
                for k in 0..n {
                    dy[self.perm[k] as usize] = s.sol[k];
                }
                return Some(reg);
            }
            reg = if reg == 0.0 {
                1e-12 * s.scale
            } else {
                reg * 10.0
            };
        }
        None
    }

    /// One rung of the ladder: factor `S + reg I`, apply the SMW
    /// correction for the hoisted outer products, verify the residual.
    fn try_solve(&self, s: &mut SparseScratch, reg: f64) -> bool {
        let n = self.n;
        if !self
            .sym
            .factor(&s.a_values, reg, &mut s.lvals, &mut s.fx, &mut s.cursor)
        {
            return false;
        }
        s.sol.copy_from_slice(&s.pb);
        self.sym.solve(&s.lvals, &mut s.sol);

        // Corrections with β = 0 contribute nothing; skip them.
        s.active.clear();
        for h in 0..self.n_hoisted() {
            if s.hoist_beta[h] != 0.0 {
                s.active.push(h);
            }
        }
        if s.active.is_empty() {
            return true;
        }

        // W = S̃⁻¹ G, capacitance M = diag(1/β) + Gᵀ W, u = Gᵀ z.
        let k = s.active.len();
        for (ci, &h) in s.active.iter().enumerate() {
            let (o0, o1) = (
                self.hoist_offsets[h] as usize,
                self.hoist_offsets[h + 1] as usize,
            );
            let w = &mut s.w[ci * n..(ci + 1) * n];
            w.fill(0.0);
            for i in o0..o1 {
                w[self.hoist_pvars[i] as usize] = s.hoist_vals[i];
            }
            self.sym.solve(&s.lvals, w);
        }
        for (ri, &h) in s.active.iter().enumerate() {
            let (o0, o1) = (
                self.hoist_offsets[h] as usize,
                self.hoist_offsets[h + 1] as usize,
            );
            let mut u = 0.0;
            for i in o0..o1 {
                u += s.hoist_vals[i] * s.sol[self.hoist_pvars[i] as usize];
            }
            s.cap_rhs[ri] = u;
            for ci in 0..k {
                let w = &s.w[ci * n..(ci + 1) * n];
                let mut m = 0.0;
                for i in o0..o1 {
                    m += s.hoist_vals[i] * w[self.hoist_pvars[i] as usize];
                }
                if ri == ci {
                    m += 1.0 / s.hoist_beta[h];
                }
                s.cap[ri * k + ci] = m;
            }
        }
        if !solve_small_pivoted(&mut s.cap[..k * k], &mut s.cap_rhs[..k], k) {
            return false;
        }
        for ci in 0..k {
            let v = s.cap_rhs[ci];
            if v != 0.0 {
                let w = &s.w[ci * n..(ci + 1) * n];
                for (xi, wi) in s.sol.iter_mut().zip(w) {
                    *xi -= v * wi;
                }
            }
        }

        // The capacitance system can be indefinite (mixed β signs), so a
        // successful elimination does not certify the solve — check the
        // true residual `(S̃ + Σ β g gᵀ) x − b` before accepting.
        for k2 in 0..n {
            s.resid[k2] = reg * s.sol[k2] - s.pb[k2];
        }
        let (cp, ri) = self.sym.a_pattern();
        for col in 0..n {
            let xc = s.sol[col];
            let (lo, hi) = (cp[col] as usize, cp[col + 1] as usize);
            for (&r, &v) in ri[lo..hi].iter().zip(&s.a_values[lo..hi]) {
                let row = r as usize;
                if row == col {
                    s.resid[col] += v * xc;
                } else {
                    s.resid[row] += v * xc;
                    s.resid[col] += v * s.sol[row];
                }
            }
        }
        for &h in &s.active {
            let (o0, o1) = (
                self.hoist_offsets[h] as usize,
                self.hoist_offsets[h + 1] as usize,
            );
            let mut gx = 0.0;
            for i in o0..o1 {
                gx += s.hoist_vals[i] * s.sol[self.hoist_pvars[i] as usize];
            }
            let bgx = s.hoist_beta[h] * gx;
            for i in o0..o1 {
                s.resid[self.hoist_pvars[i] as usize] += bgx * s.hoist_vals[i];
            }
        }
        let rmax = s.resid.iter().fold(0.0_f64, |m, &r| m.max(r.abs()));
        let bmax = s.pb.iter().fold(0.0_f64, |m, &b| m.max(b.abs()));
        let xmax = s.sol.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        rmax.is_finite()
            && rmax <= SMW_RESIDUAL_TOL * bmax.max(s.scale * xmax).max(f64::MIN_POSITIVE)
    }
}

/// Gaussian elimination with partial pivoting on a small row-major `k × k`
/// system, solving in place into `rhs`. Returns `false` on a (near-)
/// singular pivot.
fn solve_small_pivoted(m: &mut [f64], rhs: &mut [f64], k: usize) -> bool {
    for col in 0..k {
        let mut piv = col;
        let mut best = m[col * k + col].abs();
        for r in col + 1..k {
            let a = m[r * k + col].abs();
            if a > best {
                best = a;
                piv = r;
            }
        }
        if best <= 0.0 || !best.is_finite() {
            return false;
        }
        if piv != col {
            for c in 0..k {
                m.swap(col * k + c, piv * k + c);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * k + col];
        for r in col + 1..k {
            let f = m[r * k + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..k {
                m[r * k + c] -= f * m[col * k + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    for col in (0..k).rev() {
        let mut acc = rhs[col];
        for c in col + 1..k {
            acc -= m[col * k + c] * rhs[c];
        }
        rhs[col] = acc / m[col * k + col];
    }
    rhs.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::{Monomial, Posynomial};
    use crate::solver::{solve_with_start, SolverOptions};

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    fn sample_problem() -> GpProblem {
        // min 2/x + 3/y s.t. x y <= 4, x + y <= 5.
        let mut p = GpProblem::new(2);
        let mut obj = mono(2.0, &[(0, -1.0)]);
        obj.add(&mono(3.0, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        p.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), 4.0)
            .unwrap();
        let mut c2 = mono(1.0, &[(0, 1.0)]);
        c2.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c2, 5.0).unwrap();
        p
    }

    #[test]
    fn solver_output_passes_kkt() {
        let p = sample_problem();
        let s = solve_with_start(&p, &[0.5, 0.5], &SolverOptions::default()).unwrap();
        let report = kkt_report(&p, &s.x);
        assert!(
            report.is_optimal(1e-4),
            "stationarity {} complementarity {} feasibility {}",
            report.stationarity,
            report.complementarity,
            report.feasibility
        );
        assert!(report.multipliers.iter().all(|&nu| nu >= 0.0));
    }

    #[test]
    fn non_optimal_point_fails_kkt() {
        let p = sample_problem();
        // Interior, feasible, clearly not optimal.
        let report = kkt_report(&p, &[0.5, 0.5]);
        assert!(report.feasibility < 0.0, "point should be feasible");
        assert!(
            report.stationarity > 1e-2,
            "stationarity should be large away from the optimum, got {}",
            report.stationarity
        );
    }

    #[test]
    fn unconstrained_interior_minimum_has_zero_gradient() {
        // min x + 1/x: optimum x = 1, no constraints -> stationarity is
        // just the objective gradient.
        let mut p = GpProblem::new(1);
        let mut obj = mono(1.0, &[(0, 1.0)]);
        obj.add(&mono(1.0, &[(0, -1.0)]));
        p.set_objective(obj).unwrap();
        let report = kkt_report(&p, &[1.0]);
        assert!(report.stationarity < 1e-12);
        assert!(report.multipliers.is_empty());
    }

    // --- sparse KKT plan -------------------------------------------------

    /// AAO-shaped test program in compiled form: one wide-support
    /// multi-term objective (hoisted when `n > GRAD_CLIQUE_CUTOFF`) plus
    /// chains of narrow-support constraints (clique-scattered), all
    /// strictly feasible on `y ∈ [-0.1, 0.1]`.
    fn aao_like_logposys(n: usize) -> (LogPosynomial, Vec<LogPosynomial>) {
        let mut obj = Posynomial::monomial(Monomial::new(1.5, [(0, -1.0)]).unwrap());
        for v in 1..n {
            obj.add(&Posynomial::monomial(
                Monomial::new(1.5 + 0.01 * v as f64, [(v, -1.0)]).unwrap(),
            ));
        }
        for v in 0..n {
            obj.add(&Posynomial::monomial(
                Monomial::new(0.5 + 0.003 * v as f64, [(v, 1.0)]).unwrap(),
            ));
        }
        let mut cons = Vec::new();
        for v in 0..n - 1 {
            // 0.25 x_v x_{v+1} <= 1: single-term (affine in log space).
            cons.push(Posynomial::monomial(
                Monomial::new(0.25, [(v, 1.0), (v + 1, 1.0)]).unwrap(),
            ));
        }
        for v in (0..n.saturating_sub(3)).step_by(3) {
            // (x_v + x_{v+3}) / 6 <= 1: multi-term, narrow support.
            let mut c = Posynomial::monomial(Monomial::new(1.0 / 6.0, [(v, 1.0)]).unwrap());
            c.add(&Posynomial::monomial(
                Monomial::new(1.0 / 6.0, [(v + 3, 1.0)]).unwrap(),
            ));
            cons.push(c);
        }
        // One mixed-exponent three-variable posynomial for variety.
        let mut c = Posynomial::monomial(Monomial::new(0.125, [(0, 1.0), (1, 1.0)]).unwrap());
        c.add(&Posynomial::monomial(
            Monomial::new(0.125, [(2, 0.5)]).unwrap(),
        ));
        c.add(&Posynomial::monomial(
            Monomial::new(0.125, [(0, 1.0)]).unwrap(),
        ));
        cons.push(c);
        let f0 = LogPosynomial::compile(&obj, n);
        let fs = cons.iter().map(|p| LogPosynomial::compile(p, n)).collect();
        (f0, fs)
    }

    fn test_point(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.1 * (((i * 37 + 11) % 19) as f64 / 9.0 - 1.0))
            .collect()
    }

    /// Dense oracle: assemble the barrier value/gradient/Hessian exactly
    /// as the dense backend does (same formulas as `barrier_eval_full`).
    fn dense_barrier_oracle(
        f0: &LogPosynomial,
        fs: &[LogPosynomial],
        t: f64,
        y: &[f64],
    ) -> (f64, Vec<f64>, Matrix) {
        let n = y.len();
        let mut probs = Vec::new();
        let mut gi = vec![0.0; n];
        let mut dense = vec![0.0; n];
        let mut hess = Matrix::zeros(n, n);
        let v0 = f0.value_grad_buf(y, &mut probs, &mut gi);
        let mut value = t * v0;
        let mut grad: Vec<f64> = gi.iter().map(|&g| t * g).collect();
        if f0.n_terms() > 1 {
            f0.add_second_moment(&probs, t, &mut dense, &mut hess);
            hess.add_outer(-t, &gi);
        }
        for fi in fs {
            let vi = fi.value_grad_buf(y, &mut probs, &mut gi);
            assert!(vi < 0.0, "test point must be strictly feasible");
            let s = -vi;
            value -= s.ln();
            let inv_s = 1.0 / s;
            for (g, &gg) in grad.iter_mut().zip(&gi) {
                *g += inv_s * gg;
            }
            if fi.n_terms() > 1 {
                fi.add_second_moment(&probs, inv_s, &mut dense, &mut hess);
                hess.add_outer(inv_s * inv_s - inv_s, &gi);
            } else {
                hess.add_outer(inv_s * inv_s, &gi);
            }
        }
        (value, grad, hess)
    }

    /// Expands the sparse decomposition (`S` values plus hoisted `β g gᵀ`
    /// corrections) held in `s` back into a dense matrix in original
    /// variable order.
    fn reconstruct_dense(plan: &SparseKktPlan, s: &SparseScratch) -> Matrix {
        let n = plan.n;
        let mut h = Matrix::zeros(n, n);
        let (cp, ri) = plan.sym.a_pattern();
        for col in 0..n {
            let (lo, hi) = (cp[col] as usize, cp[col + 1] as usize);
            for (&r, &v) in ri[lo..hi].iter().zip(&s.a_values[lo..hi]) {
                let row = r as usize;
                let (oi, oj) = (plan.perm[row] as usize, plan.perm[col] as usize);
                h[(oi, oj)] += v;
                if row != col {
                    h[(oj, oi)] += v;
                }
            }
        }
        for hi in 0..plan.n_hoisted() {
            let b = s.hoist_beta[hi];
            let (o0, o1) = (
                plan.hoist_offsets[hi] as usize,
                plan.hoist_offsets[hi + 1] as usize,
            );
            for i in o0..o1 {
                let gi = s.hoist_vals[i];
                let oi = plan.perm[plan.hoist_pvars[i] as usize] as usize;
                for j in o0..o1 {
                    let oj = plan.perm[plan.hoist_pvars[j] as usize] as usize;
                    h[(oi, oj)] += b * gi * s.hoist_vals[j];
                }
            }
        }
        h
    }

    #[test]
    fn sparse_decomposition_reconstructs_dense_hessian() {
        // n > GRAD_CLIQUE_CUTOFF so the objective gradient is hoisted.
        let n = 60;
        let (f0, fs) = aao_like_logposys(n);
        let plan = SparseKktPlan::build(&f0, &fs, n);
        assert_eq!(plan.n_hoisted(), 1, "wide objective must be hoisted");
        let mut s = SparseScratch::default();
        s.ensure(&plan);
        let y = test_point(n);
        let t = 3.0;
        let mut grad = vec![0.0; n];
        let value = plan.eval(&f0, &fs, t, &y, &mut s, &mut grad).unwrap();

        let (dvalue, dgrad, dhess) = dense_barrier_oracle(&f0, &fs, t, &y);
        assert!((value - dvalue).abs() <= 1e-9 * dvalue.abs().max(1.0));
        for (g, dg) in grad.iter().zip(&dgrad) {
            assert!((g - dg).abs() <= 1e-9 * dg.abs().max(1.0), "grad mismatch");
        }
        let h = reconstruct_dense(&plan, &s);
        let scale = dhess.max_abs_diagonal().max(1.0);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (h[(i, j)], dhess[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-9 * scale,
                    "H[{i}][{j}]: sparse {a} vs dense {b}"
                );
            }
        }
    }

    #[test]
    fn sparse_newton_solve_matches_dense() {
        let n = 60;
        let (f0, fs) = aao_like_logposys(n);
        let plan = SparseKktPlan::build(&f0, &fs, n);
        let mut s = SparseScratch::default();
        s.ensure(&plan);
        let y = test_point(n);
        let mut grad = vec![0.0; n];
        plan.eval(&f0, &fs, 3.0, &y, &mut s, &mut grad).unwrap();

        let rhs: Vec<f64> = (0..n)
            .map(|i| ((i * 29 + 3) % 13) as f64 / 13.0 - 0.5)
            .collect();
        let mut dy = Vec::new();
        let reg = plan.solve_newton(&mut s, &rhs, &mut dy).unwrap();
        assert_eq!(reg, 0.0, "well-conditioned system needs no shift");

        let (_, _, dhess) = dense_barrier_oracle(&f0, &fs, 3.0, &y);
        let mut chol = Matrix::zeros(n, n);
        let mut expect = Vec::new();
        assert!(dhess.cholesky_solve_into(&rhs, &mut chol, &mut expect));
        let xmax = expect.iter().fold(0.0_f64, |m, &v| m.max(v.abs())).max(1.0);
        for (a, b) in dy.iter().zip(&expect) {
            assert!((a - b).abs() <= 1e-6 * xmax, "dy mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn dense_and_sparse_backends_reach_same_optimum() {
        // Same program solved end-to-end by both backends (forced modes,
        // below the Auto size floor on purpose).
        let n = 60;
        let mut p = GpProblem::new(n);
        let mut obj = mono(1.5, &[(0, -1.0)]);
        for v in 1..n {
            obj.add(&mono(1.5 + 0.01 * v as f64, &[(v, -1.0)]));
        }
        for v in 0..n {
            obj.add(&mono(0.5 + 0.003 * v as f64, &[(v, 1.0)]));
        }
        p.set_objective(obj).unwrap();
        for v in 0..n - 1 {
            p.add_constraint_le(mono(1.0, &[(v, 1.0), (v + 1, 1.0)]), 4.0)
                .unwrap();
        }
        for v in (0..n - 3).step_by(3) {
            let mut c = mono(1.0, &[(v, 1.0)]);
            c.add(&mono(1.0, &[(v + 3, 1.0)]));
            p.add_constraint_le(c, 6.0).unwrap();
        }
        let start = vec![1.0; n];
        let dense = solve_with_start(
            &p,
            &start,
            &SolverOptions {
                kkt: crate::solver::KktMode::Dense,
                ..Default::default()
            },
        )
        .unwrap();
        let sparse = solve_with_start(
            &p,
            &start,
            &SolverOptions {
                kkt: crate::solver::KktMode::Sparse,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (dense.objective - sparse.objective).abs() <= 1e-6 * dense.objective.abs(),
            "objectives diverge: dense {} sparse {}",
            dense.objective,
            sparse.objective
        );
        for (a, b) in dense.x.iter().zip(&sparse.x) {
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                "x mismatch: {a} vs {b}"
            );
        }
    }

    #[test]
    fn active_constraint_receives_positive_multiplier() {
        // min 1/x s.t. x <= 2: optimum at x = 2 with active bound.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, -1.0)])).unwrap();
        p.add_upper_bound(0, 2.0).unwrap();
        let report = kkt_report(&p, &[2.0]);
        assert!(report.is_optimal(1e-9));
        assert!(report.multipliers[0] > 0.5, "bound must be active");
    }
}
