//! Log-space transform of posynomials.
//!
//! Under the change of variables `y_i = ln x_i`, a posynomial
//! `f(x) = sum_k c_k prod_i x_i^{a_ki}` becomes
//! `F(y) = ln sum_k exp(a_k . y + ln c_k)`, a smooth convex function
//! (log-sum-exp of affine functions). This module pre-compiles a posynomial
//! into that form and evaluates value, gradient and Hessian stably.

use crate::linalg::Matrix;
use crate::posynomial::Posynomial;

/// A posynomial compiled to log-space: rows of exponents plus log-coefficients.
#[derive(Debug, Clone)]
pub struct LogPosynomial {
    /// Per-term sparse exponent rows `(var, exponent)`.
    rows: Vec<Vec<(usize, f64)>>,
    /// Per-term `ln c_k`.
    log_coefs: Vec<f64>,
    /// Number of variables in the ambient space.
    n_vars: usize,
}

/// Value, gradient and Hessian of a `LogPosynomial` at a point.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// `F(y)`.
    pub value: f64,
    /// `∇F(y)`.
    pub grad: Vec<f64>,
    /// `∇²F(y)` (symmetric, `n_vars x n_vars`).
    pub hess: Matrix,
}

impl LogPosynomial {
    /// Compiles a posynomial for an ambient space of `n_vars` variables.
    ///
    /// # Panics
    /// Panics if the posynomial references a variable `>= n_vars` or is
    /// empty (callers validate through [`crate::problem::GpProblem`]).
    pub fn compile(p: &Posynomial, n_vars: usize) -> Self {
        assert!(!p.is_zero(), "cannot compile the zero posynomial");
        if let Some(mv) = p.max_var() {
            assert!(mv < n_vars, "posynomial references variable out of range");
        }
        let mut rows = Vec::with_capacity(p.n_terms());
        let mut log_coefs = Vec::with_capacity(p.n_terms());
        for t in p.terms() {
            rows.push(t.exponents().to_vec());
            log_coefs.push(t.coef().ln());
        }
        LogPosynomial {
            rows,
            log_coefs,
            n_vars,
        }
    }

    /// Number of monomial terms.
    pub fn n_terms(&self) -> usize {
        self.rows.len()
    }

    /// Per-term sparse exponent rows (the sparse KKT plan reads the
    /// structure directly to build its support cliques).
    pub(crate) fn rows(&self) -> &[Vec<(usize, f64)>] {
        &self.rows
    }

    /// Log-coefficient of term `k`.
    pub(crate) fn log_coef(&self, k: usize) -> f64 {
        self.log_coefs[k]
    }

    /// Refreshes the log-coefficients in place from `p` when the term
    /// structure (number of terms and exponent rows) matches; returns
    /// `false` (leaving `self` untouched) when it does not.
    ///
    /// DAB recomputation rebuilds the same condition posynomial with
    /// coefficients that track the drifting data values, so the exponent
    /// structure is almost always stable and recompilation is wasted work.
    pub fn refresh_coefs(&mut self, p: &Posynomial) -> bool {
        if p.n_terms() != self.rows.len() {
            return false;
        }
        for (t, row) in p.terms().iter().zip(self.rows.iter()) {
            if t.exponents() != &row[..] {
                return false;
            }
        }
        for (t, lc) in p.terms().iter().zip(self.log_coefs.iter_mut()) {
            *lc = t.coef().ln();
        }
        true
    }

    /// True if this is a single monomial, i.e. `F` is affine in `y`.
    pub fn is_affine(&self) -> bool {
        self.rows.len() == 1
    }

    /// Per-term affine values `z_k = a_k . y + ln c_k`.
    fn term_values(&self, y: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for (row, lc) in self.rows.iter().zip(&self.log_coefs) {
            let mut z = *lc;
            for &(v, e) in row {
                z += e * y[v];
            }
            out.push(z);
        }
    }

    /// Evaluates `F(y)` only.
    pub fn value(&self, y: &[f64]) -> f64 {
        debug_assert_eq!(y.len(), self.n_vars);
        let mut z = Vec::with_capacity(self.rows.len());
        self.term_values(y, &mut z);
        log_sum_exp(&z)
    }

    /// Evaluates `F(y)` reusing `z` as the per-term scratch buffer.
    pub fn value_buf(&self, y: &[f64], z: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(y.len(), self.n_vars);
        self.term_values(y, z);
        log_sum_exp(z)
    }

    /// Evaluates value and gradient without allocating: `probs` is reused
    /// as scratch and left holding the softmax weights `p_k` (needed by
    /// [`LogPosynomial::add_second_moment`]); `grad` is overwritten.
    pub fn value_grad_buf(&self, y: &[f64], probs: &mut Vec<f64>, grad: &mut [f64]) -> f64 {
        debug_assert_eq!(y.len(), self.n_vars);
        debug_assert_eq!(grad.len(), self.n_vars);
        self.term_values(y, probs);
        let value = softmax_in_place(probs);
        grad.fill(0.0);
        for (row, pk) in self.rows.iter().zip(probs.iter()) {
            for &(v, e) in row {
                grad[v] += pk * e;
            }
        }
        value
    }

    /// Adds `alpha * sum_k p_k a_k a_kᵀ` (the softmax second moment of the
    /// exponent rows) into `hess`, with `probs` as produced by
    /// [`LogPosynomial::value_grad_buf`] and `dense_row` as scratch.
    ///
    /// Together with the gradient this yields the Hessian:
    /// `∇²F = sum_k p_k a_k a_kᵀ − ∇F ∇Fᵀ`.
    pub fn add_second_moment(
        &self,
        probs: &[f64],
        alpha: f64,
        dense_row: &mut [f64],
        hess: &mut Matrix,
    ) {
        debug_assert_eq!(probs.len(), self.rows.len());
        debug_assert_eq!(dense_row.len(), self.n_vars);
        for (row, pk) in self.rows.iter().zip(probs.iter()) {
            if *pk == 0.0 {
                continue;
            }
            dense_row.fill(0.0);
            for &(v, e) in row {
                dense_row[v] = e;
            }
            hess.add_outer(alpha * pk, dense_row);
        }
    }

    /// Evaluates value and gradient.
    pub fn value_grad(&self, y: &[f64]) -> (f64, Vec<f64>) {
        let mut z = Vec::with_capacity(self.rows.len());
        self.term_values(y, &mut z);
        let (value, p) = softmax(&z);
        let mut grad = vec![0.0; self.n_vars];
        for (row, pk) in self.rows.iter().zip(&p) {
            for &(v, e) in row {
                grad[v] += pk * e;
            }
        }
        (value, grad)
    }

    /// Evaluates value, gradient and Hessian.
    ///
    /// `∇F = sum_k p_k a_k`, `∇²F = sum_k p_k a_k a_kᵀ − ∇F ∇Fᵀ`, where
    /// `p = softmax(z)`.
    pub fn evaluate(&self, y: &[f64]) -> Evaluation {
        let mut z = Vec::with_capacity(self.rows.len());
        self.term_values(y, &mut z);
        let (value, p) = softmax(&z);
        let n = self.n_vars;
        let mut grad = vec![0.0; n];
        let mut hess = Matrix::zeros(n, n);
        let mut dense_row = vec![0.0; n];
        for (row, pk) in self.rows.iter().zip(&p) {
            if *pk == 0.0 {
                continue;
            }
            for &(v, e) in row {
                grad[v] += pk * e;
            }
            if self.rows.len() > 1 {
                // Accumulate p_k a_k a_k^T using the sparse row.
                for d in dense_row.iter_mut() {
                    *d = 0.0;
                }
                for &(v, e) in row {
                    dense_row[v] = e;
                }
                hess.add_outer(*pk, &dense_row);
            }
        }
        if self.rows.len() > 1 {
            hess.add_outer(-1.0, &grad);
        }
        Evaluation { value, grad, hess }
    }
}

/// Numerically stable `ln sum_k exp(z_k)`.
pub fn log_sum_exp(z: &[f64]) -> f64 {
    debug_assert!(!z.is_empty());
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = z.iter().map(|&zi| (zi - m).exp()).sum();
    m + s.ln()
}

/// Stable softmax over `z` in place; returns `log_sum_exp(z)` and leaves
/// `z` holding the softmax weights.
pub(crate) fn softmax_in_place(z: &mut [f64]) -> f64 {
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut s = 0.0;
    for zi in z.iter_mut() {
        *zi = (*zi - m).exp();
        s += *zi;
    }
    for zi in z.iter_mut() {
        *zi /= s;
    }
    m + s.ln()
}

/// Stable softmax; returns `(log_sum_exp(z), softmax(z))`.
fn softmax(z: &[f64]) -> (f64, Vec<f64>) {
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut p: Vec<f64> = z.iter().map(|&zi| (zi - m).exp()).collect();
    let s: f64 = p.iter().sum();
    for pi in &mut p {
        *pi /= s;
    }
    (m + s.ln(), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::Monomial;

    fn sample() -> Posynomial {
        // f(x) = 2 x0 x1 + 3 / x0
        Posynomial::from_terms(vec![
            Monomial::new(2.0, [(0, 1.0), (1, 1.0)]).unwrap(),
            Monomial::new(3.0, [(0, -1.0)]).unwrap(),
        ])
    }

    #[test]
    fn value_matches_direct_evaluation() {
        let p = sample();
        let lp = LogPosynomial::compile(&p, 2);
        let x = [1.5_f64, 0.7_f64];
        let y = [x[0].ln(), x[1].ln()];
        assert!((lp.value(&y) - p.eval(&x).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let lp = LogPosynomial::compile(&sample(), 2);
        let y = [0.3, -0.2];
        let (_, g) = lp.value_grad(&y);
        let h = 1e-6;
        for i in 0..2 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (lp.value(&yp) - lp.value(&ym)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "grad[{i}] {} vs fd {fd}", g[i]);
        }
    }

    #[test]
    fn hessian_matches_finite_differences() {
        let lp = LogPosynomial::compile(&sample(), 2);
        let y = [0.1, 0.4];
        let ev = lp.evaluate(&y);
        let h = 1e-5;
        for i in 0..2 {
            for j in 0..2 {
                let mut ypp = y;
                ypp[i] += h;
                ypp[j] += h;
                let mut ypm = y;
                ypm[i] += h;
                ypm[j] -= h;
                let mut ymp = y;
                ymp[i] -= h;
                ymp[j] += h;
                let mut ymm = y;
                ymm[i] -= h;
                ymm[j] -= h;
                let fd = (lp.value(&ypp) - lp.value(&ypm) - lp.value(&ymp) + lp.value(&ymm))
                    / (4.0 * h * h);
                assert!(
                    (ev.hess[(i, j)] - fd).abs() < 1e-4,
                    "hess[{i}{j}] {} vs fd {fd}",
                    ev.hess[(i, j)]
                );
            }
        }
    }

    #[test]
    fn monomial_transform_is_affine() {
        let p = Posynomial::monomial(Monomial::new(5.0, [(0, 2.0)]).unwrap());
        let lp = LogPosynomial::compile(&p, 1);
        assert!(lp.is_affine());
        let ev = lp.evaluate(&[0.7]);
        assert!((ev.value - (5.0_f64.ln() + 2.0 * 0.7)).abs() < 1e-12);
        assert!((ev.grad[0] - 2.0).abs() < 1e-12);
        assert!(ev.hess[(0, 0)].abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        let v = log_sum_exp(&[-1000.0, -1001.0]);
        assert!(v.is_finite());
    }
}
