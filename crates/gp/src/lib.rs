//! # pq-gp — a self-contained geometric-programming solver
//!
//! The DAB-assignment formulations of Shah & Ramamritham (ICDE 2008) are
//! geometric programs (GPs): posynomial objectives (estimated refresh +
//! recomputation message rates) minimized subject to posynomial constraints
//! (the necessary-and-sufficient query-accuracy conditions). The paper used
//! CVXOPT; this crate replaces it with a from-scratch implementation:
//!
//! * [`posynomial`] — monomials / posynomials over positive variables;
//! * [`logsumexp`] — the log-variable transform making GPs convex;
//! * [`problem`] — program construction and validation;
//! * [`solver`] — a log-barrier interior-point method with damped Newton
//!   steps, built on the dense linear algebra in [`linalg`];
//! * [`sparse`] + [`ordering`] — a sparse Cholesky KKT backend (upper-CSC
//!   up-looking factorization under a min-degree ordering) that exploits
//!   the query↔item graph structure of joint AAO units, scaling the Newton
//!   solve to 10k+ variables.
//!
//! Small programs (tens to a couple hundred variables) stay on the dense
//! `O(n^3)` path; larger structured units are routed to the sparse backend
//! automatically (see [`KktMode`]).
//!
//! ```
//! use pq_gp::{GpProblem, Monomial, Posynomial, SolverOptions, solve_with_start};
//!
//! // minimize 1/x + 1/y  subject to  x + y <= 1
//! let mut p = GpProblem::new(2);
//! let mut obj = Posynomial::monomial(Monomial::new(1.0, [(0, -1.0)]).unwrap());
//! obj.add(&Posynomial::monomial(Monomial::new(1.0, [(1, -1.0)]).unwrap()));
//! p.set_objective(obj).unwrap();
//! let mut c = Posynomial::monomial(Monomial::new(1.0, [(0, 1.0)]).unwrap());
//! c.add(&Posynomial::monomial(Monomial::new(1.0, [(1, 1.0)]).unwrap()));
//! p.add_constraint_le(c, 1.0).unwrap();
//! let sol = solve_with_start(&p, &[0.25, 0.25], &SolverOptions::default()).unwrap();
//! assert!((sol.x[0] - 0.5).abs() < 1e-5);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod kkt;
pub mod linalg;
pub mod logsumexp;
pub mod ordering;
pub mod posynomial;
pub mod problem;
pub mod solver;
pub mod sparse;

pub use error::GpError;
pub use kkt::{kkt_report, KktReport, SparseKktPlan};
pub use posynomial::{Monomial, Posynomial};
pub use problem::{GpProblem, GpSolution};
pub use solver::{
    solve, solve_with_start, CompiledGp, KktMode, SolveWorkspace, SolverOptions, WarmStart,
};
