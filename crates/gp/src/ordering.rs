//! Fill-reducing elimination orderings for sparse symmetric factorization.
//!
//! The sparse KKT path factors `P A Pᵀ = L Lᵀ`; the permutation `P` decides
//! how much fill-in `L` suffers. This module implements a minimum-degree
//! ordering on the quotient (elimination) graph — the classic AMD family
//! without supervariable detection, which is plenty for the block-arrow
//! patterns the query↔item graph induces (hub variables with global support
//! are pushed to the end of the elimination, keeping `L` near-linear in the
//! input pattern).
//!
//! Everything is deterministic: the pivot with the smallest current degree
//! is chosen, ties broken by lowest variable index, and every neighbor scan
//! runs in sorted order. Two calls on the same adjacency structure return
//! the same permutation bit for bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes a minimum-degree elimination order for a symmetric sparsity
/// pattern given as per-node adjacency lists (no self loops required;
/// duplicates tolerated). Returns `perm` with `perm[new] = old`: the node
/// eliminated first is `perm[0]`.
///
/// # Panics
/// Panics if an adjacency entry is `>= n`.
pub fn min_degree(n: usize, adjacency: &[Vec<u32>]) -> Vec<u32> {
    assert_eq!(adjacency.len(), n, "adjacency length");
    // Clean adjacency: sorted, deduped, no self loops.
    let mut adj: Vec<Vec<u32>> = adjacency
        .iter()
        .enumerate()
        .map(|(i, nbrs)| {
            let mut v: Vec<u32> = nbrs.iter().copied().filter(|&u| u as usize != i).collect();
            v.sort_unstable();
            v.dedup();
            if let Some(&last) = v.last() {
                assert!((last as usize) < n, "adjacency entry {last} out of range");
            }
            v
        })
        .collect();

    // Quotient-graph state. Eliminating pivot `p` creates *element* `p`
    // whose variable list is the pivot's eliminated clique; variables keep
    // a list of adjacent elements instead of the clique edges themselves,
    // which is what keeps elimination near-linear in practice.
    let mut elem_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut elem_vars: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut alive = vec![true; n];
    let mut absorbed = vec![false; n];
    let mut degree: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();

    // Marker for set unions without clearing: `mark[v] == stamp` means seen.
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;

    // Lazy min-heap of (degree, node); stale entries are skipped on pop.
    // `Reverse` tuple ordering gives smallest degree first, then lowest
    // node index — the deterministic tie-break.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..n as u32)
        .map(|v| Reverse((degree[v as usize], v)))
        .collect();

    let mut perm = Vec::with_capacity(n);
    let mut clique: Vec<u32> = Vec::new();
    while perm.len() < n {
        let p = loop {
            let Reverse((d, v)) = heap
                .pop()
                .expect("heap cannot drain before all nodes placed");
            if alive[v as usize] && degree[v as usize] == d {
                break v as usize;
            }
        };

        // The pivot's clique: live direct neighbors plus the union of its
        // adjacent elements' variable lists.
        stamp += 1;
        mark[p] = stamp;
        clique.clear();
        for &u in &adj[p] {
            if alive[u as usize] && mark[u as usize] != stamp {
                mark[u as usize] = stamp;
                clique.push(u);
            }
        }
        for &e in &elem_of[p] {
            if absorbed[e as usize] {
                continue;
            }
            for &u in &elem_vars[e as usize] {
                if alive[u as usize] && mark[u as usize] != stamp {
                    mark[u as usize] = stamp;
                    clique.push(u);
                }
            }
        }
        clique.sort_unstable();
        for &e in &elem_of[p] {
            // Old elements are subsets of the new one: absorb them.
            absorbed[e as usize] = true;
            elem_vars[e as usize] = Vec::new();
        }
        elem_of[p] = Vec::new();
        elem_vars[p] = clique.clone();
        alive[p] = false;
        perm.push(p as u32);

        // Update every clique member: its edges into the clique are now
        // represented by element `p`, and its degree changed.
        for &vu in &clique {
            let v = vu as usize;
            // `stamp` still marks the clique ∪ {p}; prune direct edges
            // covered by the new element and edges to dead nodes.
            adj[v].retain(|&u| alive[u as usize] && mark[u as usize] != stamp);
            elem_of[v].retain(|&e| !absorbed[e as usize]);
            elem_of[v].push(p as u32);

            // Exact external degree: |adj ∪ element vars| minus self.
            stamp += 1;
            mark[v] = stamp;
            let mut d = 0u32;
            for &u in &adj[v] {
                if mark[u as usize] != stamp {
                    mark[u as usize] = stamp;
                    d += 1;
                }
            }
            for &e in &elem_of[v] {
                for &u in &elem_vars[e as usize] {
                    if alive[u as usize] && mark[u as usize] != stamp {
                        mark[u as usize] = stamp;
                        d += 1;
                    }
                }
            }
            degree[v] = d;
            heap.push(Reverse((d, vu)));
        }
    }
    perm
}

/// Inverts a permutation: `inv[perm[i]] = i`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(perm: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.iter().all(|&p| {
            let p = p as usize;
            p < n && !std::mem::replace(&mut seen[p], true)
        }) && perm.len() == n
    }

    /// Fill-in of eliminating in `perm` order, counted on a dense bitmap
    /// (test sizes are tiny).
    fn fill_in(n: usize, edges: &[(u32, u32)], perm: &[u32]) -> usize {
        let mut a = vec![vec![false; n]; n];
        for &(u, v) in edges {
            a[u as usize][v as usize] = true;
            a[v as usize][u as usize] = true;
        }
        let inv = invert_permutation(perm);
        let mut fill = 0usize;
        for (step, &ps) in perm.iter().enumerate() {
            let p = ps as usize;
            let nbrs: Vec<usize> = (0..n)
                .filter(|&u| a[p][u] && inv[u] > step as u32)
                .collect();
            for (ai, &u) in nbrs.iter().enumerate() {
                for &v in &nbrs[ai + 1..] {
                    if !a[u][v] {
                        a[u][v] = true;
                        a[v][u] = true;
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    fn adjacency(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        adj
    }

    #[test]
    fn returns_a_permutation() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let perm = min_degree(4, &adjacency(4, &edges));
        assert!(is_permutation(&perm, 4));
    }

    #[test]
    fn star_hub_is_deferred_until_cheap() {
        // Star: node 0 adjacent to all others. Eliminating the hub early
        // would create a clique over everything; min-degree defers it
        // until its external degree has collapsed (it may then tie-break
        // ahead of the final leaf, which is equally fill-free).
        let edges: Vec<(u32, u32)> = (1..8).map(|i| (0, i)).collect();
        let perm = min_degree(8, &adjacency(8, &edges));
        assert!(is_permutation(&perm, 8));
        let hub_pos = perm.iter().position(|&p| p == 0).unwrap();
        assert!(hub_pos >= 6, "hub eliminated too early: {perm:?}");
        assert_eq!(
            fill_in(8, &edges, &perm),
            0,
            "star elimination is fill-free"
        );
    }

    #[test]
    fn chain_elimination_is_fill_free() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let perm = min_degree(10, &adjacency(10, &edges));
        assert!(is_permutation(&perm, 10));
        assert_eq!(fill_in(10, &edges, &perm), 0);
    }

    #[test]
    fn beats_natural_order_on_arrow_matrix() {
        // Arrow: last variable coupled to everyone. Natural order (hub
        // first here, by reversing) fills completely; min-degree does not.
        let n = 12u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
        let natural: Vec<u32> = (0..n).collect(); // eliminates hub 0 first
        let md = min_degree(n as usize, &adjacency(n as usize, &edges));
        assert!(fill_in(n as usize, &edges, &md) < fill_in(n as usize, &edges, &natural));
    }

    #[test]
    fn deterministic_across_calls() {
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (1, 4),
        ];
        let adj = adjacency(6, &edges);
        assert_eq!(min_degree(6, &adj), min_degree(6, &adj));
    }

    #[test]
    fn handles_isolated_nodes_and_empty_graph() {
        let perm = min_degree(3, &[Vec::new(), Vec::new(), Vec::new()]);
        assert_eq!(perm, vec![0, 1, 2]);
        assert!(min_degree(0, &[]).is_empty());
    }

    #[test]
    fn invert_roundtrips() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(inv[p as usize] as usize, i);
        }
    }
}
