//! Posynomials: the building blocks of geometric programs.
//!
//! A *monomial* is `c * x_1^{a_1} * ... * x_n^{a_n}` with `c > 0` and real
//! exponents `a_i`. A *posynomial* is a sum of monomials. Geometric programs
//! minimize a posynomial subject to posynomial constraints `f_i(x) <= 1`
//! over strictly positive variables.

use crate::error::GpError;

/// A single monomial term `coef * prod_i x_i^{exp_i}` with `coef > 0`.
///
/// Exponents are stored sparsely as `(variable index, exponent)` pairs,
/// sorted by variable index with no duplicates and no zero exponents.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    coef: f64,
    exps: Vec<(usize, f64)>,
}

impl Monomial {
    /// Creates a monomial from a coefficient and `(var, exponent)` pairs.
    ///
    /// Pairs may arrive unsorted and with duplicates (exponents for the same
    /// variable are summed). Zero exponents are dropped.
    ///
    /// # Errors
    /// Returns [`GpError::NonPositiveCoefficient`] unless `coef > 0` and
    /// finite, and [`GpError::InvalidExponent`] for non-finite exponents.
    pub fn new(coef: f64, exps: impl IntoIterator<Item = (usize, f64)>) -> Result<Self, GpError> {
        if !(coef.is_finite() && coef > 0.0) {
            return Err(GpError::NonPositiveCoefficient(coef));
        }
        let mut pairs: Vec<(usize, f64)> = exps.into_iter().collect();
        if pairs.iter().any(|&(_, e)| !e.is_finite()) {
            return Err(GpError::InvalidExponent);
        }
        pairs.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(pairs.len());
        for (v, e) in pairs {
            match merged.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => merged.push((v, e)),
            }
        }
        merged.retain(|&(_, e)| e != 0.0);
        Ok(Monomial { coef, exps: merged })
    }

    /// A constant monomial (no variables).
    pub fn constant(coef: f64) -> Result<Self, GpError> {
        Monomial::new(coef, [])
    }

    /// The coefficient `c > 0`.
    #[inline]
    pub fn coef(&self) -> f64 {
        self.coef
    }

    /// Sparse `(variable, exponent)` pairs, sorted by variable index.
    #[inline]
    pub fn exponents(&self) -> &[(usize, f64)] {
        &self.exps
    }

    /// Evaluates the monomial at strictly positive `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut v = self.coef;
        for &(i, e) in &self.exps {
            v *= x[i].powf(e);
        }
        v
    }

    /// Multiplies two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exps.clone();
        exps.extend_from_slice(&other.exps);
        Monomial::new(self.coef * other.coef, exps).expect("product of valid monomials is valid")
    }

    /// Scales the coefficient by `alpha > 0`.
    pub fn scaled(&self, alpha: f64) -> Result<Monomial, GpError> {
        Monomial::new(self.coef * alpha, self.exps.iter().copied())
    }

    /// Largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.exps.last().map(|&(v, _)| v)
    }
}

/// A posynomial: a sum of monomials, `f(x) = sum_k c_k prod_i x_i^{a_ki}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Posynomial {
    terms: Vec<Monomial>,
}

impl Posynomial {
    /// The zero posynomial (empty sum). Valid as a building block but not
    /// as an objective or constraint.
    pub fn zero() -> Self {
        Posynomial { terms: Vec::new() }
    }

    /// Creates a posynomial from monomial terms.
    pub fn from_terms(terms: Vec<Monomial>) -> Self {
        Posynomial { terms }
    }

    /// A posynomial with a single monomial term.
    pub fn monomial(m: Monomial) -> Self {
        Posynomial { terms: vec![m] }
    }

    /// The monomial terms.
    #[inline]
    pub fn terms(&self) -> &[Monomial] {
        &self.terms
    }

    /// Number of monomial terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// True if this is the empty (zero) posynomial.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Appends a term.
    pub fn push(&mut self, m: Monomial) {
        self.terms.push(m);
    }

    /// Adds another posynomial (term concatenation).
    pub fn add(&mut self, other: &Posynomial) {
        self.terms.extend_from_slice(&other.terms);
    }

    /// Returns `self * alpha` for `alpha > 0`.
    pub fn scaled(&self, alpha: f64) -> Result<Posynomial, GpError> {
        let terms = self
            .terms
            .iter()
            .map(|m| m.scaled(alpha))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Posynomial { terms })
    }

    /// Multiplies by a monomial.
    pub fn mul_monomial(&self, m: &Monomial) -> Posynomial {
        Posynomial {
            terms: self.terms.iter().map(|t| t.mul(m)).collect(),
        }
    }

    /// Evaluates at strictly positive `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|m| m.eval(x)).sum()
    }

    /// Largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.iter().filter_map(Monomial::max_var).max()
    }

    /// Merges terms with identical exponent vectors, summing coefficients.
    ///
    /// Constraint construction by multinomial expansion produces many
    /// structurally equal terms; merging keeps solver cost proportional to
    /// the number of *distinct* monomials.
    pub fn simplify(&mut self) {
        self.terms.sort_by(|a, b| cmp_exps(&a.exps, &b.exps));
        let mut out: Vec<Monomial> = Vec::with_capacity(self.terms.len());
        for t in self.terms.drain(..) {
            match out.last_mut() {
                Some(last) if last.exps == t.exps => last.coef += t.coef,
                _ => out.push(t),
            }
        }
        self.terms = out;
    }
}

fn cmp_exps(a: &[(usize, f64)], b: &[(usize, f64)]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (&(va, ea), &(vb, eb)) in a.iter().zip(b.iter()) {
        match va.cmp(&vb) {
            Ordering::Equal => {}
            o => return o,
        }
        match ea.partial_cmp(&eb) {
            Some(Ordering::Equal) | None => {}
            Some(o) => return o,
        }
    }
    a.len().cmp(&b.len())
}

impl std::fmt::Display for Monomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.coef)?;
        for &(v, e) in &self.exps {
            if e == 1.0 {
                write!(f, "*x{v}")?;
            } else {
                write!(f, "*x{v}^{e}")?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Posynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_rejects_bad_coefficients() {
        assert!(Monomial::new(0.0, []).is_err());
        assert!(Monomial::new(-1.0, []).is_err());
        assert!(Monomial::new(f64::NAN, []).is_err());
        assert!(Monomial::new(f64::INFINITY, []).is_err());
        assert!(Monomial::new(1.0, [(0, f64::NAN)]).is_err());
    }

    #[test]
    fn monomial_merges_duplicate_vars() {
        let m = Monomial::new(2.0, [(1, 1.0), (0, 2.0), (1, 3.0)]).unwrap();
        assert_eq!(m.exponents(), &[(0, 2.0), (1, 4.0)]);
    }

    #[test]
    fn monomial_drops_zero_exponents() {
        let m = Monomial::new(2.0, [(0, 1.0), (0, -1.0), (2, 1.0)]).unwrap();
        assert_eq!(m.exponents(), &[(2, 1.0)]);
    }

    #[test]
    fn eval_matches_manual() {
        // 3 * x0^2 * x1^-1 at x = (2, 4) -> 3*4/4 = 3.
        let m = Monomial::new(3.0, [(0, 2.0), (1, -1.0)]).unwrap();
        assert!((m.eval(&[2.0, 4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn posynomial_eval_sums_terms() {
        let p = Posynomial::from_terms(vec![
            Monomial::new(1.0, [(0, 1.0)]).unwrap(),
            Monomial::new(2.0, [(1, 1.0)]).unwrap(),
        ]);
        assert!((p.eval(&[3.0, 5.0]) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn mul_monomial_distributes() {
        let p = Posynomial::from_terms(vec![
            Monomial::new(1.0, [(0, 1.0)]).unwrap(),
            Monomial::new(1.0, [(1, 1.0)]).unwrap(),
        ]);
        let m = Monomial::new(2.0, [(0, 1.0)]).unwrap();
        let q = p.mul_monomial(&m);
        // 2 x0^2 + 2 x0 x1 at (3, 5) = 18 + 30.
        assert!((q.eval(&[3.0, 5.0]) - 48.0).abs() < 1e-12);
    }

    #[test]
    fn simplify_merges_equal_exponent_terms() {
        let mut p = Posynomial::from_terms(vec![
            Monomial::new(1.0, [(0, 1.0), (1, 1.0)]).unwrap(),
            Monomial::new(2.5, [(1, 1.0), (0, 1.0)]).unwrap(),
            Monomial::new(1.0, [(0, 2.0)]).unwrap(),
        ]);
        p.simplify();
        assert_eq!(p.n_terms(), 2);
        let x = [1.7, 2.3];
        assert!((p.eval(&x) - (3.5 * 1.7 * 2.3 + 1.7 * 1.7)).abs() < 1e-12);
    }

    #[test]
    fn max_var_reports_largest_index() {
        let p = Posynomial::from_terms(vec![
            Monomial::new(1.0, [(3, 1.0)]).unwrap(),
            Monomial::new(1.0, [(7, 2.0)]).unwrap(),
        ]);
        assert_eq!(p.max_var(), Some(7));
        assert_eq!(Posynomial::zero().max_var(), None);
    }

    #[test]
    fn display_is_readable() {
        let m = Monomial::new(2.0, [(0, 1.0), (1, 2.0)]).unwrap();
        assert_eq!(format!("{m}"), "2*x0*x1^2");
    }
}
