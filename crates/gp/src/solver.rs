//! Log-barrier interior-point solver for geometric programs.
//!
//! After the log transform (see [`crate::logsumexp`]) a GP becomes the
//! smooth convex program
//!
//! ```text
//! minimize    F0(y)
//! subject to  Fi(y) <= 0,   i = 1..m
//! ```
//!
//! which we solve with the classic barrier method (Boyd & Vandenberghe,
//! ch. 11): for increasing `t`, minimize `t F0(y) - sum_i ln(-Fi(y))` with
//! damped Newton steps and backtracking line search. `m/t` bounds the
//! suboptimality at each outer iteration, so termination yields a certified
//! duality gap.
//!
//! If the caller has no strictly feasible starting point, a standard
//! phase-I problem (`minimize s  s.t.  Fi(y) <= s`) is solved first.

use crate::error::GpError;
use crate::kkt::{auto_wanted, SparseKktPlan, SparseScratch};
use crate::linalg::{axpy, dot, Matrix};
use crate::logsumexp::LogPosynomial;
use crate::problem::{GpProblem, GpSolution};
use pq_obs::{names, EventKind, Obs};
use std::sync::Arc;

/// Which KKT backend solves the Newton systems inside the barrier method.
///
/// The dense path copies the Hessian and runs an `O(n³)` Cholesky per
/// step — unbeatable for the small per-query programs. The sparse path
/// assembles the Hessian directly in compressed form (exploiting the
/// query↔item structure of joint AAO units), factors it under a cached
/// fill-reducing ordering, and hoists the few dense gradient outer
/// products into Sherman–Morrison–Woodbury corrections — scaling joint
/// units to 10k+ variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KktMode {
    /// Pick automatically: sparse for large, structurally sparse programs
    /// (a cached plan on a [`CompiledGp`] is always used when present);
    /// dense otherwise. The default.
    #[default]
    Auto,
    /// Always dense — the small-`n` fallback and the correctness oracle.
    Dense,
    /// Always sparse, building a plan on the fly if none is cached.
    Sparse,
}

/// Resolved backend for one barrier solve.
enum Backend {
    Dense,
    Sparse(Arc<SparseKktPlan>),
}

/// Picks the backend for a one-shot (non-compiled) solve; compiled GPs
/// resolve against their cached plan instead (see [`CompiledGp`]).
fn resolve_backend(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    n: usize,
    options: &SolverOptions,
) -> Backend {
    let build = || {
        options.obs.counter(names::GP_SPARSE_SYMBOLIC).inc();
        Backend::Sparse(Arc::new(SparseKktPlan::build(f0, fs, n)))
    };
    match options.kkt {
        KktMode::Dense => Backend::Dense,
        KktMode::Sparse => build(),
        KktMode::Auto => {
            if auto_wanted(f0, fs, n) {
                build()
            } else {
                Backend::Dense
            }
        }
    }
}

/// Tuning knobs for the barrier solver. The defaults solve every program in
/// this workspace; they are exposed for experimentation.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Target duality gap (`m / t` at termination). Default `1e-8`.
    pub tolerance: f64,
    /// Initial barrier parameter `t0`. Default `1.0`.
    pub t0: f64,
    /// Barrier parameter multiplier per outer iteration. Default `20.0`.
    pub mu: f64,
    /// Newton stopping threshold on `lambda^2 / 2`. Default `1e-8`
    /// (tighter values grind against double-precision rounding near the
    /// central path without improving the certified duality gap).
    pub newton_tolerance: f64,
    /// Maximum Newton steps per centering problem. Default `200`.
    pub max_newton_steps: usize,
    /// Maximum outer (barrier) iterations. Default `64`.
    pub max_outer_iterations: usize,
    /// Armijo parameter for backtracking line search. Default `0.05`.
    pub armijo: f64,
    /// Step shrink factor for backtracking. Default `0.5`.
    pub backtrack: f64,
    /// Telemetry handle. Defaults to the null handle (no events, but
    /// `gp.solve_ns` timings still accumulate in its private registry).
    pub obs: Obs,
    /// Attribution label: the index of the query this solve serves, if
    /// any. When set, `gp.solve` events/timings carry a `query` field
    /// and the `gp.solve` labeled counter tallies per-query solves, so
    /// cost rollups can answer "whose recomputations eat the budget?".
    pub query: Option<u32>,
    /// Pre-resolved handle for this query's `gp.solve` labeled counter.
    /// Callers that solve in a loop (the simulator) set this once per
    /// query so the per-solve hot path never touches the registry
    /// mutex; when unset the counter is resolved per solve.
    pub query_counter: Option<std::sync::Arc<pq_obs::Counter>>,
    /// Pre-resolved `gp.solve` span timer (see [`Obs::timer`]); same
    /// caching contract as [`SolverOptions::query_counter`].
    pub solve_timer: Option<pq_obs::Timer>,
    /// KKT backend selection. Default [`KktMode::Auto`].
    pub kkt: KktMode,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-8,
            t0: 1.0,
            mu: 20.0,
            newton_tolerance: 1e-8,
            max_newton_steps: 200,
            max_outer_iterations: 64,
            armijo: 0.05,
            backtrack: 0.5,
            obs: Obs::null(),
            query: None,
            query_counter: None,
            solve_timer: None,
            kkt: KktMode::Auto,
        }
    }
}

/// Starts the `gp.solve` span, tagged with the originating query when
/// the caller attributed the solve, and tallies the per-query labeled
/// counter. Prefers the pre-resolved handles in the options (set once
/// per query by looping callers) over per-solve registry resolution.
fn solve_span(options: &SolverOptions) -> pq_obs::TimedGuard {
    match options.query {
        Some(q) => {
            match &options.query_counter {
                Some(counter) => counter.inc(),
                None => options
                    .obs
                    .labeled_counter(names::GP_SOLVE, names::LABEL_QUERY, &q.to_string())
                    .inc(),
            }
            match &options.solve_timer {
                Some(timer) => timer.start_labeled(&options.obs, names::LABEL_QUERY, u64::from(q)),
                None => {
                    options
                        .obs
                        .timed_labeled(names::GP_SOLVE, names::LABEL_QUERY, u64::from(q))
                }
            }
        }
        None => match &options.solve_timer {
            Some(timer) => timer.start(&options.obs),
            None => options.obs.timed(names::GP_SOLVE),
        },
    }
}

/// Reusable buffers for the barrier solver: one workspace amortizes every
/// per-iteration allocation (gradients, Hessian, Cholesky scratch, line
/// search trial points) across repeated solves of same-shaped programs.
///
/// A fresh (empty) workspace is valid for any program; buffers grow on
/// first use and are reused afterwards. Not thread-safe: use one workspace
/// per worker thread.
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// Current iterate in log variables (taken in and out of the solver).
    y: Vec<f64>,
    /// Accumulated barrier gradient.
    grad: Vec<f64>,
    /// Per-posynomial gradient scratch.
    gi: Vec<f64>,
    /// Negated gradient (Newton right-hand side).
    rhs: Vec<f64>,
    /// Newton direction.
    dy: Vec<f64>,
    /// Line-search trial point.
    trial: Vec<f64>,
    /// Per-term values / softmax weights scratch.
    probs: Vec<f64>,
    /// Dense expansion of one sparse exponent row.
    dense: Vec<f64>,
    /// Accumulated barrier Hessian (dense backend only).
    hess: Matrix,
    /// Cholesky factorization scratch (dense backend only).
    chol: Matrix,
    /// Sparse-backend buffers (empty unless a sparse solve ran).
    sparse: SparseScratch,
}

impl SolveWorkspace {
    /// Creates an empty workspace (buffers grow on first solve).
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// Grows the backend-independent buffers to fit an `n`-variable
    /// program. The dense `n × n` matrices are sized separately (see
    /// [`SolveWorkspace::ensure_backend`]) so a 10k-variable sparse solve
    /// never allocates them.
    fn ensure(&mut self, n: usize) {
        self.grad.resize(n, 0.0);
        self.gi.resize(n, 0.0);
        self.rhs.resize(n, 0.0);
        self.dy.clear();
        self.trial.resize(n, 0.0);
        self.dense.resize(n, 0.0);
    }

    /// Grows the backend-specific buffers.
    fn ensure_backend(&mut self, n: usize, backend: &Backend) {
        match backend {
            Backend::Dense => {
                if self.hess.n_rows() != n {
                    self.hess.resize_zeroed(n, n);
                    self.chol.resize_zeroed(n, n);
                }
            }
            Backend::Sparse(plan) => self.sparse.ensure(plan),
        }
    }

    /// Loads `ln x0` into the iterate buffer.
    fn seed_from_x(&mut self, x0: &[f64]) {
        self.y.clear();
        self.y.extend(x0.iter().map(|&v| v.ln()));
    }
}

/// Solves `problem` starting from a caller-supplied strictly feasible point
/// `x0 > 0`.
///
/// # Errors
/// [`GpError::InvalidStartingPoint`] if `x0` is not strictly positive, not
/// finite, or violates a constraint; solver errors otherwise.
pub fn solve_with_start(
    problem: &GpProblem,
    x0: &[f64],
    options: &SolverOptions,
) -> Result<GpSolution, GpError> {
    let (objective, constraints) = problem.validated()?;
    if x0.len() != problem.n_vars()
        || x0.iter().any(|&v| !(v.is_finite() && v > 0.0))
        || !problem.is_strictly_feasible(x0, 0.0)
    {
        return Err(GpError::InvalidStartingPoint);
    }
    let _span = solve_span(options);
    let n = problem.n_vars();
    let f0 = LogPosynomial::compile(objective, n);
    let fs: Vec<LogPosynomial> = constraints
        .iter()
        .map(|c| LogPosynomial::compile(c, n))
        .collect();
    let mut ws = SolveWorkspace::new();
    ws.seed_from_x(x0);
    let backend = resolve_backend(&f0, &fs, n, options);
    barrier_solve(&f0, &fs, options, &mut ws, &backend)
}

/// Solves `problem`, running a phase-I feasibility search first if needed.
///
/// An all-ones starting point is tried first; if it is infeasible, the
/// phase-I program `minimize s  s.t.  Fi(y) <= s` locates a strictly
/// feasible point or certifies infeasibility.
pub fn solve(problem: &GpProblem, options: &SolverOptions) -> Result<GpSolution, GpError> {
    let (objective, constraints) = problem.validated()?;
    let n = problem.n_vars();
    let ones = vec![1.0; n];
    if problem.is_strictly_feasible(&ones, 1e-9) {
        return solve_with_start(problem, &ones, options);
    }
    let _span = solve_span(options);
    let f0 = LogPosynomial::compile(objective, n);
    let fs: Vec<LogPosynomial> = constraints
        .iter()
        .map(|c| LogPosynomial::compile(c, n))
        .collect();
    let y0 = phase_one(&fs, n, options)?;
    let mut ws = SolveWorkspace::new();
    ws.y = y0;
    let backend = resolve_backend(&f0, &fs, n, options);
    barrier_solve(&f0, &fs, options, &mut ws, &backend)
}

/// A geometric program compiled once to log-space for repeated solves.
///
/// DAB recomputation re-derives the *same* program shape with coefficients
/// that track the drifting data values; compiling the posynomials and
/// allocating solver buffers each time is the dominant fixed cost.
/// `CompiledGp` keeps the compiled [`LogPosynomial`]s and refreshes
/// coefficients in place via [`CompiledGp::update_from`].
#[derive(Debug, Clone)]
pub struct CompiledGp {
    n_vars: usize,
    f0: LogPosynomial,
    fs: Vec<LogPosynomial>,
    /// Cached sparse KKT structure (term ordering, min-degree permutation,
    /// symbolic factorization, scatter slots). Built at compile time when
    /// the auto heuristic wants the sparse backend — or on demand via
    /// [`CompiledGp::prepare_sparse`] — and shared across clones, so the
    /// per-unit solve caches upstream reuse one symbolic analysis across
    /// every warm-started refresh.
    plan: Option<Arc<SparseKktPlan>>,
}

/// How a warm-started solve obtained its strictly feasible start (see
/// [`CompiledGp::solve_warm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// The lightly blended previous optimum was already strictly feasible.
    Hit,
    /// Data drift forced a deeper shrink toward the interior point before
    /// a strictly feasible start was found.
    Repaired,
}

/// Repair blend factors `theta` toward the interior point, tried in
/// order when the adaptive minimal blend exceeds the first rung;
/// `theta = 1` is the interior point itself. A solve needing no more
/// than `WARM_LADDER[0]` of blend counts as a warm *hit*, anything
/// deeper as a *repair*.
const WARM_LADDER: [f64; 4] = [0.1, 0.3, 0.6, 1.0];

/// Log-space slack required of a warm start: `Fi(y) < -WARM_SLACK`.
const WARM_SLACK: f64 = 1e-9;

impl CompiledGp {
    /// Compiles `problem` (which must have an objective).
    pub fn compile(problem: &GpProblem) -> Result<Self, GpError> {
        let (objective, constraints) = problem.validated()?;
        let n = problem.n_vars();
        let f0 = LogPosynomial::compile(objective, n);
        let fs: Vec<LogPosynomial> = constraints
            .iter()
            .map(|c| LogPosynomial::compile(c, n))
            .collect();
        let plan = auto_wanted(&f0, &fs, n).then(|| Arc::new(SparseKktPlan::build(&f0, &fs, n)));
        Ok(CompiledGp {
            n_vars: n,
            f0,
            fs,
            plan,
        })
    }

    /// Forces the sparse KKT plan to exist (idempotent). Callers that know
    /// they will solve with [`KktMode::Sparse`] build the symbolic
    /// factorization once here instead of per solve.
    pub fn prepare_sparse(&mut self) {
        if self.plan.is_none() {
            self.plan = Some(Arc::new(SparseKktPlan::build(
                &self.f0,
                &self.fs,
                self.n_vars,
            )));
        }
    }

    /// True when a cached sparse plan exists (i.e. [`KktMode::Auto`] will
    /// route this program to the sparse backend).
    pub fn has_sparse_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Resolves the backend for this compiled program under `options`.
    fn backend(&self, options: &SolverOptions) -> Backend {
        match options.kkt {
            KktMode::Dense => Backend::Dense,
            KktMode::Sparse => Backend::Sparse(self.plan.clone().unwrap_or_else(|| {
                options.obs.counter(names::GP_SPARSE_SYMBOLIC).inc();
                Arc::new(SparseKktPlan::build(&self.f0, &self.fs, self.n_vars))
            })),
            KktMode::Auto => match &self.plan {
                Some(p) => Backend::Sparse(p.clone()),
                None => Backend::Dense,
            },
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.fs.len()
    }

    /// Refreshes the compiled coefficients from `problem`, recompiling
    /// only the posynomials whose term structure changed (or everything if
    /// the shape changed).
    pub fn update_from(&mut self, problem: &GpProblem) -> Result<(), GpError> {
        let (objective, constraints) = problem.validated()?;
        if problem.n_vars() != self.n_vars || constraints.len() != self.fs.len() {
            *self = CompiledGp::compile(problem)?;
            return Ok(());
        }
        let mut structure_changed = false;
        if !self.f0.refresh_coefs(objective) {
            self.f0 = LogPosynomial::compile(objective, self.n_vars);
            structure_changed = true;
        }
        for (lc, c) in self.fs.iter_mut().zip(constraints) {
            if !lc.refresh_coefs(c) {
                *lc = LogPosynomial::compile(c, self.n_vars);
                structure_changed = true;
            }
        }
        // A pure coefficient refresh keeps the cached sparse plan (the
        // structure it encodes is unchanged); a structural change rebuilds
        // it when one existed or the heuristic now wants one.
        if structure_changed {
            self.plan = (self.plan.is_some() || auto_wanted(&self.f0, &self.fs, self.n_vars))
                .then(|| Arc::new(SparseKktPlan::build(&self.f0, &self.fs, self.n_vars)));
        }
        Ok(())
    }

    /// True if `Fi(y) < -slack` for every compiled constraint.
    fn strictly_feasible_log(&self, y: &[f64], slack: f64, z: &mut Vec<f64>) -> bool {
        self.fs.iter().all(|fi| fi.value_buf(y, z) < -slack)
    }

    /// Solves from a strictly feasible `x0 > 0`, reusing `ws` buffers.
    ///
    /// # Errors
    /// [`GpError::InvalidStartingPoint`] for an invalid or infeasible
    /// start; solver errors otherwise.
    pub fn solve_from(
        &self,
        x0: &[f64],
        options: &SolverOptions,
        ws: &mut SolveWorkspace,
    ) -> Result<GpSolution, GpError> {
        if x0.len() != self.n_vars || x0.iter().any(|&v| !(v.is_finite() && v > 0.0)) {
            return Err(GpError::InvalidStartingPoint);
        }
        ws.seed_from_x(x0);
        let mut z = std::mem::take(&mut ws.probs);
        let feasible = self.strictly_feasible_log(&ws.y, 0.0, &mut z);
        ws.probs = z;
        if !feasible {
            return Err(GpError::InvalidStartingPoint);
        }
        let _span = solve_span(options);
        let backend = self.backend(options);
        barrier_solve(&self.f0, &self.fs, options, ws, &backend)
    }

    /// Warm-started solve: blends the previous optimum `prev_x` toward the
    /// strictly interior `interior_x` in log space,
    /// `y(theta) = (1-theta) ln prev_x + theta ln interior_x`, using the
    /// *smallest* `theta` that restores strict feasibility, then restarts
    /// the barrier at a parameter matched to the start's quality.
    ///
    /// The previous optimum sits on the active constraint boundary, so the
    /// worst constraint residual `|Fmax(ln prev_x)|` after data drift
    /// estimates the start's optimality gap; the barrier restarts at
    /// `t ~ m / gap` (the `t` whose central point is about that far from
    /// optimal) and the blend targets slack `1/t` (the central path's
    /// distance from the boundary at that `t`), so the start is already
    /// nearly centered. Both Newton phases the cold solve pays — early
    /// low-`t` centerings and the damped march back to the central
    /// path — are skipped.
    ///
    /// A minimal blend within `WARM_LADDER[0]` counts as
    /// [`WarmStart::Hit`]; larger drift escalates through the fixed
    /// `WARM_LADDER` repair rungs (classified [`WarmStart::Repaired`]),
    /// each restarting from the caller's own barrier schedule. A rung
    /// whose centering fails numerically escalates to the next rung.
    ///
    /// # Errors
    /// [`GpError::InvalidStartingPoint`] when no rung yields a strictly
    /// feasible start (callers should fall back to a cold phase-I
    /// [`solve`]); other solver errors if the final rung fails.
    pub fn solve_warm(
        &self,
        prev_x: &[f64],
        interior_x: &[f64],
        options: &SolverOptions,
        ws: &mut SolveWorkspace,
    ) -> Result<(GpSolution, WarmStart), GpError> {
        if prev_x.len() != self.n_vars
            || interior_x.len() != self.n_vars
            || prev_x.iter().any(|&v| !(v.is_finite() && v > 0.0))
            || interior_x.iter().any(|&v| !(v.is_finite() && v > 0.0))
        {
            return Err(GpError::InvalidStartingPoint);
        }
        let _span = solve_span(options);
        let backend = self.backend(options);
        let m = self.fs.len();
        if m == 0 {
            ws.seed_from_x(prev_x);
            let solution = barrier_solve(&self.f0, &self.fs, options, ws, &backend)?;
            return Ok((solution, WarmStart::Hit));
        }

        ws.y.clear();
        ws.y.extend(prev_x.iter().map(|&v| v.ln()));
        ws.trial.clear();
        ws.trial.extend(interior_x.iter().map(|&v| v.ln()));
        let y_prev = std::mem::take(&mut ws.y);
        let y_int = std::mem::take(&mut ws.trial);
        let mut z = std::mem::take(&mut ws.probs);

        // Drift distance off the active boundary bounds the start's
        // optimality gap, which fixes the barrier restart parameter.
        let mut fmax_prev = f64::NEG_INFINITY;
        for fi in &self.fs {
            fmax_prev = fmax_prev.max(fi.value_buf(&y_prev, &mut z));
        }
        let gap_est = fmax_prev.abs().max(options.tolerance);
        let t_cap = m as f64 / options.tolerance * (1.0 + 1e-4);
        let t_boost = (m as f64 / gap_est).clamp(options.t0.max(f64::MIN_POSITIVE), t_cap);
        let slack = (1.0 / t_boost).max(WARM_SLACK);

        // Smallest theta whose convex interpolation between the endpoint
        // constraint values guarantees that slack everywhere (Fi is convex
        // along the segment, so the chord bound is sufficient).
        let mut theta = 0.0f64;
        let mut repairable = true;
        for fi in &self.fs {
            let fp = fi.value_buf(&y_prev, &mut z);
            if fp <= -slack {
                continue;
            }
            let fint = fi.value_buf(&y_int, &mut z);
            if fint >= -slack {
                repairable = false;
                break;
            }
            theta = theta.max((fp + slack) / (fp - fint));
        }
        ws.probs = z;

        let mut last_err = GpError::InvalidStartingPoint;
        if repairable && theta <= WARM_LADDER[0] {
            match self.try_rung(
                &y_prev,
                &y_int,
                theta,
                0.5 * slack,
                t_boost,
                options,
                ws,
                &backend,
            ) {
                Some(Ok(solution)) => {
                    ws.trial = y_int;
                    return Ok((solution, WarmStart::Hit));
                }
                Some(Err(e)) => last_err = e,
                None => {}
            }
        }
        for (rung, &rung_theta) in WARM_LADDER.iter().enumerate() {
            if repairable && rung_theta < theta {
                continue; // the chord bound already rules this rung out
            }
            let t0 = if rung == 0 {
                options.t0 * options.mu
            } else {
                options.t0
            };
            match self.try_rung(
                &y_prev, &y_int, rung_theta, WARM_SLACK, t0, options, ws, &backend,
            ) {
                Some(Ok(solution)) => {
                    ws.trial = y_int;
                    return Ok((solution, WarmStart::Repaired));
                }
                Some(Err(e)) => last_err = e,
                None => {}
            }
        }
        ws.trial = y_int;
        Err(last_err)
    }

    /// One warm rung: blend, feasibility check with `slack`, barrier solve
    /// restarted at `t0`. `None` means the blended point lacked slack.
    #[allow(clippy::too_many_arguments)]
    fn try_rung(
        &self,
        y_prev: &[f64],
        y_int: &[f64],
        theta: f64,
        slack: f64,
        t0: f64,
        options: &SolverOptions,
        ws: &mut SolveWorkspace,
        backend: &Backend,
    ) -> Option<Result<GpSolution, GpError>> {
        ws.y.clear();
        ws.y.extend(
            y_prev
                .iter()
                .zip(y_int)
                .map(|(&p, &q)| (1.0 - theta) * p + theta * q),
        );
        let mut z = std::mem::take(&mut ws.probs);
        let feasible = self.strictly_feasible_log(&ws.y, slack, &mut z);
        ws.probs = z;
        if !feasible {
            return None;
        }
        let mut warm = options.clone();
        warm.t0 = t0;
        Some(barrier_solve(&self.f0, &self.fs, &warm, ws, backend))
    }
}

/// Barrier (phase II) iteration in log variables; the iterate is taken
/// from (and left in) `ws.y`.
fn barrier_solve(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    options: &SolverOptions,
    ws: &mut SolveWorkspace,
    backend: &Backend,
) -> Result<GpSolution, GpError> {
    let mut y = std::mem::take(&mut ws.y);
    ws.ensure(y.len());
    ws.ensure_backend(y.len(), backend);
    if let Backend::Sparse(_) = backend {
        options.obs.counter(names::GP_SPARSE_SOLVE).inc();
    }
    let result = barrier_solve_inner(f0, fs, options, &mut y, ws, backend);
    ws.y = y;
    result
}

fn barrier_solve_inner(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    options: &SolverOptions,
    y: &mut [f64],
    ws: &mut SolveWorkspace,
    backend: &Backend,
) -> Result<GpSolution, GpError> {
    let m = fs.len();
    let mut t = options.t0.max(f64::MIN_POSITIVE);
    // The gap test needs no t beyond m / tolerance; capping the ladder
    // there keeps the final centering from overshooting by up to a
    // factor of mu (the margin guarantees the capped gap passes).
    let t_cap = m as f64 / options.tolerance * (1.0 + 1e-4);
    let mut newton_steps = 0usize;
    let mut outer = 0usize;

    if m == 0 {
        // Pure unconstrained minimization of F0.
        newton_steps += newton_minimize(f0, fs, 1.0, y, ws, options, "unconstrained", backend)?;
        let solution = finish(f0, y, outer, newton_steps, 0.0);
        emit_solved(options, &solution);
        return Ok(solution);
    }

    loop {
        outer += 1;
        let tt = t;
        newton_steps += newton_minimize(f0, fs, tt, y, ws, options, "center", backend)?;
        let gap = m as f64 / t;
        options
            .obs
            .emit_with(names::GP_OUTER, EventKind::Point, |e| {
                e.with("outer", outer)
                    .with("t", tt)
                    .with("gap", gap)
                    .with("newton_steps", newton_steps)
            });
        if gap <= options.tolerance {
            let solution = finish(f0, y, outer, newton_steps, gap);
            emit_solved(options, &solution);
            return Ok(solution);
        }
        if outer >= options.max_outer_iterations {
            return Err(GpError::IterationLimit);
        }
        t = (t * options.mu).min(t_cap);
    }
}

/// One structured summary event per successful solve.
fn emit_solved(options: &SolverOptions, solution: &GpSolution) {
    options
        .obs
        .emit_with(names::GP_SOLVE, EventKind::Point, |e| {
            let e = e
                .with("outer", solution.outer_iterations)
                .with("newton_steps", solution.newton_steps)
                .with("gap", solution.duality_gap)
                .with("objective", solution.objective);
            match options.query {
                Some(q) => e.with(names::LABEL_QUERY, q),
                None => e,
            }
        });
}

fn finish(
    f0: &LogPosynomial,
    y: &[f64],
    outer: usize,
    newton_steps: usize,
    gap: f64,
) -> GpSolution {
    let x: Vec<f64> = y.iter().map(|&v| v.exp()).collect();
    GpSolution {
        objective: f0.value(y).exp(),
        x,
        outer_iterations: outer,
        newton_steps,
        duality_gap: gap,
    }
}

/// Result of evaluating a barrier-style objective at a point (phase-I
/// only; the phase-II path uses [`SolveWorkspace`] buffers instead).
struct FuncEval {
    value: f64,
    grad: Vec<f64>,
    /// `None` when only value (line search) was requested.
    hess: Option<Matrix>,
    /// `false` when the point is outside the barrier domain.
    in_domain: bool,
}

/// Evaluates `t F0(y) - sum ln(-Fi(y))` into workspace buffers.
///
/// Returns `None` when `y` is outside the barrier domain; on success the
/// value is returned and `ws.grad`/`ws.hess` hold the derivatives.
fn barrier_eval_full(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    t: f64,
    y: &[f64],
    ws: &mut SolveWorkspace,
) -> Option<f64> {
    let v0 = f0.value_grad_buf(y, &mut ws.probs, &mut ws.gi);
    let mut value = t * v0;
    for (g, gi) in ws.grad.iter_mut().zip(&ws.gi) {
        *g = t * gi;
    }
    ws.hess.set_zero();
    // ∇²F = second-moment − ∇F∇Fᵀ; both vanish for affine (1-term) rows.
    if f0.n_terms() > 1 {
        f0.add_second_moment(&ws.probs, t, &mut ws.dense, &mut ws.hess);
        ws.hess.add_outer(-t, &ws.gi);
    }
    for fi in fs {
        let vi = fi.value_grad_buf(y, &mut ws.probs, &mut ws.gi);
        if vi >= 0.0 {
            return None;
        }
        let s = -vi; // slack, > 0
        value -= s.ln();
        let inv_s = 1.0 / s;
        axpy(inv_s, &ws.gi, &mut ws.grad);
        if fi.n_terms() > 1 {
            fi.add_second_moment(&ws.probs, inv_s, &mut ws.dense, &mut ws.hess);
            // Constraint Hessian contributes −inv_s ∇Fi∇Fiᵀ; the barrier
            // log adds +inv_s² ∇Fi∇Fiᵀ.
            ws.hess.add_outer(inv_s * inv_s - inv_s, &ws.gi);
        } else {
            ws.hess.add_outer(inv_s * inv_s, &ws.gi);
        }
    }
    Some(value)
}

/// Evaluates the barrier value only (line search), reusing `ws.probs`.
/// Returns `None` outside the domain.
fn barrier_value(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    t: f64,
    y: &[f64],
    z: &mut Vec<f64>,
) -> Option<f64> {
    let mut value = t * f0.value_buf(y, z);
    for fi in fs {
        let v = fi.value_buf(y, z);
        if v >= 0.0 {
            return None;
        }
        value -= (-v).ln();
    }
    Some(value)
}

/// Damped Newton minimization of the barrier objective at parameter `t`
/// (pass `fs = &[]`, `t = 1` for unconstrained minimization of `F0`).
///
/// Returns the number of Newton steps taken. `y` is updated in place; all
/// scratch lives in `ws`. `phase` labels the emitted `gp.newton` events
/// ("center" or "unconstrained"; phase I has its own loop).
#[allow(clippy::too_many_arguments)]
fn newton_minimize(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    t: f64,
    y: &mut [f64],
    ws: &mut SolveWorkspace,
    options: &SolverOptions,
    phase: &'static str,
    backend: &Backend,
) -> Result<usize, GpError> {
    let mut prev_value = f64::INFINITY;
    for steps in 0..options.max_newton_steps {
        let value = match backend {
            Backend::Dense => barrier_eval_full(f0, fs, t, y, ws),
            Backend::Sparse(plan) => plan.eval(f0, fs, t, y, &mut ws.sparse, &mut ws.grad),
        }
        .ok_or(GpError::NumericalFailure("iterate left barrier domain"))?;
        for (r, g) in ws.rhs.iter_mut().zip(&ws.grad) {
            *r = -g;
        }
        let reg_used = match backend {
            Backend::Dense => {
                ws.hess
                    .cholesky_solve_regularized_level_into(&ws.rhs, &mut ws.chol, &mut ws.dy)
            }
            Backend::Sparse(plan) => plan.solve_newton(&mut ws.sparse, &ws.rhs, &mut ws.dy),
        };
        let Some(reg) = reg_used else {
            return Err(GpError::NumericalFailure("newton system unsolvable"));
        };
        if reg > 0.0 {
            options.obs.counter(names::GP_CHOL_REGULARIZED).inc();
        }
        let decrement_sq = -dot(&ws.grad, &ws.dy);
        if !decrement_sq.is_finite() {
            return Err(GpError::NumericalFailure("non-finite newton decrement"));
        }
        // The Newton decrement is the KKT residual in the Hessian norm;
        // one event per step replaces the old PQ_GP_TRACE stderr dump
        // (attach a `StderrSubscriber` for the same output).
        options
            .obs
            .emit_with(names::GP_NEWTON, EventKind::Point, |ev| {
                ev.with("phase", phase)
                    .with("step", steps)
                    .with("value", value)
                    .with("decrement_sq", decrement_sq)
            });
        if decrement_sq / 2.0 <= options.newton_tolerance {
            return Ok(steps);
        }
        // Rounding floor: once successive values stop moving relative to
        // their magnitude, further Newton steps cannot make progress.
        if (prev_value - value).abs() <= 1e-14 * (1.0 + value.abs()) {
            return Ok(steps);
        }
        prev_value = value;
        // Backtracking line search on the barrier value.
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..60 {
            ws.trial.copy_from_slice(y);
            axpy(step, &ws.dy, &mut ws.trial);
            // The sparse backend evaluates in the plan's canonical term
            // order so line-search arithmetic matches its Hessian eval and
            // stays independent of term insertion order.
            let trial_value = match backend {
                Backend::Dense => barrier_value(f0, fs, t, &ws.trial, &mut ws.probs),
                Backend::Sparse(plan) => plan.barrier_value(f0, fs, t, &ws.trial, &mut ws.probs),
            };
            match trial_value {
                Some(tv)
                    if tv.is_finite() && tv <= value - options.armijo * step * decrement_sq =>
                {
                    y.copy_from_slice(&ws.trial);
                    accepted = true;
                    break;
                }
                _ => step *= options.backtrack,
            }
        }
        if !accepted {
            // No descent at the smallest step: we are at numerical precision.
            return Ok(steps);
        }
    }
    Err(GpError::IterationLimit)
}

/// Phase I: find a strictly feasible `y` for `Fi(y) <= 0` by minimizing the
/// auxiliary variable `s` in `Fi(y) <= s`, stopping as soon as `s < 0`.
fn phase_one(fs: &[LogPosynomial], n: usize, options: &SolverOptions) -> Result<Vec<f64>, GpError> {
    let m = fs.len();
    let y0 = vec![0.0; n];
    let worst = fs
        .iter()
        .map(|f| f.value(&y0))
        .fold(f64::NEG_INFINITY, f64::max);
    if worst < -1e-9 {
        return Ok(y0);
    }
    // Extended point z = (y, s); start with comfortable slack.
    let mut z = vec![0.0; n + 1];
    z[n] = worst + 1.0;

    // Newton-step scratch, reused across all centering iterations.
    let mut rhs = vec![0.0; n + 1];
    let mut dz = Vec::new();
    let mut trial = vec![0.0; n + 1];
    let mut chol = Matrix::zeros(n + 1, n + 1);

    let margin = 1e-6;
    let mut t = 1.0;
    for _ in 0..options.max_outer_iterations {
        // Centering with early exit once strictly feasible.
        let mut exited = false;
        for _ in 0..options.max_newton_steps {
            if z[n] < -margin {
                exited = true;
                break;
            }
            let e = phase_one_eval(fs, t, &z, true);
            if !e.in_domain {
                return Err(GpError::NumericalFailure("phase-I left domain"));
            }
            let hess = e.hess.expect("hessian requested");
            for (r, g) in rhs.iter_mut().zip(&e.grad) {
                *r = -g;
            }
            if !hess.cholesky_solve_regularized_into(&rhs, &mut chol, &mut dz) {
                return Err(GpError::NumericalFailure("phase-I newton unsolvable"));
            }
            let decrement_sq = -dot(&e.grad, &dz);
            options
                .obs
                .emit_with(names::GP_NEWTON, EventKind::Point, |ev| {
                    ev.with("phase", "phase1")
                        .with("value", e.value)
                        .with("decrement_sq", decrement_sq)
                        .with("slack", z[n])
                });
            if decrement_sq / 2.0 <= options.newton_tolerance {
                break;
            }
            let mut step = 1.0;
            let mut moved = false;
            for _ in 0..60 {
                trial.copy_from_slice(&z);
                axpy(step, &dz, &mut trial);
                let te = phase_one_eval(fs, t, &trial, false);
                if te.in_domain
                    && te.value.is_finite()
                    && te.value <= e.value - options.armijo * step * decrement_sq
                {
                    z.copy_from_slice(&trial);
                    moved = true;
                    break;
                }
                step *= options.backtrack;
            }
            if !moved {
                break;
            }
        }
        if exited || z[n] < -margin {
            return Ok(z[..n].to_vec());
        }
        if (m as f64) / t < options.tolerance.max(1e-12) {
            break;
        }
        t *= options.mu;
    }
    if z[n] < 0.0 {
        Ok(z[..n].to_vec())
    } else {
        Err(GpError::Infeasible { residual: z[n] })
    }
}

/// Evaluates the phase-I barrier `t s - sum ln(s - Fi(y))` at `z = (y, s)`.
fn phase_one_eval(fs: &[LogPosynomial], t: f64, z: &[f64], want_hess: bool) -> FuncEval {
    let n = z.len() - 1;
    let (y, s) = (&z[..n], z[n]);
    if !want_hess {
        let mut value = t * s;
        for fi in fs {
            let slack = s - fi.value(y);
            if slack <= 0.0 {
                return FuncEval {
                    value: f64::INFINITY,
                    grad: Vec::new(),
                    hess: None,
                    in_domain: false,
                };
            }
            value -= slack.ln();
        }
        return FuncEval {
            value,
            grad: Vec::new(),
            hess: None,
            in_domain: true,
        };
    }
    let mut value = t * s;
    let mut grad = vec![0.0; n + 1];
    grad[n] = t;
    let mut hess = Matrix::zeros(n + 1, n + 1);
    let mut ext = vec![0.0; n + 1];
    for fi in fs {
        let ev = fi.evaluate(y);
        let slack = s - ev.value;
        if slack <= 0.0 {
            return FuncEval {
                value: f64::INFINITY,
                grad: vec![0.0; n + 1],
                hess: Some(Matrix::zeros(n + 1, n + 1)),
                in_domain: false,
            };
        }
        value -= slack.ln();
        let inv = 1.0 / slack;
        // d(-ln(s - Fi))/dy = ∇Fi / slack ; d/ds = -1/slack.
        for (gi, gyi) in grad[..n].iter_mut().zip(&ev.grad) {
            *gi += inv * gyi;
        }
        grad[n] -= inv;
        // Hessian: ∇²Fi/slack + u u^T / slack² with u = (∇Fi, -1).
        for i in 0..n {
            for j in 0..n {
                hess[(i, j)] += inv * ev.hess[(i, j)];
            }
        }
        for (ei, gyi) in ext[..n].iter_mut().zip(&ev.grad) {
            *ei = *gyi;
        }
        ext[n] = -1.0;
        hess.add_outer(inv * inv, &ext);
    }
    FuncEval {
        value,
        grad,
        hess: Some(hess),
        in_domain: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::{Monomial, Posynomial};

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn minimizes_x_subject_to_lower_bound() {
        // min x s.t. x >= 5  ->  x* = 5.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 5.0).unwrap();
        let s = solve_with_start(&p, &[10.0], &opts()).unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-5, "x = {}", s.x[0]);
        assert!((s.objective - 5.0).abs() < 1e-5);
    }

    #[test]
    fn symmetric_inverse_sum_splits_budget_evenly() {
        // min 1/x + 1/y s.t. x + y <= 1  ->  x = y = 1/2, objective 4.
        let mut p = GpProblem::new(2);
        let mut obj = mono(1.0, &[(0, -1.0)]);
        obj.add(&mono(1.0, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        let mut c = mono(1.0, &[(0, 1.0)]);
        c.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c, 1.0).unwrap();
        let s = solve_with_start(&p, &[0.25, 0.25], &opts()).unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-5);
        assert!((s.x[1] - 0.5).abs() < 1e-5);
        assert!((s.objective - 4.0).abs() < 1e-4);
    }

    #[test]
    fn weighted_inverse_sum_matches_lagrange_closed_form() {
        // min a/x + b/y s.t. p x + q y <= B.
        // KKT: a/x^2 = nu p, b/y^2 = nu q, p x + q y = B
        //  => x = sqrt(a/p)/k, y = sqrt(b/q)/k with
        //     k = (sqrt(a p) + sqrt(b q)) / B.
        let (a, b, pp, q, bb) = (3.0_f64, 5.0_f64, 2.0_f64, 7.0_f64, 11.0_f64);
        let k = ((a * pp).sqrt() + (b * q).sqrt()) / bb;
        let x_star = (a / pp).sqrt() / k;
        let y_star = (b / q).sqrt() / k;

        let mut p = GpProblem::new(2);
        let mut obj = mono(a, &[(0, -1.0)]);
        obj.add(&mono(b, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        let mut c = mono(pp, &[(0, 1.0)]);
        c.add(&mono(q, &[(1, 1.0)]));
        p.add_constraint_le(c, bb).unwrap();
        let s = solve_with_start(&p, &[0.1, 0.1], &opts()).unwrap();
        assert!(
            (s.x[0] - x_star).abs() < 1e-4 * x_star,
            "{} vs {x_star}",
            s.x[0]
        );
        assert!(
            (s.x[1] - y_star).abs() < 1e-4 * y_star,
            "{} vs {y_star}",
            s.x[1]
        );
    }

    #[test]
    fn boyd_tutorial_box_example() {
        // Maximize box volume hwd (minimize h^-1 w^-1 d^-1) subject to
        // total wall area 2(hw + hd) <= Awall, floor area wd <= Aflr,
        // aspect ratios alpha <= h/w <= beta, gamma <= d/w <= delta.
        // (Boyd et al., "A Tutorial on Geometric Programming", §2.)
        let (awall, aflr) = (200.0, 50.0);
        let (alpha, beta, gamma, delta) = (0.5, 2.0, 0.5, 2.0);
        let mut p = GpProblem::new(3); // h=0, w=1, d=2
        p.set_objective(mono(1.0, &[(0, -1.0), (1, -1.0), (2, -1.0)]))
            .unwrap();
        let mut wall = mono(2.0, &[(0, 1.0), (1, 1.0)]);
        wall.add(&mono(2.0, &[(0, 1.0), (2, 1.0)]));
        p.add_constraint_le(wall, awall).unwrap();
        p.add_constraint_le(mono(1.0, &[(1, 1.0), (2, 1.0)]), aflr)
            .unwrap();
        p.add_constraint(mono(alpha, &[(0, -1.0), (1, 1.0)]))
            .unwrap(); // alpha w/h <= 1
        p.add_constraint(mono(1.0 / beta, &[(0, 1.0), (1, -1.0)]))
            .unwrap(); // h/(beta w) <= 1
        p.add_constraint(mono(gamma, &[(1, 1.0), (2, -1.0)]))
            .unwrap(); // gamma w/d <= 1
        p.add_constraint(mono(1.0 / delta, &[(1, -1.0), (2, 1.0)]))
            .unwrap(); // d/(delta w) <= 1
        let s = solve(&p, &opts()).unwrap();
        let vol = s.x[0] * s.x[1] * s.x[2];
        // Closed form for these numbers: floor bound gives w = d = sqrt(50),
        // wall bound then gives h = 100 / (w + d) = sqrt(50), so the optimal
        // volume is 50^(3/2) ~= 353.553.
        assert!(p.max_violation(&s.x) < 1e-6);
        // Perturbations along feasible directions must not improve volume.
        for i in 0..3 {
            for sgn in [-1.0, 1.0] {
                let mut x = s.x.clone();
                x[i] *= 1.0 + sgn * 1e-3;
                if p.max_violation(&x) < 0.0 {
                    let v = x[0] * x[1] * x[2];
                    assert!(v <= vol * (1.0 + 1e-5));
                }
            }
        }
        let expected = 50.0_f64.powf(1.5);
        assert!((vol - expected).abs() < 1e-3 * expected, "volume {vol}");
    }

    #[test]
    fn matches_fine_grid_search_on_2d_problem() {
        // min 2/x + 3/y s.t. x y <= 4, x + y <= 5.
        let mut p = GpProblem::new(2);
        let mut obj = mono(2.0, &[(0, -1.0)]);
        obj.add(&mono(3.0, &[(1, -1.0)]));
        p.set_objective(obj.clone()).unwrap();
        p.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), 4.0)
            .unwrap();
        let mut c2 = mono(1.0, &[(0, 1.0)]);
        c2.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c2, 5.0).unwrap();
        let s = solve_with_start(&p, &[0.5, 0.5], &opts()).unwrap();

        let mut best = f64::INFINITY;
        let steps = 800;
        for i in 1..steps {
            for j in 1..steps {
                let x = 5.0 * i as f64 / steps as f64;
                let y = 5.0 * j as f64 / steps as f64;
                if x * y <= 4.0 && x + y <= 5.0 {
                    best = best.min(2.0 / x + 3.0 / y);
                }
            }
        }
        assert!(
            (s.objective - best).abs() < 0.02 * best,
            "solver {} vs grid {best}",
            s.objective
        );
        assert!(s.objective <= best + 1e-9, "solver must beat grid");
    }

    #[test]
    fn phase_one_finds_feasible_region_away_from_ones() {
        // Constraint x >= 10 makes x=1 infeasible; phase I must recover.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 10.0).unwrap();
        let s = solve(&p, &opts()).unwrap();
        assert!((s.x[0] - 10.0).abs() < 1e-4, "x = {}", s.x[0]);
    }

    #[test]
    fn detects_infeasible_program() {
        // x <= 1 and x >= 2 cannot hold together.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_upper_bound(0, 1.0).unwrap();
        p.add_lower_bound(0, 2.0).unwrap();
        match solve(&p, &opts()) {
            Err(GpError::Infeasible { .. }) => {}
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn rejects_infeasible_start() {
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_upper_bound(0, 1.0).unwrap();
        assert_eq!(
            solve_with_start(&p, &[2.0], &opts()).unwrap_err(),
            GpError::InvalidStartingPoint
        );
        assert_eq!(
            solve_with_start(&p, &[-1.0], &opts()).unwrap_err(),
            GpError::InvalidStartingPoint
        );
    }

    #[test]
    fn unconstrained_posynomial_with_interior_minimum() {
        // min x + 1/x  ->  x* = 1, value 2 (no constraints).
        let mut p = GpProblem::new(1);
        let mut obj = mono(1.0, &[(0, 1.0)]);
        obj.add(&mono(1.0, &[(0, -1.0)]));
        p.set_objective(obj).unwrap();
        let s = solve_with_start(&p, &[3.0], &opts()).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.objective - 2.0).abs() < 1e-8);
    }

    /// min 2/x + 3/y s.t. x y <= c1, x + y <= c2 (coefficients vary).
    fn drifting_problem(a: f64, b: f64, c1: f64, c2: f64) -> GpProblem {
        let mut p = GpProblem::new(2);
        let mut obj = mono(a, &[(0, -1.0)]);
        obj.add(&mono(b, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        p.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), c1)
            .unwrap();
        let mut c = mono(1.0, &[(0, 1.0)]);
        c.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c, c2).unwrap();
        p
    }

    #[test]
    fn compiled_solve_from_matches_solve_with_start() {
        let p = drifting_problem(2.0, 3.0, 4.0, 5.0);
        let cold = solve_with_start(&p, &[0.5, 0.5], &opts()).unwrap();
        let compiled = CompiledGp::compile(&p).unwrap();
        let mut ws = SolveWorkspace::new();
        let warm = compiled.solve_from(&[0.5, 0.5], &opts(), &mut ws).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-6 * cold.objective);
        assert_eq!(
            compiled
                .solve_from(&[100.0, 100.0], &opts(), &mut ws)
                .unwrap_err(),
            GpError::InvalidStartingPoint
        );
    }

    #[test]
    fn update_from_tracks_coefficient_drift() {
        let p = drifting_problem(2.0, 3.0, 4.0, 5.0);
        let mut compiled = CompiledGp::compile(&p).unwrap();
        let mut ws = SolveWorkspace::new();
        let drifted = drifting_problem(2.2, 2.9, 4.1, 4.9);
        compiled.update_from(&drifted).unwrap();
        let got = compiled.solve_from(&[0.5, 0.5], &opts(), &mut ws).unwrap();
        let want = solve_with_start(&drifted, &[0.5, 0.5], &opts()).unwrap();
        assert!(
            (got.objective - want.objective).abs() < 1e-6 * want.objective,
            "compiled {} vs fresh {}",
            got.objective,
            want.objective
        );
    }

    #[test]
    fn warm_solve_from_perturbed_optimum_agrees_with_cold() {
        let p = drifting_problem(2.0, 3.0, 4.0, 5.0);
        let prev = solve_with_start(&p, &[0.5, 0.5], &opts()).unwrap();
        let drifted = drifting_problem(2.1, 3.05, 3.95, 5.02);
        let cold = solve_with_start(&drifted, &[0.5, 0.5], &opts()).unwrap();
        let compiled = CompiledGp::compile(&drifted).unwrap();
        let mut ws = SolveWorkspace::new();
        let (warm, kind) = compiled
            .solve_warm(&prev.x, &[0.5, 0.5], &opts(), &mut ws)
            .unwrap();
        assert_eq!(kind, WarmStart::Hit, "small drift should stay on rung 0");
        assert!(
            (warm.objective - cold.objective).abs() < 1e-5 * cold.objective,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            drifted.max_violation(&warm.x) <= 0.0,
            "warm must be feasible"
        );
        // The warm start should not pay more Newton steps than the cold one.
        assert!(
            warm.newton_steps <= cold.newton_steps,
            "warm {} vs cold {} newton steps",
            warm.newton_steps,
            cold.newton_steps
        );
    }

    #[test]
    fn warm_solve_repairs_after_large_drift() {
        let p = drifting_problem(2.0, 3.0, 4.0, 5.0);
        let prev = solve_with_start(&p, &[0.5, 0.5], &opts()).unwrap();
        // Shrink both budgets hard: the old optimum is far outside.
        let drifted = drifting_problem(2.0, 3.0, 1.1, 2.0);
        let compiled = CompiledGp::compile(&drifted).unwrap();
        let mut ws = SolveWorkspace::new();
        let (warm, kind) = compiled
            .solve_warm(&prev.x, &[0.4, 0.4], &opts(), &mut ws)
            .unwrap();
        assert_eq!(kind, WarmStart::Repaired);
        let cold = solve_with_start(&drifted, &[0.4, 0.4], &opts()).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-5 * cold.objective);
        assert!(drifted.max_violation(&warm.x) <= 0.0);
    }

    #[test]
    fn warm_solve_rejects_useless_interior_point() {
        let p = drifting_problem(2.0, 3.0, 4.0, 5.0);
        let compiled = CompiledGp::compile(&p).unwrap();
        let mut ws = SolveWorkspace::new();
        // Both points violate x + y <= 5: every rung is infeasible.
        let err = compiled
            .solve_warm(&[10.0, 10.0], &[8.0, 8.0], &opts(), &mut ws)
            .unwrap_err();
        assert_eq!(err, GpError::InvalidStartingPoint);
    }

    #[test]
    fn duality_gap_reported_below_tolerance() {
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 2.0).unwrap();
        let o = opts();
        let s = solve_with_start(&p, &[4.0], &o).unwrap();
        assert!(s.duality_gap <= o.tolerance);
    }
}
