//! Log-barrier interior-point solver for geometric programs.
//!
//! After the log transform (see [`crate::logsumexp`]) a GP becomes the
//! smooth convex program
//!
//! ```text
//! minimize    F0(y)
//! subject to  Fi(y) <= 0,   i = 1..m
//! ```
//!
//! which we solve with the classic barrier method (Boyd & Vandenberghe,
//! ch. 11): for increasing `t`, minimize `t F0(y) - sum_i ln(-Fi(y))` with
//! damped Newton steps and backtracking line search. `m/t` bounds the
//! suboptimality at each outer iteration, so termination yields a certified
//! duality gap.
//!
//! If the caller has no strictly feasible starting point, a standard
//! phase-I problem (`minimize s  s.t.  Fi(y) <= s`) is solved first.

use crate::error::GpError;
use crate::linalg::{axpy, dot, Matrix};
use crate::logsumexp::LogPosynomial;
use crate::problem::{GpProblem, GpSolution};
use pq_obs::{names, EventKind, Obs};

/// Tuning knobs for the barrier solver. The defaults solve every program in
/// this workspace; they are exposed for experimentation.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Target duality gap (`m / t` at termination). Default `1e-8`.
    pub tolerance: f64,
    /// Initial barrier parameter `t0`. Default `1.0`.
    pub t0: f64,
    /// Barrier parameter multiplier per outer iteration. Default `20.0`.
    pub mu: f64,
    /// Newton stopping threshold on `lambda^2 / 2`. Default `1e-8`
    /// (tighter values grind against double-precision rounding near the
    /// central path without improving the certified duality gap).
    pub newton_tolerance: f64,
    /// Maximum Newton steps per centering problem. Default `200`.
    pub max_newton_steps: usize,
    /// Maximum outer (barrier) iterations. Default `64`.
    pub max_outer_iterations: usize,
    /// Armijo parameter for backtracking line search. Default `0.05`.
    pub armijo: f64,
    /// Step shrink factor for backtracking. Default `0.5`.
    pub backtrack: f64,
    /// Telemetry handle. Defaults to the null handle (no events, but
    /// `gp.solve_ns` timings still accumulate in its private registry).
    pub obs: Obs,
    /// Attribution label: the index of the query this solve serves, if
    /// any. When set, `gp.solve` events/timings carry a `query` field
    /// and the `gp.solve` labeled counter tallies per-query solves, so
    /// cost rollups can answer "whose recomputations eat the budget?".
    pub query: Option<u32>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-8,
            t0: 1.0,
            mu: 20.0,
            newton_tolerance: 1e-8,
            max_newton_steps: 200,
            max_outer_iterations: 64,
            armijo: 0.05,
            backtrack: 0.5,
            obs: Obs::null(),
            query: None,
        }
    }
}

/// Starts the `gp.solve` span, tagged with the originating query when
/// the caller attributed the solve, and tallies the per-query labeled
/// counter.
fn solve_span(options: &SolverOptions) -> pq_obs::TimedGuard {
    match options.query {
        Some(q) => {
            options
                .obs
                .labeled_counter(names::GP_SOLVE, names::LABEL_QUERY, &q.to_string())
                .inc();
            options
                .obs
                .timed_labeled(names::GP_SOLVE, names::LABEL_QUERY, u64::from(q))
        }
        None => options.obs.timed(names::GP_SOLVE),
    }
}

/// Solves `problem` starting from a caller-supplied strictly feasible point
/// `x0 > 0`.
///
/// # Errors
/// [`GpError::InvalidStartingPoint`] if `x0` is not strictly positive, not
/// finite, or violates a constraint; solver errors otherwise.
pub fn solve_with_start(
    problem: &GpProblem,
    x0: &[f64],
    options: &SolverOptions,
) -> Result<GpSolution, GpError> {
    let (objective, constraints) = problem.validated()?;
    if x0.len() != problem.n_vars()
        || x0.iter().any(|&v| !(v.is_finite() && v > 0.0))
        || !problem.is_strictly_feasible(x0, 0.0)
    {
        return Err(GpError::InvalidStartingPoint);
    }
    let _span = solve_span(options);
    let n = problem.n_vars();
    let f0 = LogPosynomial::compile(objective, n);
    let fs: Vec<LogPosynomial> = constraints
        .iter()
        .map(|c| LogPosynomial::compile(c, n))
        .collect();
    let y0: Vec<f64> = x0.iter().map(|&v| v.ln()).collect();
    barrier_solve(&f0, &fs, y0, options)
}

/// Solves `problem`, running a phase-I feasibility search first if needed.
///
/// An all-ones starting point is tried first; if it is infeasible, the
/// phase-I program `minimize s  s.t.  Fi(y) <= s` locates a strictly
/// feasible point or certifies infeasibility.
pub fn solve(problem: &GpProblem, options: &SolverOptions) -> Result<GpSolution, GpError> {
    let (objective, constraints) = problem.validated()?;
    let n = problem.n_vars();
    let ones = vec![1.0; n];
    if problem.is_strictly_feasible(&ones, 1e-9) {
        return solve_with_start(problem, &ones, options);
    }
    let _span = solve_span(options);
    let f0 = LogPosynomial::compile(objective, n);
    let fs: Vec<LogPosynomial> = constraints
        .iter()
        .map(|c| LogPosynomial::compile(c, n))
        .collect();
    let y0 = phase_one(&fs, n, options)?;
    barrier_solve(&f0, &fs, y0, options)
}

/// Barrier (phase II) iteration in log variables.
fn barrier_solve(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    mut y: Vec<f64>,
    options: &SolverOptions,
) -> Result<GpSolution, GpError> {
    let n = y.len();
    let m = fs.len();
    let mut t = options.t0.max(f64::MIN_POSITIVE);
    let mut newton_steps = 0usize;
    let mut outer = 0usize;

    if m == 0 {
        // Pure unconstrained minimization of F0.
        newton_steps += newton_minimize(
            |yy, want_hess| objective_only(f0, yy, want_hess),
            &mut y,
            options,
            "unconstrained",
        )?;
        let solution = finish(f0, &y, outer, newton_steps, 0.0);
        emit_solved(options, &solution);
        return Ok(solution);
    }

    loop {
        outer += 1;
        let tt = t;
        newton_steps += newton_minimize(
            |yy, want_hess| barrier_eval(f0, fs, tt, yy, want_hess),
            &mut y,
            options,
            "center",
        )?;
        let gap = m as f64 / t;
        options
            .obs
            .emit_with(names::GP_OUTER, EventKind::Point, |e| {
                e.with("outer", outer)
                    .with("t", tt)
                    .with("gap", gap)
                    .with("newton_steps", newton_steps)
            });
        if gap <= options.tolerance {
            let solution = finish(f0, &y, outer, newton_steps, gap);
            emit_solved(options, &solution);
            return Ok(solution);
        }
        if outer >= options.max_outer_iterations {
            return Err(GpError::IterationLimit);
        }
        t *= options.mu;
        let _ = n;
    }
}

/// One structured summary event per successful solve.
fn emit_solved(options: &SolverOptions, solution: &GpSolution) {
    options
        .obs
        .emit_with(names::GP_SOLVE, EventKind::Point, |e| {
            let e = e
                .with("outer", solution.outer_iterations)
                .with("newton_steps", solution.newton_steps)
                .with("gap", solution.duality_gap)
                .with("objective", solution.objective);
            match options.query {
                Some(q) => e.with(names::LABEL_QUERY, q),
                None => e,
            }
        });
}

fn finish(
    f0: &LogPosynomial,
    y: &[f64],
    outer: usize,
    newton_steps: usize,
    gap: f64,
) -> GpSolution {
    let x: Vec<f64> = y.iter().map(|&v| v.exp()).collect();
    GpSolution {
        objective: f0.value(y).exp(),
        x,
        outer_iterations: outer,
        newton_steps,
        duality_gap: gap,
    }
}

/// Result of evaluating a barrier-style objective at a point.
struct FuncEval {
    value: f64,
    grad: Vec<f64>,
    /// `None` when only value (line search) was requested.
    hess: Option<Matrix>,
    /// `false` when the point is outside the barrier domain.
    in_domain: bool,
}

fn objective_only(f0: &LogPosynomial, y: &[f64], want_hess: bool) -> FuncEval {
    if want_hess {
        let ev = f0.evaluate(y);
        FuncEval {
            value: ev.value,
            grad: ev.grad,
            hess: Some(ev.hess),
            in_domain: true,
        }
    } else {
        FuncEval {
            value: f0.value(y),
            grad: Vec::new(),
            hess: None,
            in_domain: true,
        }
    }
}

/// Evaluates `t F0(y) - sum ln(-Fi(y))` with optional derivatives.
fn barrier_eval(
    f0: &LogPosynomial,
    fs: &[LogPosynomial],
    t: f64,
    y: &[f64],
    want_hess: bool,
) -> FuncEval {
    let n = y.len();
    if !want_hess {
        let mut value = t * f0.value(y);
        for fi in fs {
            let v = fi.value(y);
            if v >= 0.0 {
                return FuncEval {
                    value: f64::INFINITY,
                    grad: Vec::new(),
                    hess: None,
                    in_domain: false,
                };
            }
            value -= (-v).ln();
        }
        return FuncEval {
            value,
            grad: Vec::new(),
            hess: None,
            in_domain: true,
        };
    }

    let ev0 = f0.evaluate(y);
    let mut value = t * ev0.value;
    let mut grad: Vec<f64> = ev0.grad.iter().map(|g| t * g).collect();
    let mut hess = ev0.hess;
    // Scale objective Hessian by t.
    hess.add_scaled(t - 1.0, &hess.clone());
    for fi in fs {
        let ev = fi.evaluate(y);
        if ev.value >= 0.0 {
            return FuncEval {
                value: f64::INFINITY,
                grad: vec![0.0; n],
                hess: Some(Matrix::zeros(n, n)),
                in_domain: false,
            };
        }
        let s = -ev.value; // slack, > 0
        value -= s.ln();
        let inv_s = 1.0 / s;
        axpy(inv_s, &ev.grad, &mut grad);
        hess.add_scaled(inv_s, &ev.hess);
        hess.add_outer(inv_s * inv_s, &ev.grad);
    }
    FuncEval {
        value,
        grad,
        hess: Some(hess),
        in_domain: true,
    }
}

/// Damped Newton minimization of a smooth convex function given by `eval`.
///
/// Returns the number of Newton steps taken. `y` is updated in place.
/// `phase` labels the emitted `gp.newton` events ("center",
/// "unconstrained", or "phase1").
fn newton_minimize<F>(
    mut eval: F,
    y: &mut [f64],
    options: &SolverOptions,
    phase: &'static str,
) -> Result<usize, GpError>
where
    F: FnMut(&[f64], bool) -> FuncEval,
{
    let mut prev_value = f64::INFINITY;
    for steps in 0..options.max_newton_steps {
        let e = eval(y, true);
        if !e.in_domain {
            return Err(GpError::NumericalFailure("iterate left barrier domain"));
        }
        let hess = e.hess.expect("hessian requested");
        let rhs: Vec<f64> = e.grad.iter().map(|g| -g).collect();
        let dy = hess
            .cholesky_solve_regularized(&rhs)
            .ok_or(GpError::NumericalFailure("newton system unsolvable"))?;
        let decrement_sq = -dot(&e.grad, &dy);
        if !decrement_sq.is_finite() {
            return Err(GpError::NumericalFailure("non-finite newton decrement"));
        }
        // The Newton decrement is the KKT residual in the Hessian norm;
        // one event per step replaces the old PQ_GP_TRACE stderr dump
        // (attach a `StderrSubscriber` for the same output).
        options
            .obs
            .emit_with(names::GP_NEWTON, EventKind::Point, |ev| {
                ev.with("phase", phase)
                    .with("step", steps)
                    .with("value", e.value)
                    .with("decrement_sq", decrement_sq)
            });
        if decrement_sq / 2.0 <= options.newton_tolerance {
            return Ok(steps);
        }
        // Rounding floor: once successive values stop moving relative to
        // their magnitude, further Newton steps cannot make progress.
        if (prev_value - e.value).abs() <= 1e-14 * (1.0 + e.value.abs()) {
            return Ok(steps);
        }
        prev_value = e.value;
        // Backtracking line search on the barrier value.
        let mut step = 1.0;
        let mut accepted = false;
        let mut trial = vec![0.0; y.len()];
        for _ in 0..60 {
            trial.copy_from_slice(y);
            axpy(step, &dy, &mut trial);
            let te = eval(&trial, false);
            if te.in_domain
                && te.value.is_finite()
                && te.value <= e.value - options.armijo * step * decrement_sq
            {
                y.copy_from_slice(&trial);
                accepted = true;
                break;
            }
            step *= options.backtrack;
        }
        if !accepted {
            // No descent at the smallest step: we are at numerical precision.
            return Ok(steps);
        }
    }
    Err(GpError::IterationLimit)
}

/// Phase I: find a strictly feasible `y` for `Fi(y) <= 0` by minimizing the
/// auxiliary variable `s` in `Fi(y) <= s`, stopping as soon as `s < 0`.
fn phase_one(fs: &[LogPosynomial], n: usize, options: &SolverOptions) -> Result<Vec<f64>, GpError> {
    let m = fs.len();
    let y0 = vec![0.0; n];
    let worst = fs
        .iter()
        .map(|f| f.value(&y0))
        .fold(f64::NEG_INFINITY, f64::max);
    if worst < -1e-9 {
        return Ok(y0);
    }
    // Extended point z = (y, s); start with comfortable slack.
    let mut z = vec![0.0; n + 1];
    z[n] = worst + 1.0;

    let margin = 1e-6;
    let mut t = 1.0;
    for _ in 0..options.max_outer_iterations {
        // Centering with early exit once strictly feasible.
        let mut exited = false;
        for _ in 0..options.max_newton_steps {
            if z[n] < -margin {
                exited = true;
                break;
            }
            let e = phase_one_eval(fs, t, &z, true);
            if !e.in_domain {
                return Err(GpError::NumericalFailure("phase-I left domain"));
            }
            let hess = e.hess.expect("hessian requested");
            let rhs: Vec<f64> = e.grad.iter().map(|g| -g).collect();
            let dz = hess
                .cholesky_solve_regularized(&rhs)
                .ok_or(GpError::NumericalFailure("phase-I newton unsolvable"))?;
            let decrement_sq = -dot(&e.grad, &dz);
            options
                .obs
                .emit_with(names::GP_NEWTON, EventKind::Point, |ev| {
                    ev.with("phase", "phase1")
                        .with("value", e.value)
                        .with("decrement_sq", decrement_sq)
                        .with("slack", z[n])
                });
            if decrement_sq / 2.0 <= options.newton_tolerance {
                break;
            }
            let mut step = 1.0;
            let mut moved = false;
            let mut trial = vec![0.0; n + 1];
            for _ in 0..60 {
                trial.copy_from_slice(&z);
                axpy(step, &dz, &mut trial);
                let te = phase_one_eval(fs, t, &trial, false);
                if te.in_domain
                    && te.value.is_finite()
                    && te.value <= e.value - options.armijo * step * decrement_sq
                {
                    z.copy_from_slice(&trial);
                    moved = true;
                    break;
                }
                step *= options.backtrack;
            }
            if !moved {
                break;
            }
        }
        if exited || z[n] < -margin {
            return Ok(z[..n].to_vec());
        }
        if (m as f64) / t < options.tolerance.max(1e-12) {
            break;
        }
        t *= options.mu;
    }
    if z[n] < 0.0 {
        Ok(z[..n].to_vec())
    } else {
        Err(GpError::Infeasible { residual: z[n] })
    }
}

/// Evaluates the phase-I barrier `t s - sum ln(s - Fi(y))` at `z = (y, s)`.
fn phase_one_eval(fs: &[LogPosynomial], t: f64, z: &[f64], want_hess: bool) -> FuncEval {
    let n = z.len() - 1;
    let (y, s) = (&z[..n], z[n]);
    if !want_hess {
        let mut value = t * s;
        for fi in fs {
            let slack = s - fi.value(y);
            if slack <= 0.0 {
                return FuncEval {
                    value: f64::INFINITY,
                    grad: Vec::new(),
                    hess: None,
                    in_domain: false,
                };
            }
            value -= slack.ln();
        }
        return FuncEval {
            value,
            grad: Vec::new(),
            hess: None,
            in_domain: true,
        };
    }
    let mut value = t * s;
    let mut grad = vec![0.0; n + 1];
    grad[n] = t;
    let mut hess = Matrix::zeros(n + 1, n + 1);
    let mut ext = vec![0.0; n + 1];
    for fi in fs {
        let ev = fi.evaluate(y);
        let slack = s - ev.value;
        if slack <= 0.0 {
            return FuncEval {
                value: f64::INFINITY,
                grad: vec![0.0; n + 1],
                hess: Some(Matrix::zeros(n + 1, n + 1)),
                in_domain: false,
            };
        }
        value -= slack.ln();
        let inv = 1.0 / slack;
        // d(-ln(s - Fi))/dy = ∇Fi / slack ; d/ds = -1/slack.
        for (gi, gyi) in grad[..n].iter_mut().zip(&ev.grad) {
            *gi += inv * gyi;
        }
        grad[n] -= inv;
        // Hessian: ∇²Fi/slack + u u^T / slack² with u = (∇Fi, -1).
        for i in 0..n {
            for j in 0..n {
                hess[(i, j)] += inv * ev.hess[(i, j)];
            }
        }
        for (ei, gyi) in ext[..n].iter_mut().zip(&ev.grad) {
            *ei = *gyi;
        }
        ext[n] = -1.0;
        hess.add_outer(inv * inv, &ext);
    }
    FuncEval {
        value,
        grad,
        hess: Some(hess),
        in_domain: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::{Monomial, Posynomial};

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn minimizes_x_subject_to_lower_bound() {
        // min x s.t. x >= 5  ->  x* = 5.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 5.0).unwrap();
        let s = solve_with_start(&p, &[10.0], &opts()).unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-5, "x = {}", s.x[0]);
        assert!((s.objective - 5.0).abs() < 1e-5);
    }

    #[test]
    fn symmetric_inverse_sum_splits_budget_evenly() {
        // min 1/x + 1/y s.t. x + y <= 1  ->  x = y = 1/2, objective 4.
        let mut p = GpProblem::new(2);
        let mut obj = mono(1.0, &[(0, -1.0)]);
        obj.add(&mono(1.0, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        let mut c = mono(1.0, &[(0, 1.0)]);
        c.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c, 1.0).unwrap();
        let s = solve_with_start(&p, &[0.25, 0.25], &opts()).unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-5);
        assert!((s.x[1] - 0.5).abs() < 1e-5);
        assert!((s.objective - 4.0).abs() < 1e-4);
    }

    #[test]
    fn weighted_inverse_sum_matches_lagrange_closed_form() {
        // min a/x + b/y s.t. p x + q y <= B.
        // KKT: a/x^2 = nu p, b/y^2 = nu q, p x + q y = B
        //  => x = sqrt(a/p)/k, y = sqrt(b/q)/k with
        //     k = (sqrt(a p) + sqrt(b q)) / B.
        let (a, b, pp, q, bb) = (3.0_f64, 5.0_f64, 2.0_f64, 7.0_f64, 11.0_f64);
        let k = ((a * pp).sqrt() + (b * q).sqrt()) / bb;
        let x_star = (a / pp).sqrt() / k;
        let y_star = (b / q).sqrt() / k;

        let mut p = GpProblem::new(2);
        let mut obj = mono(a, &[(0, -1.0)]);
        obj.add(&mono(b, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        let mut c = mono(pp, &[(0, 1.0)]);
        c.add(&mono(q, &[(1, 1.0)]));
        p.add_constraint_le(c, bb).unwrap();
        let s = solve_with_start(&p, &[0.1, 0.1], &opts()).unwrap();
        assert!(
            (s.x[0] - x_star).abs() < 1e-4 * x_star,
            "{} vs {x_star}",
            s.x[0]
        );
        assert!(
            (s.x[1] - y_star).abs() < 1e-4 * y_star,
            "{} vs {y_star}",
            s.x[1]
        );
    }

    #[test]
    fn boyd_tutorial_box_example() {
        // Maximize box volume hwd (minimize h^-1 w^-1 d^-1) subject to
        // total wall area 2(hw + hd) <= Awall, floor area wd <= Aflr,
        // aspect ratios alpha <= h/w <= beta, gamma <= d/w <= delta.
        // (Boyd et al., "A Tutorial on Geometric Programming", §2.)
        let (awall, aflr) = (200.0, 50.0);
        let (alpha, beta, gamma, delta) = (0.5, 2.0, 0.5, 2.0);
        let mut p = GpProblem::new(3); // h=0, w=1, d=2
        p.set_objective(mono(1.0, &[(0, -1.0), (1, -1.0), (2, -1.0)]))
            .unwrap();
        let mut wall = mono(2.0, &[(0, 1.0), (1, 1.0)]);
        wall.add(&mono(2.0, &[(0, 1.0), (2, 1.0)]));
        p.add_constraint_le(wall, awall).unwrap();
        p.add_constraint_le(mono(1.0, &[(1, 1.0), (2, 1.0)]), aflr)
            .unwrap();
        p.add_constraint(mono(alpha, &[(0, -1.0), (1, 1.0)]))
            .unwrap(); // alpha w/h <= 1
        p.add_constraint(mono(1.0 / beta, &[(0, 1.0), (1, -1.0)]))
            .unwrap(); // h/(beta w) <= 1
        p.add_constraint(mono(gamma, &[(1, 1.0), (2, -1.0)]))
            .unwrap(); // gamma w/d <= 1
        p.add_constraint(mono(1.0 / delta, &[(1, -1.0), (2, 1.0)]))
            .unwrap(); // d/(delta w) <= 1
        let s = solve(&p, &opts()).unwrap();
        let vol = s.x[0] * s.x[1] * s.x[2];
        // Closed form for these numbers: floor bound gives w = d = sqrt(50),
        // wall bound then gives h = 100 / (w + d) = sqrt(50), so the optimal
        // volume is 50^(3/2) ~= 353.553.
        assert!(p.max_violation(&s.x) < 1e-6);
        // Perturbations along feasible directions must not improve volume.
        for i in 0..3 {
            for sgn in [-1.0, 1.0] {
                let mut x = s.x.clone();
                x[i] *= 1.0 + sgn * 1e-3;
                if p.max_violation(&x) < 0.0 {
                    let v = x[0] * x[1] * x[2];
                    assert!(v <= vol * (1.0 + 1e-5));
                }
            }
        }
        let expected = 50.0_f64.powf(1.5);
        assert!((vol - expected).abs() < 1e-3 * expected, "volume {vol}");
    }

    #[test]
    fn matches_fine_grid_search_on_2d_problem() {
        // min 2/x + 3/y s.t. x y <= 4, x + y <= 5.
        let mut p = GpProblem::new(2);
        let mut obj = mono(2.0, &[(0, -1.0)]);
        obj.add(&mono(3.0, &[(1, -1.0)]));
        p.set_objective(obj.clone()).unwrap();
        p.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), 4.0)
            .unwrap();
        let mut c2 = mono(1.0, &[(0, 1.0)]);
        c2.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c2, 5.0).unwrap();
        let s = solve_with_start(&p, &[0.5, 0.5], &opts()).unwrap();

        let mut best = f64::INFINITY;
        let steps = 800;
        for i in 1..steps {
            for j in 1..steps {
                let x = 5.0 * i as f64 / steps as f64;
                let y = 5.0 * j as f64 / steps as f64;
                if x * y <= 4.0 && x + y <= 5.0 {
                    best = best.min(2.0 / x + 3.0 / y);
                }
            }
        }
        assert!(
            (s.objective - best).abs() < 0.02 * best,
            "solver {} vs grid {best}",
            s.objective
        );
        assert!(s.objective <= best + 1e-9, "solver must beat grid");
    }

    #[test]
    fn phase_one_finds_feasible_region_away_from_ones() {
        // Constraint x >= 10 makes x=1 infeasible; phase I must recover.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 10.0).unwrap();
        let s = solve(&p, &opts()).unwrap();
        assert!((s.x[0] - 10.0).abs() < 1e-4, "x = {}", s.x[0]);
    }

    #[test]
    fn detects_infeasible_program() {
        // x <= 1 and x >= 2 cannot hold together.
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_upper_bound(0, 1.0).unwrap();
        p.add_lower_bound(0, 2.0).unwrap();
        match solve(&p, &opts()) {
            Err(GpError::Infeasible { .. }) => {}
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn rejects_infeasible_start() {
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_upper_bound(0, 1.0).unwrap();
        assert_eq!(
            solve_with_start(&p, &[2.0], &opts()).unwrap_err(),
            GpError::InvalidStartingPoint
        );
        assert_eq!(
            solve_with_start(&p, &[-1.0], &opts()).unwrap_err(),
            GpError::InvalidStartingPoint
        );
    }

    #[test]
    fn unconstrained_posynomial_with_interior_minimum() {
        // min x + 1/x  ->  x* = 1, value 2 (no constraints).
        let mut p = GpProblem::new(1);
        let mut obj = mono(1.0, &[(0, 1.0)]);
        obj.add(&mono(1.0, &[(0, -1.0)]));
        p.set_objective(obj).unwrap();
        let s = solve_with_start(&p, &[3.0], &opts()).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn duality_gap_reported_below_tolerance() {
        let mut p = GpProblem::new(1);
        p.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p.add_lower_bound(0, 2.0).unwrap();
        let o = opts();
        let s = solve_with_start(&p, &[4.0], &o).unwrap();
        assert!(s.duality_gap <= o.tolerance);
    }
}
