//! Geometric-program construction.
//!
//! A geometric program (GP) in standard form:
//!
//! ```text
//! minimize    f0(x)              (posynomial)
//! subject to  fi(x) <= 1         (posynomials, i = 1..m)
//!             x > 0
//! ```
//!
//! [`GpProblem`] is a builder for such programs; [`crate::solver`] solves
//! them after the log-variable transform.

use crate::error::GpError;
use crate::posynomial::{Monomial, Posynomial};

/// A geometric program under construction.
#[derive(Debug, Clone)]
pub struct GpProblem {
    n_vars: usize,
    objective: Option<Posynomial>,
    constraints: Vec<Posynomial>,
}

impl GpProblem {
    /// Creates a program over `n_vars` strictly positive variables.
    pub fn new(n_vars: usize) -> Self {
        GpProblem {
            n_vars,
            objective: None,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the posynomial objective to minimize.
    ///
    /// # Errors
    /// [`GpError::EmptyPosynomial`] for an empty objective;
    /// [`GpError::InvalidExponent`] if it references unknown variables.
    pub fn set_objective(&mut self, objective: Posynomial) -> Result<(), GpError> {
        self.check(&objective)?;
        self.objective = Some(objective);
        Ok(())
    }

    /// Adds the constraint `f(x) <= 1`.
    pub fn add_constraint(&mut self, f: Posynomial) -> Result<(), GpError> {
        self.check(&f)?;
        self.constraints.push(f);
        Ok(())
    }

    /// Adds the constraint `f(x) <= bound` for `bound > 0` by normalizing
    /// to `f(x)/bound <= 1`.
    pub fn add_constraint_le(&mut self, f: Posynomial, bound: f64) -> Result<(), GpError> {
        if !(bound.is_finite() && bound > 0.0) {
            return Err(GpError::InvalidBound(bound));
        }
        self.add_constraint(f.scaled(1.0 / bound)?)
    }

    /// Adds `x_var <= upper`.
    pub fn add_upper_bound(&mut self, var: usize, upper: f64) -> Result<(), GpError> {
        if !(upper.is_finite() && upper > 0.0) {
            return Err(GpError::InvalidBound(upper));
        }
        let m = Monomial::new(1.0 / upper, [(var, 1.0)])?;
        self.add_constraint(Posynomial::monomial(m))
    }

    /// Adds `x_var >= lower` for `lower > 0` (as `lower / x_var <= 1`).
    pub fn add_lower_bound(&mut self, var: usize, lower: f64) -> Result<(), GpError> {
        if !(lower.is_finite() && lower > 0.0) {
            return Err(GpError::InvalidBound(lower));
        }
        let m = Monomial::new(lower, [(var, -1.0)])?;
        self.add_constraint(Posynomial::monomial(m))
    }

    /// Adds `x_a <= x_b` (as the monomial constraint `x_a / x_b <= 1`).
    pub fn add_var_le_var(&mut self, a: usize, b: usize) -> Result<(), GpError> {
        let m = Monomial::new(1.0, [(a, 1.0), (b, -1.0)])?;
        self.add_constraint(Posynomial::monomial(m))
    }

    /// The objective, if set.
    pub fn objective(&self) -> Option<&Posynomial> {
        self.objective.as_ref()
    }

    /// The normalized constraints (`f_i(x) <= 1`).
    pub fn constraints(&self) -> &[Posynomial] {
        &self.constraints
    }

    /// Validates the program and returns `(objective, constraints)` for the
    /// solver.
    pub(crate) fn validated(&self) -> Result<(&Posynomial, &[Posynomial]), GpError> {
        let obj = self.objective.as_ref().ok_or(GpError::EmptyPosynomial)?;
        Ok((obj, &self.constraints))
    }

    /// Total monomial terms across objective and constraints — the size
    /// measure the sparse-KKT heuristics and benchmarks report (a GP's
    /// cost is driven by terms, not just variables).
    pub fn total_terms(&self) -> usize {
        self.objective.as_ref().map_or(0, Posynomial::n_terms)
            + self
                .constraints
                .iter()
                .map(Posynomial::n_terms)
                .sum::<usize>()
    }

    /// Evaluates the worst constraint violation `max_i f_i(x) - 1` at `x`
    /// (negative means strictly feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|f| f.eval(x) - 1.0)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True if `x` satisfies every constraint with slack at least `slack`.
    pub fn is_strictly_feasible(&self, x: &[f64], slack: f64) -> bool {
        if x.len() != self.n_vars || x.iter().any(|&v| !(v.is_finite() && v > 0.0)) {
            return false;
        }
        self.constraints.is_empty() || self.max_violation(x) < -slack
    }

    fn check(&self, p: &Posynomial) -> Result<(), GpError> {
        if p.is_zero() {
            return Err(GpError::EmptyPosynomial);
        }
        if let Some(mv) = p.max_var() {
            if mv >= self.n_vars {
                return Err(GpError::InvalidExponent);
            }
        }
        Ok(())
    }
}

/// Solution of a geometric program, reported in the original variables.
#[derive(Debug, Clone)]
pub struct GpSolution {
    /// Optimal point `x* > 0`.
    pub x: Vec<f64>,
    /// Objective value `f0(x*)`.
    pub objective: f64,
    /// Number of outer (barrier) iterations.
    pub outer_iterations: usize,
    /// Total Newton steps across all centering problems.
    pub newton_steps: usize,
    /// Certified bound on suboptimality (`m / t` at termination).
    pub duality_gap: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    #[test]
    fn rejects_out_of_range_variables() {
        let mut p = GpProblem::new(2);
        assert!(p.set_objective(mono(1.0, &[(5, 1.0)])).is_err());
        assert!(p.add_constraint(mono(1.0, &[(2, 1.0)])).is_err());
    }

    #[test]
    fn rejects_empty_objective() {
        let mut p = GpProblem::new(1);
        assert_eq!(
            p.set_objective(Posynomial::zero()),
            Err(GpError::EmptyPosynomial)
        );
    }

    #[test]
    fn normalizes_bounded_constraints() {
        let mut p = GpProblem::new(1);
        p.add_constraint_le(mono(2.0, &[(0, 1.0)]), 4.0).unwrap();
        // 2x <= 4 normalized to 0.5 x <= 1; at x=1 value is 0.5.
        assert!((p.constraints()[0].eval(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_bounds() {
        let mut p = GpProblem::new(1);
        assert!(p.add_constraint_le(mono(1.0, &[(0, 1.0)]), 0.0).is_err());
        assert!(p.add_constraint_le(mono(1.0, &[(0, 1.0)]), -1.0).is_err());
        assert!(p
            .add_constraint_le(mono(1.0, &[(0, 1.0)]), f64::NAN)
            .is_err());
        assert!(p.add_upper_bound(0, 0.0).is_err());
        assert!(p.add_lower_bound(0, f64::INFINITY).is_err());
    }

    #[test]
    fn feasibility_check_and_violation() {
        let mut p = GpProblem::new(2);
        p.add_upper_bound(0, 2.0).unwrap();
        p.add_lower_bound(1, 1.0).unwrap();
        assert!(p.is_strictly_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_strictly_feasible(&[3.0, 2.0], 1e-9));
        assert!(!p.is_strictly_feasible(&[1.0, 0.5], 1e-9));
        assert!(!p.is_strictly_feasible(&[1.0, -1.0], 1e-9));
        assert!((p.max_violation(&[4.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_terms_counts_objective_and_constraints() {
        let mut p = GpProblem::new(2);
        assert_eq!(p.total_terms(), 0);
        let mut obj = mono(1.0, &[(0, 1.0)]);
        obj.add(&mono(2.0, &[(1, 1.0)]));
        p.set_objective(obj).unwrap();
        p.add_upper_bound(0, 2.0).unwrap();
        assert_eq!(p.total_terms(), 3);
    }

    #[test]
    fn var_le_var_encodes_ordering() {
        let mut p = GpProblem::new(2);
        p.add_var_le_var(0, 1).unwrap();
        assert!(p.is_strictly_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_strictly_feasible(&[2.0, 1.0], 1e-9));
    }
}
