//! Error types for geometric-program construction and solving.

/// Errors arising while building or solving a geometric program.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Monomial coefficients must be strictly positive and finite.
    NonPositiveCoefficient(f64),
    /// Exponents must be finite.
    InvalidExponent,
    /// The objective (or a constraint) has no terms.
    EmptyPosynomial,
    /// A constraint bound must be strictly positive and finite.
    InvalidBound(f64),
    /// A supplied starting point was not strictly positive.
    InvalidStartingPoint,
    /// Phase I terminated without finding a strictly feasible point.
    Infeasible {
        /// Best attained value of `max_i f_i(x) - 1` (positive = infeasible).
        residual: f64,
    },
    /// Newton iterations failed to make progress (ill-conditioned problem).
    NumericalFailure(&'static str),
    /// Iteration limit exceeded before reaching the requested tolerance.
    IterationLimit,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::NonPositiveCoefficient(c) => {
                write!(f, "monomial coefficient must be > 0 and finite, got {c}")
            }
            GpError::InvalidExponent => write!(f, "monomial exponent must be finite"),
            GpError::EmptyPosynomial => write!(f, "posynomial must have at least one term"),
            GpError::InvalidBound(b) => {
                write!(f, "constraint bound must be > 0 and finite, got {b}")
            }
            GpError::InvalidStartingPoint => {
                write!(f, "starting point must be strictly positive and finite")
            }
            GpError::Infeasible { residual } => {
                write!(f, "problem is infeasible (residual {residual:.3e})")
            }
            GpError::NumericalFailure(what) => write!(f, "numerical failure: {what}"),
            GpError::IterationLimit => write!(f, "iteration limit exceeded"),
        }
    }
}

impl std::error::Error for GpError {}
