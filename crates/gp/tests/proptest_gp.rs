//! Property tests of the geometric-programming solver: feasibility,
//! KKT optimality, closed-form agreement, and transform consistency.

use proptest::prelude::*;

use pq_gp::{kkt_report, solve_with_start, GpProblem, Monomial, Posynomial, SolverOptions};

fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
    Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted inverse-sum under a weighted budget has a Lagrange closed
    /// form; the solver must match it for arbitrary positive parameters.
    #[test]
    fn matches_weighted_budget_closed_form(
        a in 0.05f64..20.0,
        b in 0.05f64..20.0,
        p in 0.1f64..10.0,
        q in 0.1f64..10.0,
        budget in 0.5f64..100.0,
    ) {
        // min a/x + b/y s.t. p x + q y <= budget
        // => x* = sqrt(a/p) * budget / (sqrt(a p) + sqrt(b q)).
        let mut prob = GpProblem::new(2);
        let mut obj = mono(a, &[(0, -1.0)]);
        obj.add(&mono(b, &[(1, -1.0)]));
        prob.set_objective(obj).unwrap();
        let mut c = mono(p, &[(0, 1.0)]);
        c.add(&mono(q, &[(1, 1.0)]));
        prob.add_constraint_le(c, budget).unwrap();

        let start = [0.25 * budget / p.max(q) / 2.0, 0.25 * budget / p.max(q) / 2.0];
        let sol = solve_with_start(&prob, &start, &SolverOptions::default()).unwrap();

        let k = ((a * p).sqrt() + (b * q).sqrt()) / budget;
        let x_star = (a / p).sqrt() / k;
        let y_star = (b / q).sqrt() / k;
        prop_assert!((sol.x[0] - x_star).abs() < 2e-4 * x_star,
            "x {} vs {x_star}", sol.x[0]);
        prop_assert!((sol.x[1] - y_star).abs() < 2e-4 * y_star,
            "y {} vs {y_star}", sol.x[1]);
    }

    /// Every returned solution is feasible and KKT-optimal.
    #[test]
    fn solutions_are_feasible_and_kkt_optimal(
        weights in proptest::collection::vec(0.1f64..10.0, 2..5),
        bound in 1.0f64..50.0,
    ) {
        // min sum w_i / x_i s.t. sum x_i <= bound (+ per-var caps).
        let n = weights.len();
        let mut prob = GpProblem::new(n);
        let mut obj = Posynomial::zero();
        let mut con = Posynomial::zero();
        for (i, &w) in weights.iter().enumerate() {
            obj.add(&mono(w, &[(i, -1.0)]));
            con.add(&mono(1.0, &[(i, 1.0)]));
        }
        prob.set_objective(obj).unwrap();
        prob.add_constraint_le(con, bound).unwrap();
        let start = vec![0.5 * bound / n as f64; n];
        let sol = solve_with_start(&prob, &start, &SolverOptions::default()).unwrap();
        prop_assert!(prob.max_violation(&sol.x) <= 1e-7);
        let report = kkt_report(&prob, &sol.x);
        prop_assert!(report.is_optimal(1e-3),
            "stationarity {} complementarity {} feasibility {}",
            report.stationarity, report.complementarity, report.feasibility);
    }

    /// Objective monotonicity: loosening the budget can only improve the
    /// optimum (a sanity property linking problem and solver).
    #[test]
    fn looser_budgets_do_not_hurt(
        a in 0.1f64..5.0,
        bound in 1.0f64..20.0,
        factor in 1.1f64..4.0,
    ) {
        let build = |budget: f64| {
            let mut prob = GpProblem::new(2);
            let mut obj = mono(a, &[(0, -1.0)]);
            obj.add(&mono(1.0, &[(1, -1.0)]));
            prob.set_objective(obj).unwrap();
            let mut c = mono(1.0, &[(0, 1.0)]);
            c.add(&mono(1.0, &[(1, 1.0)]));
            prob.add_constraint_le(c, budget).unwrap();
            prob
        };
        let opts = SolverOptions::default();
        let tight = solve_with_start(&build(bound), &[bound / 4.0, bound / 4.0], &opts)
            .unwrap();
        let loose_bound = bound * factor;
        let loose = solve_with_start(
            &build(loose_bound),
            &[loose_bound / 4.0, loose_bound / 4.0],
            &opts,
        )
        .unwrap();
        prop_assert!(loose.objective <= tight.objective * (1.0 + 1e-6));
    }

    /// Warm-started solves from a drifted previous optimum agree with a
    /// cold solve of the same program and always return a feasible point,
    /// whether the minimal blend sufficed (hit) or the drift forced a
    /// deeper shrink toward the interior point (repair).
    #[test]
    fn warm_solve_agrees_with_cold_and_stays_feasible(
        a in 0.2f64..8.0,
        b in 0.2f64..8.0,
        c1 in 1.0f64..10.0,
        c2 in 2.0f64..12.0,
        fa in 0.7f64..1.4,
        fb in 0.7f64..1.4,
        f1 in 0.7f64..1.4,
        f2 in 0.7f64..1.4,
    ) {
        use pq_gp::{CompiledGp, SolveWorkspace};
        // min a/x + b/y s.t. x y <= c1, x + y <= c2; the factors model
        // data drift between consecutive DAB recomputations (up to
        // +/-40%, far beyond what one validity window permits, so the
        // repair rungs get exercised too).
        let build = |a: f64, b: f64, c1: f64, c2: f64| {
            let mut prob = GpProblem::new(2);
            let mut obj = mono(a, &[(0, -1.0)]);
            obj.add(&mono(b, &[(1, -1.0)]));
            prob.set_objective(obj).unwrap();
            prob.add_constraint_le(mono(1.0, &[(0, 1.0), (1, 1.0)]), c1).unwrap();
            let mut c = mono(1.0, &[(0, 1.0)]);
            c.add(&mono(1.0, &[(1, 1.0)]));
            prob.add_constraint_le(c, c2).unwrap();
            prob
        };
        // Scaled-down diagonal point: strictly inside both constraints.
        let interior = |c1: f64, c2: f64| {
            let s = 0.4 * c1.sqrt().min(c2 / 2.0);
            [s, s]
        };
        let opts = SolverOptions::default();
        let prev = solve_with_start(&build(a, b, c1, c2), &interior(c1, c2), &opts).unwrap();

        let (dc1, dc2) = (c1 * f1, c2 * f2);
        let drifted = build(a * fa, b * fb, dc1, dc2);
        let cold = solve_with_start(&drifted, &interior(dc1, dc2), &opts).unwrap();

        let compiled = CompiledGp::compile(&drifted).unwrap();
        let mut ws = SolveWorkspace::new();
        let (warm, kind) = compiled
            .solve_warm(&prev.x, &interior(dc1, dc2), &opts, &mut ws)
            .unwrap();
        prop_assert!(drifted.max_violation(&warm.x) <= 0.0,
            "{kind:?} warm solution violates a constraint by {}",
            drifted.max_violation(&warm.x));
        prop_assert!((warm.objective - cold.objective).abs() <= 1e-5 * cold.objective,
            "{kind:?} warm {} vs cold {}", warm.objective, cold.objective);
    }

    /// The log transform preserves evaluation: posynomial value at x equals
    /// exp of the transformed value at ln x.
    #[test]
    fn log_transform_round_trips(
        coefs in proptest::collection::vec(0.01f64..100.0, 1..5),
        x in proptest::collection::vec(0.05f64..20.0, 3),
    ) {
        use pq_gp::logsumexp::LogPosynomial;
        let mut p = Posynomial::zero();
        for (k, &c) in coefs.iter().enumerate() {
            let v = k % 3;
            let e = 1.0 + (k as f64) * 0.5 - 1.5; // mixed exponents
            p.push(Monomial::new(c, [(v, e)]).unwrap());
        }
        let lp = LogPosynomial::compile(&p, 3);
        let y: Vec<f64> = x.iter().map(|&v| v.ln()).collect();
        let direct = p.eval(&x);
        let transformed = lp.value(&y).exp();
        prop_assert!((direct - transformed).abs() <= 1e-9 * direct.abs().max(1.0));
    }
}
