//! Property tests of the sparse KKT backend: agreement with the dense
//! path on random query↔item-graph-shaped programs, and bitwise
//! determinism of the sparse path under term-insertion-order
//! permutations (the canonical term order at plan-build time must make
//! the arithmetic independent of how callers assembled the posynomials).

use proptest::prelude::*;

use pq_gp::{solve_with_start, GpProblem, KktMode, Monomial, Posynomial, SolverOptions};

/// Deterministic xorshift64* so structure is generated from one seed.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Random AAO-shaped program as raw term lists: a coercive objective
/// touching every variable (wide support, like the joint AAO objective)
/// plus narrow-support constraints over random variable pairs/triples
/// (like per-item coupling constraints). Every constraint evaluates to
/// at most 0.5 at `x = 1`, so the all-ones start is strictly feasible.
fn random_terms(seed: u64, n: usize) -> (Vec<Monomial>, Vec<Vec<Monomial>>) {
    let mut rng = Rng(seed | 1);
    let mut obj = Vec::new();
    for v in 0..n {
        obj.push(Monomial::new(0.5 + rng.unit(), [(v, -1.0)]).unwrap());
        obj.push(Monomial::new(0.1 + 0.5 * rng.unit(), [(v, 1.0)]).unwrap());
    }
    let mut cons = Vec::new();
    for _ in 0..n {
        let n_terms = 1 + rng.below(3);
        let mut terms = Vec::new();
        for _ in 0..n_terms {
            let a = rng.below(n);
            let b = rng.below(n);
            let ea = [1.0, 0.5, -1.0][rng.below(3)];
            let coef = (0.1 + 0.8 * rng.unit()) * 0.5 / n_terms as f64;
            let m = if a == b {
                Monomial::new(coef, [(a, ea)]).unwrap()
            } else {
                Monomial::new(coef, [(a, ea), (b, 1.0)]).unwrap()
            };
            terms.push(m);
        }
        cons.push(terms);
    }
    (obj, cons)
}

/// Assembles the program inserting each posynomial's terms in the order
/// given by `order(k)` over term count `k` (identity or reversed).
fn assemble(n: usize, obj: &[Monomial], cons: &[Vec<Monomial>], reverse: bool) -> GpProblem {
    let build = |terms: &[Monomial]| {
        let mut p = Posynomial::zero();
        if reverse {
            for m in terms.iter().rev() {
                p.push(m.clone());
            }
        } else {
            for m in terms {
                p.push(m.clone());
            }
        }
        p
    };
    let mut prob = GpProblem::new(n);
    prob.set_objective(build(obj)).unwrap();
    for terms in cons {
        prob.add_constraint(build(terms)).unwrap();
    }
    prob
}

fn options(kkt: KktMode) -> SolverOptions {
    SolverOptions {
        kkt,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse and dense backends agree on random programs: same
    /// objective to 1e-5 relative, same point to 1e-3 relative, both
    /// feasible.
    #[test]
    fn sparse_agrees_with_dense(seed in 0u64..u64::MAX, n in 8usize..32) {
        let (obj, cons) = random_terms(seed, n);
        let prob = assemble(n, &obj, &cons, false);
        let start = vec![1.0; n];
        let dense = solve_with_start(&prob, &start, &options(KktMode::Dense)).unwrap();
        let sparse = solve_with_start(&prob, &start, &options(KktMode::Sparse)).unwrap();
        prop_assert!(prob.max_violation(&sparse.x) <= 1e-7,
            "sparse point infeasible by {}", prob.max_violation(&sparse.x));
        prop_assert!(
            (dense.objective - sparse.objective).abs() <= 1e-5 * dense.objective.abs().max(1e-12),
            "objective: dense {} vs sparse {}", dense.objective, sparse.objective);
        for (a, b) in dense.x.iter().zip(&sparse.x) {
            prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0),
                "x: dense {a} vs sparse {b}");
        }
    }

    /// The sparse path is *bitwise* deterministic under permutation of
    /// the term insertion order: the canonical term order inside the
    /// plan makes every softmax and scatter run in the same sequence
    /// regardless of how the posynomials were assembled.
    #[test]
    fn sparse_solution_is_insertion_order_invariant(seed in 0u64..u64::MAX, n in 8usize..24) {
        let (obj, cons) = random_terms(seed, n);
        let forward = assemble(n, &obj, &cons, false);
        let reversed = assemble(n, &obj, &cons, true);
        let start = vec![1.0; n];
        let a = solve_with_start(&forward, &start, &options(KktMode::Sparse)).unwrap();
        let b = solve_with_start(&reversed, &start, &options(KktMode::Sparse)).unwrap();
        for (va, vb) in a.x.iter().zip(&b.x) {
            prop_assert_eq!(va.to_bits(), vb.to_bits(),
                "sparse path must be insertion-order invariant: {} vs {}", va, vb);
        }
    }
}
