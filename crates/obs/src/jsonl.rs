//! JSONL encoding of events: one event per line, hand-rolled so the
//! crate stays dependency-free.
//!
//! The wire shape is
//!
//! ```json
//! {"ts_ns":1234,"target":"gp.solve","kind":"timing","fields":{"dur_ns":567,"iters":4}}
//! ```
//!
//! Encoding choices that make the format round-trip exactly:
//!
//! * `U64` values serialize as bare digit runs; any number containing
//!   `.`, `e`, or `-` parses back as `F64`. Integral finite floats are
//!   forced to carry a `.0` so they stay floats.
//! * `NaN` serializes as `null`; infinities serialize as `1e999` /
//!   `-1e999`, which are valid JSON numbers that overflow back to the
//!   infinities on parse.
//! * Strings escape `"`, `\`, and control characters (`\uXXXX`); the
//!   parser also accepts surrogate pairs.

use crate::event::{Event, EventKind, Value};
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn to_json(event: &Event) -> String {
    let mut out = String::with_capacity(64 + 24 * event.fields.len());
    out.push_str("{\"ts_ns\":");
    let _ = write!(out, "{}", event.ts_ns);
    out.push_str(",\"target\":");
    push_json_string(&mut out, &event.target);
    out.push_str(",\"kind\":\"");
    out.push_str(event.kind.as_str());
    out.push_str("\",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, key);
        out.push(':');
        push_json_value(&mut out, value);
    }
    out.push_str("}}");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => push_json_f64(out, *v),
        Value::Str(v) => push_json_string(out, v),
    }
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("null");
    } else if v == f64::INFINITY {
        out.push_str("1e999");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        // Keep integral floats recognizably float-typed.
        let _ = write!(out, "{v:.1}");
    } else {
        // Rust's Display prints the shortest string that parses back
        // to the same f64.
        let _ = write!(out, "{v}");
    }
}

/// A failure while parsing a JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the line where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid event JSON at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one line produced by [`to_json`] back into an [`Event`].
pub fn parse(line: &str) -> Result<Event, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let event = p.event()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after event object"));
    }
    Ok(event)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn event(&mut self) -> Result<Event, JsonError> {
        self.expect(b'{')?;
        let mut ts_ns = None;
        let mut target = None;
        let mut kind = None;
        let mut fields = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "ts_ns" => match self.scalar()? {
                    Value::U64(v) => ts_ns = Some(v),
                    _ => return Err(self.err("ts_ns must be an unsigned integer")),
                },
                "target" => match self.scalar()? {
                    Value::Str(s) => target = Some(s),
                    _ => return Err(self.err("target must be a string")),
                },
                "kind" => match self.scalar()? {
                    Value::Str(s) => {
                        kind = Some(
                            EventKind::from_name(&s)
                                .ok_or_else(|| self.err("unknown event kind"))?,
                        )
                    }
                    _ => return Err(self.err("kind must be a string")),
                },
                "fields" => fields = Some(self.fields()?),
                _ => return Err(self.err("unknown event key")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
        Ok(Event {
            ts_ns: ts_ns.ok_or_else(|| self.err("missing ts_ns"))?,
            target: target.ok_or_else(|| self.err("missing target"))?,
            kind: kind.ok_or_else(|| self.err("missing kind"))?,
            fields: fields.ok_or_else(|| self.err("missing fields"))?,
        })
    }

    fn fields(&mut self) -> Result<Vec<(crate::event::Str, Value)>, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.scalar()?;
            fields.push((crate::event::Str::Owned(key), value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(self.err("expected ',' or '}' in fields")),
            }
        }
    }

    /// A scalar JSON value: string, number, bool, or null.
    fn scalar(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(crate::event::Str::Owned(self.string()?))),
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::F64(f64::NAN))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a scalar value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        if token.bytes().all(|b| b.is_ascii_digit()) {
            // Bare digit runs are unsigned integers; everything else
            // (sign, '.', exponent) is a float.
            if let Ok(v) = token.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        let v: f64 = token.parse().map_err(|_| self.err("malformed number"))?;
        Ok(Value::F64(v))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.literal("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("non-utf8 escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

/// Writes events as JSON lines to a file, buffered and thread-safe.
pub struct JsonlWriter {
    inner: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlWriter {
    /// Creates (truncating) `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlWriter {
            inner: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens `path` for appending, creating it if absent.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlWriter {
            inner: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Serializes and writes one event followed by a newline.
    pub fn write(&self, event: &Event) -> std::io::Result<()> {
        let line = to_json(event);
        let mut w = self.inner.lock().unwrap();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")
    }
}

impl crate::subscriber::Subscriber for JsonlWriter {
    fn on_event(&self, event: &Event) {
        // Telemetry must not take down the host process; a full disk
        // degrades to dropped events.
        let _ = self.write(event);
    }

    fn flush(&self) {
        let _ = self.inner.lock().unwrap().flush();
    }
}

// BufWriter flushes on drop, so traces survive normal process exit
// even without an explicit flush call.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Value};

    fn round_trip(event: &Event) -> Event {
        let line = to_json(event);
        assert!(!line.contains('\n'), "one event must be one line: {line}");
        parse(&line).unwrap_or_else(|e| panic!("parse failed for {line}: {e}"))
    }

    #[test]
    fn round_trips_every_value_type() {
        let event = Event::new("sim.refresh", EventKind::Point)
            .with("item", 42u64)
            .with("value", 3.5)
            .with("notify", true)
            .with("silenced", false)
            .with("strategy", "dual-dab");
        assert_eq!(round_trip(&event), event);
    }

    #[test]
    fn round_trips_float_edge_cases() {
        let event = Event::new("edge", EventKind::Point)
            .with("nan", f64::NAN)
            .with("inf", f64::INFINITY)
            .with("ninf", f64::NEG_INFINITY)
            .with("integral", 5.0)
            .with("neg_integral", -3.0)
            .with("tiny", 1e-300)
            .with("huge", 1.7976931348623157e308)
            .with("zero", 0.0)
            .with("neg_zero", -0.0)
            .with("pi", std::f64::consts::PI);
        let back = round_trip(&event);
        assert_eq!(back, event, "float fields must round-trip bit-for-bit");
        // Integral floats must stay floats, not collapse to integers.
        assert!(matches!(back.field("integral"), Some(Value::F64(v)) if *v == 5.0));
    }

    #[test]
    fn round_trips_awkward_strings() {
        let event = Event::new("strings", EventKind::Count)
            .with("quote", "say \"hi\"".to_string())
            .with("backslash", "a\\b".to_string())
            .with("newline", "line1\nline2".to_string())
            .with("tab_cr", "a\tb\rc".to_string())
            .with("control", "\u{1}\u{1f}".to_string())
            .with("unicode", "λ → ∞ 🚀".to_string())
            .with("empty", "".to_string());
        assert_eq!(round_trip(&event), event);
    }

    #[test]
    fn integer_and_float_types_stay_distinct() {
        let event = Event::new("types", EventKind::Point)
            .with("count", 7u64)
            .with("ratio", 7.0)
            .with("big", u64::MAX);
        let back = round_trip(&event);
        assert!(matches!(back.field("count"), Some(Value::U64(7))));
        assert!(matches!(back.field("ratio"), Some(Value::F64(v)) if *v == 7.0));
        assert!(matches!(back.field("big"), Some(Value::U64(u64::MAX))));
    }

    #[test]
    fn parser_accepts_surrogate_pairs() {
        let line = r#"{"ts_ns":1,"target":"t","kind":"point","fields":{"emoji":"😀"}}"#;
        let event = parse(line).unwrap();
        assert_eq!(
            event.field("emoji"),
            Some(&Value::Str("\u{1f600}".to_string().into()))
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"ts_ns":-5,"target":"t","kind":"point","fields":{}}"#,
            r#"{"ts_ns":1,"target":"t","kind":"bogus","fields":{}}"#,
            r#"{"ts_ns":1,"target":"t","kind":"point","fields":{}}trailing"#,
            r#"{"ts_ns":1,"target":"t","kind":"point"}"#,
        ] {
            assert!(parse(bad).is_err(), "expected parse failure for: {bad}");
        }
    }

    #[test]
    fn writer_produces_parseable_lines() {
        let dir = std::env::temp_dir().join("pq-obs-test-writer");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let writer = JsonlWriter::create(&path).unwrap();
        for n in 0..4u64 {
            writer
                .write(&Event::new("w", EventKind::Count).with("n", n))
                .unwrap();
        }
        crate::subscriber::Subscriber::flush(&writer);
        let contents = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = contents.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].field("n"), Some(&Value::U64(3)));
        std::fs::remove_file(&path).ok();
    }
}
