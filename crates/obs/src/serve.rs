//! A zero-dependency live metrics endpoint.
//!
//! [`spawn`] binds a std [`TcpListener`] and serves, on a background
//! thread, two read-only endpoints over an [`Obs`] handle's registry:
//!
//! * `GET /metrics` — Prometheus text format ([`crate::text::render_prometheus`]);
//! * `GET /snapshot` — the same snapshot as JSON ([`crate::text::render_json`]).
//!
//! Scrapes take a fresh [`crate::Snapshot`] per request; the instrumented
//! process pays nothing between requests. Connections are handled
//! sequentially — a scrape endpoint serving one Prometheus poller every
//! few seconds needs no concurrency.
//!
//! ```no_run
//! let obs = pq_obs::Obs::null();
//! let server = pq_obs::serve::spawn(obs.clone(), "127.0.0.1:0").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! server.shutdown(); // or server.detach() to serve until process exit
//! ```

use crate::text;
use crate::Obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running metrics server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the listener; call
/// [`MetricsServer::detach`] to let it serve for the process lifetime.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — with port 0 requested, the actual port.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Lets the server run detached until the process exits. The thread
    /// and listener are intentionally leaked.
    pub fn detach(mut self) {
        self.handle.take();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
/// port) and serves `obs`'s metrics on a background thread.
///
/// # Errors
/// Propagates the bind failure — a caller asking for a live endpoint
/// must find out it did not get one.
pub fn spawn(obs: Obs, addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("pq-obs-metrics".into())
        .spawn(move || serve_loop(listener, obs, stop_flag))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn serve_loop(listener: TcpListener, obs: Obs, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stalled client must not wedge the exporter thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = handle_connection(stream, &obs);
    }
}

fn handle_connection(stream: TcpStream, obs: &Obs) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; requests are header-only GETs.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, obs);
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(method: &str, path: &str, obs: &Obs) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    // Ignore any query string — scrapers sometimes append cache busters.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            text::render_prometheus(&obs.snapshot()),
        ),
        "/snapshot" => (
            "200 OK",
            "application/json",
            text::render_json(&obs.snapshot()),
        ),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "pq-obs exporter: GET /metrics (Prometheus text) or /snapshot (JSON)\n".into(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics or /snapshot\n".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_snapshot_then_shuts_down() {
        let obs = Obs::null();
        obs.counter("sim.refresh").add(3);
        obs.labeled_counter("dab.recompute", "query", "2").add(9);
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("pq_sim_refresh_total 3"));
        assert!(body.contains("pq_dab_recompute_total{query=\"2\"} 9"));

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"sim.refresh\":3"));

        let (head, _) = get(addr, "/bogus");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
    }

    #[test]
    fn scrapes_observe_live_counter_updates() {
        let obs = Obs::null();
        let counter = obs.counter("sim.refresh");
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("pq_sim_refresh_total 0"));
        counter.add(5);
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("pq_sim_refresh_total 5"));
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = spawn(Obs::null(), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }
}
