//! A zero-dependency live metrics endpoint.
//!
//! [`spawn`] binds a std [`TcpListener`] and serves, on a background
//! thread, two read-only endpoints over an [`Obs`] handle's registry:
//!
//! * `GET /metrics` — Prometheus text format ([`crate::text::render_prometheus`]),
//!   plus windowed `*_rate_*` series when a [`crate::WindowPlane`] is installed;
//! * `GET /snapshot` — the same snapshot as JSON ([`crate::text::render_json`]);
//! * `GET /health` — one-line JSON health verdict from the installed
//!   [`crate::SloEngine`] and [`crate::Watchdog`] (always `ok` when
//!   neither is installed);
//! * `GET /alerts` — active and recently cleared SLO alerts as JSON.
//!
//! Scrapes take a fresh [`crate::Snapshot`] per request; the instrumented
//! process pays nothing between requests. Connections are handled
//! sequentially — a scrape endpoint serving one Prometheus poller every
//! few seconds needs no concurrency.
//!
//! ```no_run
//! let obs = pq_obs::Obs::null();
//! let server = pq_obs::serve::spawn(obs.clone(), "127.0.0.1:0").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! server.shutdown(); // or server.detach() to serve until process exit
//! ```

use crate::text;
use crate::Obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running metrics server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the listener; call
/// [`MetricsServer::detach`] to let it serve for the process lifetime.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — with port 0 requested, the actual port.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Lets the server run detached until the process exits. The thread
    /// and listener are intentionally leaked.
    pub fn detach(mut self) {
        self.handle.take();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
/// port) and serves `obs`'s metrics on a background thread.
///
/// # Errors
/// Propagates the bind failure — a caller asking for a live endpoint
/// must find out it did not get one.
pub fn spawn(obs: Obs, addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("pq-obs-metrics".into())
        .spawn(move || serve_loop(listener, obs, stop_flag))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn serve_loop(listener: TcpListener, obs: Obs, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stalled client must not wedge the exporter thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = handle_connection(stream, &obs);
    }
}

fn handle_connection(stream: TcpStream, obs: &Obs) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; requests are header-only GETs.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, obs);
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(method: &str, path: &str, obs: &Obs) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    // Ignore any query string — scrapers sometimes append cache busters.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => {
            let mut body = text::render_prometheus(&obs.snapshot());
            if let Some(plane) = obs.window_plane() {
                body.push_str(&text::render_windows(&plane.snapshot()));
            }
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/snapshot" => (
            "200 OK",
            "application/json",
            text::render_json(&obs.snapshot()),
        ),
        "/health" => ("200 OK", "application/json", render_health(obs)),
        "/alerts" => ("200 OK", "application/json", render_alerts(obs)),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "pq-obs exporter: GET /metrics (Prometheus text), /snapshot (JSON), /health, or /alerts\n"
                .into(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /snapshot, /health, or /alerts\n".into(),
        ),
    }
}

/// The `/health` payload. Health comes from the SLO engine's active
/// alerts OR a stalled watchdog — either one degrades the verdict. A
/// stall observed here also fires the flight-recorder dump, exactly
/// once per stall episode: the scrape is the detection point.
fn render_health(obs: &Obs) -> String {
    use crate::slo::{Health, WatchdogStatus};
    let (mut status, active, budget) = match obs.slo_engine() {
        Some(slo) => {
            let (health, active) = slo.health();
            (health, active, slo.error_budget_remaining())
        }
        None => (Health::Ok, 0, 1.0),
    };
    let watchdog = match obs.watchdog() {
        Some(watchdog) => {
            let wd_status = watchdog.status();
            if wd_status == WatchdogStatus::Stalled {
                status = Health::Degraded;
                if watchdog.should_report_stall() {
                    if let Some(recorder) = obs.recorder() {
                        let _ = recorder.trigger("watchdog_stall");
                    }
                }
            }
            wd_status.as_str()
        }
        None => "uninstalled",
    };
    // Labeled watchdogs (one per shard thread): any stall degrades the
    // verdict and is attributed to its label, both in the JSON body and
    // in the flight-recorder dump reason.
    let mut labeled = String::new();
    for (label, dog) in obs.watchdogs() {
        let dog_status = dog.status();
        if dog_status == WatchdogStatus::Stalled {
            status = Health::Degraded;
            if dog.should_report_stall() {
                if let Some(recorder) = obs.recorder() {
                    let _ = recorder.trigger(&format!("watchdog_stall:{label}"));
                }
            }
        }
        if !labeled.is_empty() {
            labeled.push(',');
        }
        let _ = std::fmt::Write::write_fmt(
            &mut labeled,
            format_args!(
                "{}:{}",
                text::json_string(&label),
                text::json_string(dog_status.as_str())
            ),
        );
    }
    let watchdogs_field = if labeled.is_empty() {
        String::new()
    } else {
        format!(",\"watchdogs\":{{{labeled}}}")
    };
    let dumps = obs.recorder().map_or(0, crate::Recorder::dump_count);
    format!(
        "{{\"status\":{},\"active_alerts\":{},\"error_budget_remaining\":{},\"watchdog\":{}{},\"recorder_dumps\":{}}}\n",
        text::json_string(status.as_str()),
        active,
        text::json_f64(budget),
        text::json_string(watchdog),
        watchdogs_field,
        dumps,
    )
}

/// The `/alerts` payload: every remembered alert, active first-class.
fn render_alerts(obs: &Obs) -> String {
    let alerts = obs.slo_engine().map(|slo| slo.alerts()).unwrap_or_default();
    let active = alerts.iter().filter(|a| a.is_active()).count();
    let mut body = format!("{{\"active\":{active},\"alerts\":[");
    for (i, alert) in alerts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let cleared = alert
            .cleared_at
            .map_or_else(|| "null".to_string(), |t| t.to_string());
        let _ = std::fmt::Write::write_fmt(
            &mut body,
            format_args!(
                "{{\"id\":{},\"kind\":{},\"raised_at\":{},\"cleared_at\":{},\"burn_short\":{},\"burn_long\":{},\"message\":{}}}",
                alert.id,
                text::json_string(alert.kind.as_str()),
                alert.raised_at,
                cleared,
                text::json_f64(alert.burn_short),
                text::json_f64(alert.burn_long),
                text::json_string(&alert.message),
            ),
        );
    }
    body.push_str("]}\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_snapshot_then_shuts_down() {
        let obs = Obs::null();
        obs.counter("sim.refresh").add(3);
        obs.labeled_counter("dab.recompute", "query", "2").add(9);
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("pq_sim_refresh_total 3"));
        assert!(body.contains("pq_dab_recompute_total{query=\"2\"} 9"));

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"sim.refresh\":3"));

        let (head, body) = get(addr, "/bogus");
        assert!(head.starts_with("HTTP/1.1 404"));
        assert_eq!(
            body,
            "not found; try /metrics, /snapshot, /health, or /alerts\n"
        );

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("/health"), "index must advertise /health");

        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
    }

    #[test]
    fn scrapes_observe_live_counter_updates() {
        let obs = Obs::null();
        let counter = obs.counter("sim.refresh");
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("pq_sim_refresh_total 0"));
        counter.add(5);
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("pq_sim_refresh_total 5"));
        server.shutdown();
    }

    #[test]
    fn health_defaults_to_ok_with_nothing_installed() {
        let server = spawn(Obs::null(), "127.0.0.1:0").unwrap();
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"));
        assert_eq!(
            body,
            "{\"status\":\"ok\",\"active_alerts\":0,\"error_budget_remaining\":1.0,\
             \"watchdog\":\"uninstalled\",\"recorder_dumps\":0}\n"
        );
        let (_, body) = get(server.addr(), "/alerts");
        assert_eq!(body, "{\"active\":0,\"alerts\":[]}\n");
        server.shutdown();
    }

    #[test]
    fn health_and_alerts_reflect_the_slo_engine() {
        let obs = Obs::null();
        let slo = Arc::new(crate::SloEngine::new(crate::SloConfig::default(), &obs));
        assert!(obs.install_slo_engine(slo.clone()));
        // One audit divergence: the zero-budget objective pages at once.
        let raised = slo.observe(7, 10, 0, 1);
        assert_eq!(raised.len(), 1);
        let server = spawn(obs, "127.0.0.1:0").unwrap();

        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"status\":\"degraded\""), "body: {body}");
        assert!(body.contains("\"active_alerts\":1"));

        let (_, body) = get(server.addr(), "/alerts");
        assert!(body.contains("\"active\":1"));
        assert!(body.contains("\"kind\":\"audit_divergence\""));
        assert!(body.contains("\"raised_at\":7"));
        assert!(body.contains("\"cleared_at\":null"));
        server.shutdown();
    }

    #[test]
    fn metrics_appends_windowed_series_when_a_plane_is_installed() {
        let obs = Obs::null();
        obs.counter("sim.refresh").add(50);
        let plane = Arc::new(crate::WindowPlane::new());
        let id = plane.track("sim.refresh");
        plane.advance(10);
        plane.record(id, 50);
        assert!(obs.install_window_plane(plane));
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let (_, body) = get(server.addr(), "/metrics");
        assert!(
            body.contains("pq_sim_refresh_total 50"),
            "plain series stays"
        );
        assert!(
            body.contains("pq_sim_refresh_rate_5s 10\n"),
            "windowed rate missing: {body}"
        );
        server.shutdown();
    }

    #[test]
    fn stalled_watchdog_degrades_health_and_dumps_once() {
        let dir = std::env::temp_dir().join(format!(
            "pq-obs-serve-wd-{}-{}",
            std::process::id(),
            crate::now_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::null();
        let watchdog = Arc::new(crate::Watchdog::new(Duration::ZERO));
        watchdog.beat();
        assert!(obs.install_watchdog(watchdog));
        let recorder = crate::Recorder::new(crate::RecorderConfig::new(dir.join("dump.jsonl")));
        assert!(obs.install_recorder(recorder));
        std::thread::sleep(Duration::from_millis(2));
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"status\":\"degraded\""), "body: {body}");
        assert!(body.contains("\"watchdog\":\"stalled\""));
        assert!(body.contains("\"recorder_dumps\":1"), "body: {body}");
        // A second scrape must not dump again for the same episode.
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"recorder_dumps\":1"), "body: {body}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labeled_watchdogs_attribute_stalls_to_a_shard() {
        let dir = std::env::temp_dir().join(format!(
            "pq-obs-serve-shardwd-{}-{}",
            std::process::id(),
            crate::now_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::null();
        let healthy = Arc::new(crate::Watchdog::new(Duration::from_secs(3600)));
        healthy.beat();
        let stalled = Arc::new(crate::Watchdog::new(Duration::ZERO));
        stalled.beat();
        obs.register_watchdog("shard0", healthy);
        obs.register_watchdog("shard1", stalled);
        let recorder = crate::Recorder::new(crate::RecorderConfig::new(dir.join("dump.jsonl")));
        assert!(obs.install_recorder(recorder));
        std::thread::sleep(Duration::from_millis(2));
        let server = spawn(obs, "127.0.0.1:0").unwrap();
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"status\":\"degraded\""), "body: {body}");
        assert!(body.contains("\"shard0\":\"ok\""), "body: {body}");
        assert!(body.contains("\"shard1\":\"stalled\""), "body: {body}");
        assert!(body.contains("\"recorder_dumps\":1"), "body: {body}");
        server.shutdown();
        // The dump reason names the stalled shard.
        let dump = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| std::fs::read_to_string(e.unwrap().path()).unwrap())
            .collect::<String>();
        assert!(
            dump.contains("watchdog_stall:shard1"),
            "dump must attribute the stall: {dump}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = spawn(Obs::null(), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }
}
