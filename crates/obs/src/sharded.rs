//! Thread-sharded metric collectors: lock-free hot-path recording.
//!
//! The handle-based path in [`crate::registry`] is already lock-free
//! *per increment*, but every handle shares one cache line per metric —
//! with a coordinator on every core (ROADMAP item 1) the `lock xadd`
//! traffic on hot counters serializes the fleet. This module shards the
//! storage instead of the lock: each thread obtains a
//! [`LocalCollector`] holding a private cell of atomics, metric names
//! are interned **once at registration** into fixed slots
//! ([`CounterId`] / [`HistogramId`]), and the hot path is a relaxed
//! add into memory no other thread writes. Snapshots merge every live
//! cell plus a retired accumulator back into the ordinary
//! [`crate::Snapshot`] maps, so `/metrics`, `/snapshot`, and JSONL
//! consumers cannot tell sharded and handle-based metrics apart.
//!
//! Guarantees, enforced by the stress tests:
//!
//! * **No lost or double-counted increments.** A dropping collector
//!   folds its cell into the retired accumulator under the same lock a
//!   snapshot takes, so every increment lands in exactly one snapshot
//!   term.
//! * **Monotone totals.** Each cell slot only grows, and retirement
//!   moves a cell's value atomically (with respect to snapshots) from
//!   the live sum into the retired sum — successive snapshots of a
//!   counter never decrease.
//!
//! Slot capacity is fixed ([`COUNTER_SLOTS`] / [`HISTOGRAM_SLOTS`]);
//! registrations past capacity all share the reserved
//! [`SHARD_OVERFLOW`] slot, mirroring the labeled-counter `_other`
//! convention, so a runaway registration loop degrades attribution but
//! never drops counts or balloons memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::{HistAcc, Histogram};

/// Fixed number of sharded counter slots per registry (slot 0 is the
/// [`SHARD_OVERFLOW`] slot).
pub const COUNTER_SLOTS: usize = 256;

/// Fixed number of sharded histogram slots per registry (slot 0 is the
/// [`SHARD_OVERFLOW`] slot).
pub const HISTOGRAM_SLOTS: usize = 64;

/// Metric name under which registrations past slot capacity accumulate.
pub const SHARD_OVERFLOW: &str = "obs.shard_overflow";

/// A fixed counter slot, resolved once by [`crate::Obs::counter_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(pub(crate) u16);

/// A fixed histogram slot, resolved once by
/// [`crate::Obs::histogram_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(pub(crate) u16);

/// One thread's private metric storage.
struct Cell {
    counters: Vec<AtomicU64>,
    histograms: Vec<Histogram>,
}

impl Cell {
    fn new() -> Self {
        Cell {
            counters: (0..COUNTER_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            histograms: (0..HISTOGRAM_SLOTS).map(|_| Histogram::default()).collect(),
        }
    }
}

/// Everything a snapshot must see atomically: the live cells and the
/// totals folded out of already-dropped collectors.
struct Merged {
    cells: Vec<Arc<Cell>>,
    retired_counters: Vec<u64>,
    retired_histograms: Vec<HistAcc>,
}

/// Shared sharded state owned by a [`crate::Registry`].
pub(crate) struct ShardSet {
    /// Slot assignment, append-only; locked at registration and
    /// snapshot time only.
    counter_names: Mutex<Vec<String>>,
    histogram_names: Mutex<Vec<String>>,
    merged: Mutex<Merged>,
}

impl Default for ShardSet {
    fn default() -> Self {
        ShardSet {
            counter_names: Mutex::new(vec![SHARD_OVERFLOW.to_string()]),
            histogram_names: Mutex::new(vec![SHARD_OVERFLOW.to_string()]),
            merged: Mutex::new(Merged {
                cells: Vec::new(),
                retired_counters: vec![0; COUNTER_SLOTS],
                retired_histograms: (0..HISTOGRAM_SLOTS).map(|_| HistAcc::default()).collect(),
            }),
        }
    }
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("counters", &self.counter_names.lock().unwrap().len())
            .field("histograms", &self.histogram_names.lock().unwrap().len())
            .field("cells", &self.merged.lock().unwrap().cells.len())
            .finish()
    }
}

fn intern(names: &Mutex<Vec<String>>, capacity: usize, name: &str) -> u16 {
    let mut names = names.lock().unwrap();
    if let Some(i) = names.iter().position(|n| n == name) {
        return i as u16;
    }
    if names.len() >= capacity {
        return 0; // the SHARD_OVERFLOW slot
    }
    names.push(name.to_string());
    (names.len() - 1) as u16
}

impl ShardSet {
    pub(crate) fn counter_id(&self, name: &str) -> CounterId {
        CounterId(intern(&self.counter_names, COUNTER_SLOTS, name))
    }

    pub(crate) fn histogram_id(&self, name: &str) -> HistogramId {
        HistogramId(intern(&self.histogram_names, HISTOGRAM_SLOTS, name))
    }

    pub(crate) fn collector(self: &Arc<Self>) -> LocalCollector {
        let cell = Arc::new(Cell::new());
        self.merged.lock().unwrap().cells.push(cell.clone());
        LocalCollector {
            cell,
            shards: self.clone(),
        }
    }

    /// Merges every live cell and the retired accumulator into the
    /// snapshot maps. Counter totals add onto existing entries of the
    /// same name; histogram data folds into an existing handle-based
    /// histogram's accumulation when names collide.
    pub(crate) fn merge_into(
        &self,
        counters: &mut BTreeMap<String, u64>,
        histograms: &mut BTreeMap<String, HistAcc>,
    ) {
        let counter_names = self.counter_names.lock().unwrap().clone();
        let histogram_names = self.histogram_names.lock().unwrap().clone();
        let merged = self.merged.lock().unwrap();
        for (slot, name) in counter_names.iter().enumerate() {
            let mut total = merged.retired_counters[slot];
            for cell in &merged.cells {
                total += cell.counters[slot].load(Ordering::Relaxed);
            }
            // The overflow slot only appears once something landed in it.
            if slot == 0 && total == 0 {
                continue;
            }
            *counters.entry(name.clone()).or_insert(0) += total;
        }
        for (slot, name) in histogram_names.iter().enumerate() {
            let mut acc = merged.retired_histograms[slot].clone();
            for cell in &merged.cells {
                acc.absorb(&cell.histograms[slot]);
            }
            if slot == 0 && acc.is_empty() {
                continue;
            }
            match histograms.get_mut(name) {
                Some(existing) => existing.merge(&acc),
                None => {
                    histograms.insert(name.clone(), acc);
                }
            }
        }
    }

    fn retire(&self, cell: &Arc<Cell>) {
        let mut merged = self.merged.lock().unwrap();
        // Fold while still holding the lock: a snapshot sees the cell
        // either live or retired, never both and never neither.
        for (slot, c) in cell.counters.iter().enumerate() {
            merged.retired_counters[slot] += c.load(Ordering::Relaxed);
        }
        for (slot, h) in cell.histograms.iter().enumerate() {
            merged.retired_histograms[slot].absorb(h);
        }
        merged.cells.retain(|other| !Arc::ptr_eq(other, cell));
    }
}

/// A thread-private metric cell: relaxed atomic writes into storage no
/// other thread touches, merged into snapshots on demand and folded
/// into the registry's retired accumulator on drop.
///
/// Obtain one per worker thread via [`crate::Obs::collector`] and keep
/// it for the thread's lifetime — creation and drop both take the
/// registry's shard lock.
pub struct LocalCollector {
    cell: Arc<Cell>,
    shards: Arc<ShardSet>,
}

impl std::fmt::Debug for LocalCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCollector").finish()
    }
}

impl LocalCollector {
    /// Adds one to the counter in slot `id`.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to the counter in slot `id`.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.cell.counters[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one sample into the histogram in slot `id`.
    #[inline]
    pub fn record(&self, id: HistogramId, v: u64) {
        self.cell.histograms[id.0 as usize].record(v);
    }
}

impl Drop for LocalCollector {
    fn drop(&mut self) {
        self.shards.retire(&self.cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards() -> Arc<ShardSet> {
        Arc::new(ShardSet::default())
    }

    #[test]
    fn ids_are_stable_per_name() {
        let s = shards();
        let a = s.counter_id("sim.refresh");
        let b = s.counter_id("dab.recompute");
        assert_ne!(a, b);
        assert_eq!(s.counter_id("sim.refresh"), a);
        assert_eq!(s.histogram_id("x"), s.histogram_id("x"));
    }

    #[test]
    fn collector_counts_merge_into_snapshot_maps() {
        let s = shards();
        let refresh = s.counter_id("sim.refresh");
        let solve = s.histogram_id("gp.solve_ns");
        let c = s.collector();
        c.add(refresh, 5);
        c.record(solve, 100);
        c.record(solve, 900);

        let mut counters = BTreeMap::new();
        counters.insert("sim.refresh".to_string(), 2u64); // a handle-based total
        let mut hists = BTreeMap::new();
        s.merge_into(&mut counters, &mut hists);
        assert_eq!(counters["sim.refresh"], 7);
        let h = hists["gp.solve_ns"].summary();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1000, 100, 900));
    }

    #[test]
    fn dropped_collectors_retain_their_counts() {
        let s = shards();
        let id = s.counter_id("c");
        {
            let c = s.collector();
            c.add(id, 3);
        }
        let c2 = s.collector();
        c2.add(id, 4);
        let mut counters = BTreeMap::new();
        let mut hists = BTreeMap::new();
        s.merge_into(&mut counters, &mut hists);
        assert_eq!(counters["c"], 7);
    }

    #[test]
    fn registrations_past_capacity_share_the_overflow_slot() {
        let s = shards();
        let mut overflowed = None;
        for i in 0..COUNTER_SLOTS + 5 {
            let id = s.counter_id(&format!("c{i}"));
            if id.0 == 0 {
                overflowed.get_or_insert(i);
            }
        }
        // Slot 0 is reserved, so capacity-1 names fit before overflow.
        assert_eq!(overflowed, Some(COUNTER_SLOTS - 1));
        let c = s.collector();
        c.inc(CounterId(0));
        let mut counters = BTreeMap::new();
        let mut hists = BTreeMap::new();
        s.merge_into(&mut counters, &mut hists);
        assert_eq!(counters[SHARD_OVERFLOW], 1);
    }

    #[test]
    fn empty_overflow_slot_stays_out_of_snapshots() {
        let s = shards();
        let _c = s.collector();
        let mut counters = BTreeMap::new();
        let mut hists = BTreeMap::new();
        s.merge_into(&mut counters, &mut hists);
        assert!(counters.is_empty());
        assert!(hists.is_empty());
    }
}
