//! Sliding-window telemetry: "what is happening *right now*" rates on
//! top of the registry's since-start cumulatives.
//!
//! The registry's counters answer "how many ever"; an operator watching
//! a live run needs "how many per second over the last minute". This
//! module provides ring-bucketed sliding windows over an explicit
//! **caller-driven clock** — the simulator advances it once per tick,
//! so windowed values are deterministic on a fixed seed and tests never
//! sleep. One clock unit is one simulated second (one tick).
//!
//! * [`WindowedCounter`] — event counts over the last 5 s / 1 m / 1 h,
//!   backed by two rings (sixty 1-unit buckets and sixty 60-unit
//!   buckets), so memory per series is constant and advancing the clock
//!   is O(elapsed buckets), not O(events).
//! * [`WindowedHistogram`] — per-bucket `(count, sum, max)` slices of a
//!   sample stream, merged over a window into rate / mean / max.
//! * [`WindowPlane`] — a named collection of both, either fed deltas
//!   directly ([`WindowPlane::record`]) or polling [`Counter`] handles
//!   for deltas on every [`WindowPlane::advance`]. Install the plane on
//!   an [`crate::Obs`] handle and `/metrics` exposes each tracked series
//!   as `pq_<name>_rate_5s` / `_rate_1m` / `_rate_1h` gauges.
//!
//! The plane is registered once per run and touched once per tick; the
//! hot recording path stays the PR 6 sharded/atomic one. That is what
//! keeps the windowed plane inside the obsbench <3% overhead budget.

use crate::registry::{lock_unpoisoned, Counter};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The exposed windows as `(length in clock units, series suffix)`.
/// The fast burn-rate pair is (5 s, 1 m); the slow pair is (1 m, 1 h).
pub const WINDOWS: [(u64, &str); 3] = [(5, "5s"), (60, "1m"), (3600, "1h")];

/// Five seconds, in clock units (simulated seconds).
pub const WINDOW_5S: u64 = 5;
/// One minute, in clock units.
pub const WINDOW_1M: u64 = 60;
/// One hour, in clock units.
pub const WINDOW_1H: u64 = 3600;

/// A ring of `len` buckets, each `width` clock units wide. Bucket `b`
/// (absolute index `t / width`) lives at slot `b % len`; advancing the
/// clock zeroes the buckets the head rolled past, so a slot is always
/// either current data or zero — never stale data from a lap ago.
#[derive(Debug, Clone)]
struct Ring {
    width: u64,
    slots: Box<[u64]>,
    /// Absolute bucket index of the current head.
    head: u64,
    /// Running sum of every live slot, so full-window sums — the ones
    /// the burn-rate math reads every tick — are O(1) instead of a
    /// 60-bucket walk.
    total: u64,
}

impl Ring {
    fn new(width: u64, len: usize) -> Self {
        Ring {
            width: width.max(1),
            slots: vec![0; len.max(1)].into_boxed_slice(),
            head: 0,
            total: 0,
        }
    }

    /// Moves the head to the bucket containing `now`, clearing the
    /// buckets in between. Time never moves backwards (`max`-guarded).
    fn advance(&mut self, now: u64) {
        let target = now / self.width;
        if target <= self.head {
            return;
        }
        let len = self.slots.len() as u64;
        let steps = (target - self.head).min(len);
        for i in 1..=steps {
            let slot = ((self.head + i) % len) as usize;
            self.total -= self.slots[slot];
            self.slots[slot] = 0;
        }
        self.head = target;
    }

    /// Adds `n` to the bucket at the head (call [`Ring::advance`] first).
    fn add(&mut self, n: u64) {
        let slot = (self.head % self.slots.len() as u64) as usize;
        self.slots[slot] += n;
        self.total += n;
    }

    /// Sum over the trailing `window` clock units (the head's partial
    /// bucket counts in full — the window closes at the live edge).
    fn sum(&self, window: u64) -> u64 {
        let len = self.slots.len() as u64;
        let buckets = (window / self.width).clamp(1, len);
        if buckets == len {
            return self.total;
        }
        let mut total = 0;
        for i in 0..buckets {
            if i > self.head {
                break;
            }
            total += self.slots[((self.head - i) % len) as usize];
        }
        total
    }
}

/// Event counts over the trailing 5 s / 1 m / 1 h, at O(120) words of
/// memory: a fine ring (sixty 1-unit buckets, serving windows up to
/// 1 m) and a coarse ring (sixty 60-unit buckets, serving up to 1 h).
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    fine: Ring,
    coarse: Ring,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter {
            fine: Ring::new(1, 60),
            coarse: Ring::new(60, 60),
        }
    }
}

impl WindowedCounter {
    /// A counter with the standard 5 s / 1 m / 1 h windows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the window clock to `now` (monotonic; earlier values
    /// are ignored).
    pub fn advance(&mut self, now: u64) {
        self.fine.advance(now);
        self.coarse.advance(now);
    }

    /// Adds `n` events at the current clock position.
    pub fn record(&mut self, n: u64) {
        self.fine.add(n);
        self.coarse.add(n);
    }

    /// Events in the trailing `window` clock units.
    pub fn sum(&self, window: u64) -> u64 {
        if window <= WINDOW_1M {
            self.fine.sum(window)
        } else {
            self.coarse.sum(window)
        }
    }

    /// Events per clock unit over the trailing `window`.
    pub fn rate(&self, window: u64) -> f64 {
        self.sum(window) as f64 / window.max(1) as f64
    }
}

/// One ring bucket of a [`WindowedHistogram`].
#[derive(Debug, Clone, Copy, Default)]
struct HistSlice {
    count: u64,
    sum: u64,
    max: u64,
}

/// Windowed view of a sample stream: per-bucket `(count, sum, max)`
/// slices merged over the trailing window into sample rate, mean, and
/// max. Quantiles stay with the cumulative registry histograms — the
/// windowed plane answers "is it regressing now", not "what shape".
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    fine: Vec<HistSlice>,
    coarse: Vec<HistSlice>,
    fine_head: u64,
    coarse_head: u64,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram {
            fine: vec![HistSlice::default(); 60],
            coarse: vec![HistSlice::default(); 60],
            fine_head: 0,
            coarse_head: 0,
        }
    }
}

impl WindowedHistogram {
    /// A histogram with the standard 5 s / 1 m / 1 h windows.
    pub fn new() -> Self {
        Self::default()
    }

    fn advance_ring(slices: &mut [HistSlice], head: &mut u64, width: u64, now: u64) {
        let target = now / width;
        if target <= *head {
            return;
        }
        let len = slices.len() as u64;
        let steps = (target - *head).min(len);
        for i in 1..=steps {
            slices[((*head + i) % len) as usize] = HistSlice::default();
        }
        *head = target;
    }

    /// Advances the window clock to `now`.
    pub fn advance(&mut self, now: u64) {
        Self::advance_ring(&mut self.fine, &mut self.fine_head, 1, now);
        Self::advance_ring(&mut self.coarse, &mut self.coarse_head, 60, now);
    }

    /// Records one sample at the current clock position.
    pub fn record(&mut self, v: u64) {
        self.record_agg(1, v, v);
    }

    /// Records a pre-aggregated batch of `count` samples summing to
    /// `sum` with maximum `max` — the polled-source path, which only
    /// sees deltas of the cumulative count/sum.
    pub fn record_agg(&mut self, count: u64, sum: u64, max: u64) {
        if count == 0 {
            return;
        }
        for (slices, head) in [
            (&mut self.fine, self.fine_head),
            (&mut self.coarse, self.coarse_head),
        ] {
            let len = slices.len() as u64;
            let slice = &mut slices[(head % len) as usize];
            slice.count += count;
            slice.sum += sum;
            slice.max = slice.max.max(max);
        }
    }

    fn merged(&self, window: u64) -> HistSlice {
        let (slices, head, width) = if window <= WINDOW_1M {
            (&self.fine, self.fine_head, 1)
        } else {
            (&self.coarse, self.coarse_head, 60)
        };
        let len = slices.len() as u64;
        let buckets = (window / width).clamp(1, len);
        let mut out = HistSlice::default();
        for i in 0..buckets {
            if i > head {
                break;
            }
            let s = slices[((head - i) % len) as usize];
            out.count += s.count;
            out.sum += s.sum;
            out.max = out.max.max(s.max);
        }
        out
    }

    /// Samples in the trailing `window` clock units.
    pub fn count(&self, window: u64) -> u64 {
        self.merged(window).count
    }

    /// Samples per clock unit over the trailing `window`.
    pub fn rate(&self, window: u64) -> f64 {
        self.count(window) as f64 / window.max(1) as f64
    }

    /// Mean sample over the trailing `window` (0 when empty).
    pub fn mean(&self, window: u64) -> f64 {
        let m = self.merged(window);
        if m.count == 0 {
            0.0
        } else {
            m.sum as f64 / m.count as f64
        }
    }

    /// Largest sample in the trailing `window` (0 when empty).
    pub fn max(&self, window: u64) -> u64 {
        self.merged(window).max
    }
}

/// Handle to a tracked counter series in a [`WindowPlane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowId(usize);

/// Handle to a tracked histogram series in a [`WindowPlane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowHistId(usize);

struct TrackedCounter {
    name: String,
    /// When set, [`WindowPlane::advance`] polls this cumulative counter
    /// and records the delta since the last poll — zero hot-path cost.
    source: Option<Arc<Counter>>,
    last: u64,
    windows: WindowedCounter,
}

struct TrackedHistogram {
    name: String,
    windows: WindowedHistogram,
}

#[derive(Default)]
struct PlaneInner {
    now: u64,
    counters: Vec<TrackedCounter>,
    counter_index: BTreeMap<String, usize>,
    histograms: Vec<TrackedHistogram>,
    histogram_index: BTreeMap<String, usize>,
}

/// A named collection of windowed series sharing one caller-driven
/// clock. Create it where the clock lives (the simulator engine, a
/// bench loop), track the counters worth watching, call
/// [`WindowPlane::advance`] once per clock unit, and install it on the
/// [`crate::Obs`] handle so `/metrics` exposes the rates.
#[derive(Default)]
pub struct WindowPlane {
    inner: Mutex<PlaneInner>,
}

impl std::fmt::Debug for WindowPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_unpoisoned(&self.inner);
        f.debug_struct("WindowPlane")
            .field("now", &inner.now)
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl WindowPlane {
    /// An empty plane at clock 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracks a directly-fed counter series (see [`WindowPlane::record`]).
    /// Tracking the same name again returns the existing series.
    pub fn track(&self, name: &str) -> WindowId {
        self.track_inner(name, None)
    }

    /// Tracks a counter series fed by polling `source` on every
    /// [`WindowPlane::advance`]: the delta of the cumulative total since
    /// the last advance lands in the current bucket. The source's
    /// pre-existing total is swallowed at registration, so a plane
    /// attached mid-run starts its windows at zero.
    pub fn track_source(&self, name: &str, source: Arc<Counter>) -> WindowId {
        self.track_inner(name, Some(source))
    }

    fn track_inner(&self, name: &str, source: Option<Arc<Counter>>) -> WindowId {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(&i) = inner.counter_index.get(name) {
            return WindowId(i);
        }
        let last = source.as_ref().map_or(0, |c| c.get());
        let i = inner.counters.len();
        inner.counters.push(TrackedCounter {
            name: name.to_string(),
            source,
            last,
            windows: WindowedCounter::new(),
        });
        inner.counter_index.insert(name.to_string(), i);
        WindowId(i)
    }

    /// Tracks a directly-fed histogram series (see
    /// [`WindowPlane::record_sample`]).
    pub fn track_histogram(&self, name: &str) -> WindowHistId {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(&i) = inner.histogram_index.get(name) {
            return WindowHistId(i);
        }
        let i = inner.histograms.len();
        inner.histograms.push(TrackedHistogram {
            name: name.to_string(),
            windows: WindowedHistogram::new(),
        });
        inner.histogram_index.insert(name.to_string(), i);
        WindowHistId(i)
    }

    /// Advances the shared clock to `now` (monotonic) and polls every
    /// source-backed counter for its delta since the previous advance.
    pub fn advance(&self, now: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.now = inner.now.max(now);
        let now = inner.now;
        for tracked in &mut inner.counters {
            tracked.windows.advance(now);
            if let Some(source) = &tracked.source {
                let total = source.get();
                let delta = total.saturating_sub(tracked.last);
                tracked.last = total;
                if delta > 0 {
                    tracked.windows.record(delta);
                }
            }
        }
        for tracked in &mut inner.histograms {
            tracked.windows.advance(now);
        }
    }

    /// Adds `n` events to a tracked counter at the current clock.
    pub fn record(&self, id: WindowId, n: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(tracked) = inner.counters.get_mut(id.0) {
            tracked.windows.record(n);
        }
    }

    /// Records one sample into a tracked histogram at the current clock.
    pub fn record_sample(&self, id: WindowHistId, v: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(tracked) = inner.histograms.get_mut(id.0) {
            tracked.windows.record(v);
        }
    }

    /// The plane's current clock value.
    pub fn now(&self) -> u64 {
        lock_unpoisoned(&self.inner).now
    }

    /// Events in the trailing `window` for the named counter series.
    pub fn sum(&self, name: &str, window: u64) -> Option<u64> {
        let inner = lock_unpoisoned(&self.inner);
        let &i = inner.counter_index.get(name)?;
        Some(inner.counters[i].windows.sum(window))
    }

    /// Events per clock unit over the trailing `window` for the named
    /// counter series.
    pub fn rate(&self, name: &str, window: u64) -> Option<f64> {
        let inner = lock_unpoisoned(&self.inner);
        let &i = inner.counter_index.get(name)?;
        Some(inner.counters[i].windows.rate(window))
    }

    /// A point-in-time copy of every windowed series, for exposition
    /// (see [`crate::text::render_windows`]).
    pub fn snapshot(&self) -> WindowSnapshot {
        let inner = lock_unpoisoned(&self.inner);
        WindowSnapshot {
            now: inner.now,
            counters: inner
                .counters
                .iter()
                .map(|t| WindowedCounterSnapshot {
                    name: t.name.clone(),
                    rates: WINDOWS.map(|(w, label)| (label, t.windows.rate(w))),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|t| WindowedHistogramSnapshot {
                    name: t.name.clone(),
                    rates: WINDOWS.map(|(w, label)| (label, t.windows.rate(w))),
                    mean_1m: t.windows.mean(WINDOW_1M),
                    max_1m: t.windows.max(WINDOW_1M),
                })
                .collect(),
        }
    }
}

/// Point-in-time rates of one windowed counter series.
#[derive(Debug, Clone)]
pub struct WindowedCounterSnapshot {
    /// The tracked (dotted) metric name.
    pub name: String,
    /// `(window suffix, events per clock unit)` per exposed window.
    pub rates: [(&'static str, f64); WINDOWS.len()],
}

/// Point-in-time rates of one windowed histogram series.
#[derive(Debug, Clone)]
pub struct WindowedHistogramSnapshot {
    /// The tracked (dotted) metric name.
    pub name: String,
    /// `(window suffix, samples per clock unit)` per exposed window.
    pub rates: [(&'static str, f64); WINDOWS.len()],
    /// Mean sample over the last minute.
    pub mean_1m: f64,
    /// Largest sample in the last minute.
    pub max_1m: u64,
}

/// Point-in-time copy of a [`WindowPlane`].
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// The plane's clock when the snapshot was taken.
    pub now: u64,
    /// One entry per tracked counter series.
    pub counters: Vec<WindowedCounterSnapshot>,
    /// One entry per tracked histogram series.
    pub histograms: Vec<WindowedHistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_counter_forgets_old_events() {
        let mut w = WindowedCounter::new();
        w.advance(10);
        w.record(100);
        assert_eq!(w.sum(WINDOW_5S), 100);
        assert_eq!(w.sum(WINDOW_1M), 100);
        // 5 units later the event left the 5 s window but not the 1 m.
        w.advance(15);
        assert_eq!(w.sum(WINDOW_5S), 0);
        assert_eq!(w.sum(WINDOW_1M), 100);
        // 60 units later it left the 1 m window but not the 1 h.
        w.advance(70);
        assert_eq!(w.sum(WINDOW_1M), 0);
        assert_eq!(w.sum(WINDOW_1H), 100);
        // And after an hour it is gone entirely.
        w.advance(10 + 3600);
        assert_eq!(w.sum(WINDOW_1H), 0);
    }

    #[test]
    fn rates_divide_by_window_length() {
        let mut w = WindowedCounter::new();
        for t in 1..=60 {
            w.advance(t);
            w.record(2);
        }
        assert_eq!(w.sum(WINDOW_1M), 120);
        assert!((w.rate(WINDOW_1M) - 2.0).abs() < 1e-12);
        assert!((w.rate(WINDOW_5S) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advancing_past_a_full_lap_clears_everything() {
        let mut w = WindowedCounter::new();
        w.advance(1);
        w.record(50);
        w.advance(1_000_000);
        assert_eq!(w.sum(WINDOW_1H), 0);
        w.record(7);
        assert_eq!(w.sum(WINDOW_5S), 7);
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut w = WindowedCounter::new();
        w.advance(100);
        w.record(3);
        w.advance(50); // ignored
        assert_eq!(w.sum(WINDOW_5S), 3);
    }

    #[test]
    fn windowed_histogram_tracks_rate_mean_max() {
        let mut h = WindowedHistogram::new();
        h.advance(1);
        h.record(10);
        h.record(30);
        assert_eq!(h.count(WINDOW_1M), 2);
        assert!((h.mean(WINDOW_1M) - 20.0).abs() < 1e-12);
        assert_eq!(h.max(WINDOW_1M), 30);
        // The max decays out of the window with its bucket.
        h.advance(62);
        assert_eq!(h.count(WINDOW_1M), 0);
        assert_eq!(h.max(WINDOW_1M), 0);
        assert_eq!(h.count(WINDOW_1H), 2);
        assert_eq!(h.max(WINDOW_1H), 30);
    }

    #[test]
    fn plane_polls_counter_sources_for_deltas() {
        let plane = WindowPlane::new();
        let counter = Arc::new(Counter::default());
        counter.add(1000); // pre-existing total must not spike the window
        plane.track_source("sim.refresh", counter.clone());
        plane.advance(1);
        assert_eq!(plane.sum("sim.refresh", WINDOW_1M), Some(0));
        counter.add(25);
        plane.advance(2);
        assert_eq!(plane.sum("sim.refresh", WINDOW_1M), Some(25));
        assert_eq!(plane.sum("sim.refresh", WINDOW_5S), Some(25));
        // The delta is only counted once.
        plane.advance(3);
        assert_eq!(plane.sum("sim.refresh", WINDOW_1M), Some(25));
        // And it ages out of the 5 s window.
        plane.advance(8);
        assert_eq!(plane.sum("sim.refresh", WINDOW_5S), Some(0));
    }

    #[test]
    fn plane_direct_recording_and_snapshot() {
        let plane = WindowPlane::new();
        let id = plane.track("ticks");
        let hid = plane.track_histogram("batch_ns");
        plane.advance(5);
        plane.record(id, 10);
        plane.record_sample(hid, 500);
        let snap = plane.snapshot();
        assert_eq!(snap.now, 5);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].name, "ticks");
        let rate_5s = snap.counters[0].rates[0];
        assert_eq!(rate_5s.0, "5s");
        assert!((rate_5s.1 - 2.0).abs() < 1e-12);
        assert_eq!(snap.histograms[0].max_1m, 500);
        // Unknown names answer None, not panic.
        assert_eq!(plane.rate("nope", WINDOW_1M), None);
    }

    #[test]
    fn tracking_same_name_twice_returns_same_series() {
        let plane = WindowPlane::new();
        let a = plane.track("x");
        let b = plane.track("x");
        assert_eq!(a, b);
        plane.record(a, 1);
        plane.record(b, 1);
        assert_eq!(plane.sum("x", WINDOW_5S), Some(2));
    }
}
