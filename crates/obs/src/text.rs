//! Exposition formats for a metrics [`Snapshot`]: Prometheus text
//! (version 0.0.4) and a plain JSON object.
//!
//! Rendering is pull-time work on an immutable snapshot, so it costs the
//! instrumented process nothing between scrapes. Conventions:
//!
//! * metric names are prefixed `pq_` and sanitized (`.` → `_`), counters
//!   gain the `_total` suffix: `dab.recompute` → `pq_dab_recompute_total`;
//! * a labeled family shadows the plain counter of the same name (the
//!   family's sum equals the plain total, and Prometheus forbids mixing
//!   labeled and unlabeled series that would double-count);
//! * histograms render as native histogram series — cumulative
//!   `_bucket{le="..."}` from [`crate::HistogramSummary::buckets`], plus
//!   exact `_sum` and `_count` — and an auxiliary `_max` gauge (the exact
//!   observed maximum, which buckets alone cannot recover).

use crate::registry::Snapshot;
use crate::window::WindowSnapshot;
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, &value) in &snapshot.counters {
        // A labeled family of the same name carries the breakdown; its
        // sum is this total, so emitting both would double-count.
        if snapshot.labeled.contains_key(name) {
            continue;
        }
        let metric = format!("pq_{}_total", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, family) in &snapshot.labeled {
        let metric = format!("pq_{}_total", sanitize(name));
        let key = sanitize(&family.key);
        let _ = writeln!(out, "# TYPE {metric} counter");
        for (value, count) in &family.values {
            let _ = writeln!(out, "{metric}{{{key}=\"{}\"}} {count}", escape_label(value));
        }
    }
    for (name, h) in &snapshot.histograms {
        let metric = format!("pq_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} histogram");
        for &(le, cumulative) in &h.buckets {
            let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{metric}_sum {}", h.sum);
        let _ = writeln!(out, "{metric}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {metric}_max gauge");
        let _ = writeln!(out, "{metric}_max {}", h.max);
    }
    for (name, &value) in &snapshot.gauges {
        let metric = format!("pq_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", prom_f64(value));
    }
    out
}

/// Renders the windowed series of a [`crate::WindowPlane`] snapshot as
/// Prometheus gauges: `pq_<name>_rate_5s` / `_rate_1m` / `_rate_1h`
/// (events per simulated second over the trailing window), plus
/// `_mean_1m` / `_max_1m` for windowed histograms. Appended to the
/// `/metrics` body after [`render_prometheus`] when a plane is
/// installed on the serving [`crate::Obs`] handle.
pub fn render_windows(windows: &WindowSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for series in &windows.counters {
        let metric = format!("pq_{}", sanitize(&series.name));
        for (suffix, rate) in series.rates {
            let _ = writeln!(out, "# TYPE {metric}_rate_{suffix} gauge");
            let _ = writeln!(out, "{metric}_rate_{suffix} {}", prom_f64(rate));
        }
    }
    for series in &windows.histograms {
        let metric = format!("pq_{}", sanitize(&series.name));
        for (suffix, rate) in series.rates {
            let _ = writeln!(out, "# TYPE {metric}_rate_{suffix} gauge");
            let _ = writeln!(out, "{metric}_rate_{suffix} {}", prom_f64(rate));
        }
        let _ = writeln!(out, "# TYPE {metric}_mean_1m gauge");
        let _ = writeln!(out, "{metric}_mean_1m {}", prom_f64(series.mean_1m));
        let _ = writeln!(out, "# TYPE {metric}_max_1m gauge");
        let _ = writeln!(out, "{metric}_max_1m {}", series.max_1m);
    }
    out
}

/// Renders a gauge value for the text exposition format (which spells
/// non-finite values out, unlike JSON).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as one JSON object:
/// `{"counters":{...},"labeled":{...},"histograms":{...},"gauges":{...}}`.
pub fn render_json(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"labeled\":{");
    for (i, (name, family)) in snapshot.labeled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"key\":{},\"values\":{{",
            json_string(name),
            json_string(&family.key)
        );
        for (j, (value, count)) in family.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{count}", json_string(value));
        }
        out.push_str("}}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{},\"buckets\":[",
            json_string(name),
            h.count,
            h.sum,
            json_f64(h.mean),
            h.p50,
            h.p95,
            h.p99,
            h.min,
            h.max
        );
        for (j, &(le, cumulative)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{le},{cumulative}]");
        }
        out.push_str("]}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, &value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), json_f64(value));
    }
    out.push_str("}}");
    out
}

/// Maps a dotted metric name onto the Prometheus `[a-zA-Z0-9_]` alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a label value per the text exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn populated() -> Snapshot {
        let obs = Obs::null();
        obs.counter("sim.refresh").add(7);
        obs.counter("dab.recompute").add(5);
        obs.labeled_counter("dab.recompute", "query", "0").add(2);
        obs.labeled_counter("dab.recompute", "query", "1").add(3);
        obs.histogram("gp.solve_ns").record(100);
        obs.histogram("gp.solve_ns").record(900);
        obs.snapshot()
    }

    #[test]
    fn prometheus_counters_and_labels() {
        let text = render_prometheus(&populated());
        assert!(text.contains("# TYPE pq_sim_refresh_total counter\n"));
        assert!(text.contains("pq_sim_refresh_total 7\n"));
        assert!(text.contains("pq_dab_recompute_total{query=\"0\"} 2\n"));
        assert!(text.contains("pq_dab_recompute_total{query=\"1\"} 3\n"));
        // The plain counter is shadowed by its labeled family.
        assert!(!text.contains("pq_dab_recompute_total 5"));
    }

    #[test]
    fn prometheus_histograms_emit_buckets_sum_count_max() {
        let text = render_prometheus(&populated());
        assert!(text.contains("# TYPE pq_gp_solve_ns histogram\n"));
        assert!(text.contains("pq_gp_solve_ns_bucket{le=\"127\"} 1\n"));
        assert!(text.contains("pq_gp_solve_ns_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("pq_gp_solve_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("pq_gp_solve_ns_sum 1000\n"));
        assert!(text.contains("pq_gp_solve_ns_count 2\n"));
        assert!(text.contains("pq_gp_solve_ns_max 900\n"));
    }

    #[test]
    fn prometheus_rendering_matches_fixed_snapshot_exactly() {
        // Pin the full document, not substrings: conformance means the
        // explicit `+Inf` bucket, cumulative bucket counts, and the
        // `_sum`/`_count` pair render exactly like this, in this order.
        let obs = Obs::null();
        obs.counter("sim.refresh").add(7);
        obs.counter("dab.recompute").add(5);
        obs.labeled_counter("dab.recompute", "query", "0").add(2);
        obs.labeled_counter("dab.recompute", "query", "1").add(3);
        obs.histogram("gp.solve_ns").record(100);
        obs.histogram("gp.solve_ns").record(900);
        obs.gauge("audit.drift_max").set(0.125);
        let expected = "\
# TYPE pq_sim_refresh_total counter
pq_sim_refresh_total 7
# TYPE pq_dab_recompute_total counter
pq_dab_recompute_total{query=\"0\"} 2
pq_dab_recompute_total{query=\"1\"} 3
# TYPE pq_gp_solve_ns histogram
pq_gp_solve_ns_bucket{le=\"127\"} 1
pq_gp_solve_ns_bucket{le=\"1023\"} 2
pq_gp_solve_ns_bucket{le=\"+Inf\"} 2
pq_gp_solve_ns_sum 1000
pq_gp_solve_ns_count 2
# TYPE pq_gp_solve_ns_max gauge
pq_gp_solve_ns_max 900
# TYPE pq_audit_drift_max gauge
pq_audit_drift_max 0.125
";
        assert_eq!(render_prometheus(&obs.snapshot()), expected);
    }

    #[test]
    fn windowed_series_render_as_rate_gauges() {
        let plane = crate::WindowPlane::new();
        let id = plane.track("sim.refresh");
        let hid = plane.track_histogram("gp.solve_ns");
        plane.advance(60);
        plane.record(id, 120);
        plane.record_sample(hid, 500);
        plane.record_sample(hid, 1500);
        let text = render_windows(&plane.snapshot());
        assert!(text.contains("# TYPE pq_sim_refresh_rate_5s gauge\n"));
        assert!(text.contains("pq_sim_refresh_rate_5s 24\n"));
        assert!(text.contains("pq_sim_refresh_rate_1m 2\n"));
        assert!(text.contains("pq_gp_solve_ns_mean_1m 1000\n"));
        assert!(text.contains("pq_gp_solve_ns_max_1m 1500\n"));
        // Every line is still well-formed exposition text.
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("space-separated");
            if !line.starts_with('#') {
                assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            }
        }
    }

    #[test]
    fn prometheus_text_format_is_well_formed() {
        for line in render_prometheus(&populated()).lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "unexpected comment: {line}");
                continue;
            }
            // `name{labels} value` or `name value`, value parses numeric.
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in: {line}"
            );
        }
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        // The JSONL event parser accepts any scalar map, so reuse its
        // grammar pieces indirectly: just sanity-check shape and that
        // the output is balanced JSON with expected keys.
        let json = render_json(&populated());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"sim.refresh\":7"));
        assert!(json.contains("\"dab.recompute\":{\"key\":\"query\",\"values\":{\"0\":2,\"1\":3}}"));
        assert!(json.contains("\"gp.solve_ns\":{\"count\":2,\"sum\":1000"));
        assert!(json.contains("\"buckets\":[[127,1],[1023,2]]"));
        let balanced = json
            .chars()
            .fold(0i32, |d, c| d + (c == '{') as i32 - (c == '}') as i32);
        assert_eq!(balanced, 0);
    }

    #[test]
    fn label_escaping_is_applied() {
        let obs = Obs::null();
        obs.labeled_counter("m", "series", "a\"b\\c\nd").inc();
        let text = render_prometheus(&obs.snapshot());
        assert!(text.contains("pq_m_total{series=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_documents() {
        let snap = Snapshot::default();
        assert_eq!(render_prometheus(&snap), "");
        assert_eq!(
            render_json(&snap),
            "{\"counters\":{},\"labeled\":{},\"histograms\":{},\"gauges\":{}}"
        );
    }

    #[test]
    fn gauges_render_in_both_formats() {
        let obs = Obs::null();
        obs.gauge("audit.drift_max").set(0.125);
        obs.gauge("audit.fidelity_loss_pct").set(3.0);
        let snap = obs.snapshot();
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE pq_audit_drift_max gauge\n"));
        assert!(text.contains("pq_audit_drift_max 0.125\n"));
        assert!(text.contains("pq_audit_fidelity_loss_pct 3\n"));
        let json = render_json(&snap);
        assert!(
            json.contains("\"gauges\":{\"audit.drift_max\":0.125,\"audit.fidelity_loss_pct\":3.0}")
        );
    }

    #[test]
    fn never_recorded_histogram_renders_without_sentinel_min() {
        let obs = Obs::null();
        let _ = obs.histogram("empty_ns");
        let text = render_prometheus(&obs.snapshot());
        assert!(
            !text.contains(&u64::MAX.to_string()),
            "sentinel leaked: {text}"
        );
        let json = render_json(&obs.snapshot());
        assert!(json.contains("\"empty_ns\":{\"count\":0,\"sum\":0,\"mean\":0.0,\"p50\":0,\"p95\":0,\"p99\":0,\"min\":0,\"max\":0,\"buckets\":[]}"));
    }
}
