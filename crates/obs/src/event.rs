//! Structured telemetry events.
//!
//! An [`Event`] is a timestamped, named record with a flat list of
//! key/value fields. Events are cheap to build (static strings borrow,
//! field vectors are small) and are only constructed when a subscriber
//! is interested in the target — see [`crate::Obs::emit_with`].

use std::borrow::Cow;

/// Event/field names: static in the common case, owned when formatted.
pub type Str = Cow<'static, str>;

/// A single telemetry field value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A boolean flag, e.g. `converged=true`.
    Bool(bool),
    /// A non-negative integer, e.g. counts and durations in ns.
    U64(u64),
    /// A float, e.g. residuals and objective values.
    F64(f64),
    /// A short string, e.g. a strategy name.
    Str(Str),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            // Bitwise float comparison so NaN == NaN and round-trip
            // tests can compare events structurally.
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}

/// What an event represents; lets consumers filter without parsing
/// field contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A state observation or decision at a moment in time.
    Point,
    /// An occurrence that a consumer may want to tally.
    Count,
    /// A completed span with a `dur_ns` field.
    Timing,
}

impl EventKind {
    /// Stable lowercase name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Point => "point",
            EventKind::Count => "count",
            EventKind::Timing => "timing",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "point" => Some(EventKind::Point),
            "count" => Some(EventKind::Count),
            "timing" => Some(EventKind::Timing),
            _ => None,
        }
    }
}

/// A timestamped structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since process start (monotonic; see [`crate::now_ns`]).
    pub ts_ns: u64,
    /// Dotted event name, e.g. `gp.solve` or `sim.refresh`.
    pub target: Str,
    /// The event's kind.
    pub kind: EventKind,
    /// Ordered key/value payload.
    pub fields: Vec<(Str, Value)>,
}

impl Event {
    /// A new event stamped with the current monotonic time.
    pub fn new(target: impl Into<Str>, kind: EventKind) -> Self {
        Event {
            ts_ns: crate::now_ns(),
            target: target.into(),
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: impl Into<Str>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// First field with the given key, if any.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_fields_in_order() {
        let e = Event::new("gp.solve", EventKind::Timing)
            .with("iters", 7u64)
            .with("gap", 1e-7)
            .with("phase", "newton");
        assert_eq!(e.target, "gp.solve");
        assert_eq!(e.fields.len(), 3);
        assert_eq!(e.field("iters"), Some(&Value::U64(7)));
        assert_eq!(e.field("phase"), Some(&Value::Str("newton".into())));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn nan_values_compare_equal() {
        assert_eq!(Value::F64(f64::NAN), Value::F64(f64::NAN));
        assert_ne!(Value::F64(1.0), Value::F64(2.0));
        assert_ne!(Value::F64(1.0), Value::U64(1));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [EventKind::Point, EventKind::Count, EventKind::Timing] {
            assert_eq!(EventKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::from_name("bogus"), None);
    }
}
