//! Black-box flight recorder: bounded per-thread rings of recent
//! events, dumped to JSONL when something goes wrong.
//!
//! A JSONL trace of a long run is huge and mostly boring; the
//! interesting part is always *the last few seconds before the
//! incident*. The recorder keeps exactly that: each emitting thread
//! owns a bounded ring cell (the same thread-sharded discipline as
//! [`crate::sharded::LocalCollector`] — private cell, registered in a
//! shared set, contents preserved after the thread dies), and a
//! **dump trigger** merges every cell, sorts by timestamp, and writes
//! one JSONL postmortem file that `pq-trace postmortem` renders.
//!
//! Triggers: an SLO burn-rate alert, an `audit.divergence`, a watchdog
//! stall, or the process panic hook ([`Recorder::install_panic_hook`]).
//! Dumps are capped per process so a flapping alert cannot fill a disk.
//!
//! The recorder is a [`Subscriber`]; [`crate::Obs::from_config`] fans
//! it in next to the other sinks when [`crate::ObsConfig::recorder`]
//! is set (`PQ_OBS_RECORDER=<path>` on harness binaries).

use crate::event::{Event, EventKind};
use crate::jsonl;
use crate::registry::lock_unpoisoned;
use crate::subscriber::Subscriber;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread ring capacity (events).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Hard cap on dumps per recorder — a flapping trigger must not fill
/// the disk with identical postmortems.
pub const MAX_DUMPS: u64 = 8;

/// Flight-recorder configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Events retained per thread (newest win; at least 1).
    pub capacity: usize,
    /// Dump destination. The first dump writes exactly this path;
    /// later dumps write numbered siblings (`x.jsonl`, `x-1.jsonl`, …).
    pub path: PathBuf,
}

impl RecorderConfig {
    /// A config with the default capacity.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RecorderConfig {
            capacity: DEFAULT_RECORDER_CAPACITY,
            path: path.into(),
        }
    }
}

/// One thread's ring of recent events.
struct Cell {
    thread: String,
    ring: Mutex<CellRing>,
}

struct CellRing {
    buf: VecDeque<Event>,
    dropped: u64,
}

struct Shared {
    capacity: usize,
    path: PathBuf,
    cells: Mutex<Vec<Arc<Cell>>>,
    dumps: AtomicU64,
    hook_installed: AtomicBool,
}

/// The flight recorder. Cloning shares the cells; the clone is how the
/// recorder rides in the subscriber chain *and* stays reachable for
/// triggers through [`crate::Obs::recorder`].
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.shared.capacity)
            .field("path", &self.shared.path)
            .field("dumps", &self.dump_count())
            .finish()
    }
}

thread_local! {
    /// This thread's cells, one per live recorder (keyed by the shared
    /// state's address). Dropping the thread drops only the map — the
    /// shared set keeps the cell, so a dead thread's last events still
    /// reach the postmortem.
    static CELLS: RefCell<Vec<(usize, Arc<Cell>)>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// A recorder with the given per-thread capacity and dump path.
    pub fn new(config: RecorderConfig) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                capacity: config.capacity.max(1),
                path: config.path,
                cells: Mutex::new(Vec::new()),
                dumps: AtomicU64::new(0),
                hook_installed: AtomicBool::new(false),
            }),
        }
    }

    fn cell(&self) -> Arc<Cell> {
        let key = Arc::as_ptr(&self.shared) as usize;
        CELLS.with(|cells| {
            let mut cells = cells.borrow_mut();
            if let Some((_, cell)) = cells.iter().find(|(k, _)| *k == key) {
                return cell.clone();
            }
            let cell = Arc::new(Cell {
                thread: std::thread::current()
                    .name()
                    .unwrap_or("<unnamed>")
                    .to_string(),
                ring: Mutex::new(CellRing {
                    buf: VecDeque::with_capacity(self.shared.capacity.min(1024)),
                    dropped: 0,
                }),
            });
            lock_unpoisoned(&self.shared.cells).push(cell.clone());
            cells.push((key, cell.clone()));
            cell
        })
    }

    /// Records one event into this thread's ring (oldest event evicted
    /// once the ring is full).
    pub fn record(&self, event: &Event) {
        let cell = self.cell();
        let mut ring = lock_unpoisoned(&cell.ring);
        if ring.buf.len() >= self.shared.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event.clone());
    }

    /// Events currently buffered across all threads (test/diagnostic).
    pub fn buffered(&self) -> usize {
        lock_unpoisoned(&self.shared.cells)
            .iter()
            .map(|c| lock_unpoisoned(&c.ring).buf.len())
            .sum()
    }

    /// Dumps taken so far.
    pub fn dump_count(&self) -> u64 {
        self.shared.dumps.load(Ordering::Relaxed)
    }

    /// The path the *next* dump will write.
    pub fn next_dump_path(&self) -> PathBuf {
        numbered_path(&self.shared.path, self.dump_count())
    }

    /// Merges every thread's ring, sorts by timestamp, and writes one
    /// JSONL postmortem file. The first line is a synthetic
    /// `recorder.dump` event carrying the trigger `reason` and the
    /// merge accounting; the rest are the recorded events, oldest
    /// first. Returns the written path.
    ///
    /// # Errors
    /// Propagates file-creation and write failures.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        let seq = self.shared.dumps.fetch_add(1, Ordering::SeqCst);
        let path = numbered_path(&self.shared.path, seq);
        let mut events = Vec::new();
        let mut threads = 0u64;
        let mut dropped = 0u64;
        for cell in lock_unpoisoned(&self.shared.cells).iter() {
            let ring = lock_unpoisoned(&cell.ring);
            if ring.buf.is_empty() && ring.dropped == 0 {
                continue;
            }
            threads += 1;
            dropped += ring.dropped;
            for event in &ring.buf {
                events.push((cell.thread.clone(), event.clone()));
            }
        }
        events.sort_by_key(|(_, e)| e.ts_ns);
        let header = Event::new("recorder.dump", EventKind::Point)
            .with("reason", reason.to_string())
            .with("seq", seq)
            .with("threads", threads)
            .with("events", events.len())
            .with("dropped", dropped);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(out, "{}", jsonl::to_json(&header))?;
        for (thread, event) in &events {
            let event = event.clone().with("thread", thread.clone());
            writeln!(out, "{}", jsonl::to_json(&event))?;
        }
        out.flush()?;
        Ok(path)
    }

    /// Best-effort dump for in-band triggers: swallows I/O errors and
    /// stops entirely after [`MAX_DUMPS`] dumps. Returns the written
    /// path, if any.
    pub fn trigger(&self, reason: &str) -> Option<PathBuf> {
        if self.dump_count() >= MAX_DUMPS {
            return None;
        }
        self.dump(reason).ok()
    }

    /// Chains a panic hook that dumps the recorder (reason `panic`)
    /// before the previous hook runs. Installs at most once per
    /// recorder; the hook holds a clone, so the recorder stays alive
    /// for the process lifetime.
    pub fn install_panic_hook(&self) {
        if self.shared.hook_installed.swap(true, Ordering::SeqCst) {
            return;
        }
        let recorder = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            recorder.trigger("panic");
            prev(info);
        }));
    }
}

/// `seq` 0 keeps `path` as-is; later dumps insert `-<seq>` before the
/// extension (`post.jsonl` → `post-1.jsonl`).
fn numbered_path(path: &Path, seq: u64) -> PathBuf {
    if seq == 0 {
        return path.to_path_buf();
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("dump");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    path.with_file_name(format!("{stem}-{seq}.{ext}"))
}

impl Subscriber for Recorder {
    fn on_event(&self, event: &Event) {
        self.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pq-obs-recorder-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn read_events(path: &Path) -> Vec<Event> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(|l| jsonl::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let recorder = Recorder::new(RecorderConfig {
            capacity: 3,
            path: temp_path("ring.jsonl"),
        });
        for i in 0..10u64 {
            recorder.record(&Event::new("sim.refresh", EventKind::Point).with("i", i));
        }
        assert_eq!(recorder.buffered(), 3);
        let path = recorder.dump("test").unwrap();
        let events = read_events(&path);
        assert_eq!(events[0].target, "recorder.dump");
        assert_eq!(events[0].field("dropped"), Some(&Value::U64(7)));
        let kept: Vec<_> = events[1..]
            .iter()
            .map(|e| e.field("i").cloned().unwrap())
            .collect();
        assert_eq!(kept, vec![Value::U64(7), Value::U64(8), Value::U64(9)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_merges_threads_in_timestamp_order() {
        let recorder = Recorder::new(RecorderConfig {
            capacity: 64,
            path: temp_path("merge.jsonl"),
        });
        recorder.record(&Event::new("main.event", EventKind::Point));
        let clone = recorder.clone();
        std::thread::Builder::new()
            .name("worker-1".into())
            .spawn(move || {
                clone.record(&Event::new("worker.event", EventKind::Point));
            })
            .unwrap()
            .join()
            .unwrap();
        // The worker is dead; its cell must still reach the dump.
        let path = recorder.dump("test").unwrap();
        let events = read_events(&path);
        assert_eq!(events[0].field("threads"), Some(&Value::U64(2)));
        assert_eq!(events.len(), 3);
        let ts: Vec<_> = events[1..].iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted by ts");
        assert!(events[1..].iter().any(|e| {
            e.field("thread") == Some(&Value::Str("worker-1".into())) && e.target == "worker.event"
        }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_dumps_write_numbered_siblings_and_cap_out() {
        let recorder = Recorder::new(RecorderConfig {
            capacity: 4,
            path: temp_path("cap.jsonl"),
        });
        recorder.record(&Event::new("x", EventKind::Point));
        let mut paths = Vec::new();
        for _ in 0..MAX_DUMPS + 3 {
            if let Some(p) = recorder.trigger("flap") {
                paths.push(p);
            }
        }
        assert_eq!(paths.len() as u64, MAX_DUMPS);
        assert_eq!(paths[0], temp_path("cap.jsonl"));
        assert_eq!(paths[1], temp_path("cap-1.jsonl"));
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn recorder_as_subscriber_captures_obs_events() {
        let recorder = Recorder::new(RecorderConfig {
            capacity: 16,
            path: temp_path("sub.jsonl"),
        });
        let obs = crate::Obs::with_subscriber(Arc::new(recorder.clone()));
        assert!(obs.enabled("anything"));
        obs.emit_with("sim.refresh", EventKind::Point, |e| e.with("item", 4u64));
        {
            let _t = obs.timed("gp.solve");
        }
        assert_eq!(recorder.buffered(), 2);
    }
}
