//! `pq-obs`: zero-dependency telemetry for polyquery.
//!
//! The crate provides three coordinated pieces:
//!
//! 1. **Structured events** ([`Event`]) delivered to a pluggable
//!    [`Subscriber`] — a bounded in-memory ring
//!    ([`RingBufferSubscriber`]), a JSONL file ([`JsonlWriter`]),
//!    human-readable stderr lines ([`StderrSubscriber`]), or nothing
//!    at all ([`NullSubscriber`], the default, which compiles down to
//!    one virtual `enabled()` call per site).
//! 2. **Metrics** — named monotonic [`Counter`]s and power-of-two
//!    bucket [`Histogram`]s with p50/p95/p99 summaries, held in a
//!    per-[`Obs`] [`Registry`] (no global state, so parallel tests
//!    never share metrics).
//! 3. **Timing spans** — [`Obs::timed`] returns a guard that records
//!    the elapsed nanoseconds into a `<name>_ns` histogram and emits a
//!    `<name>_ns` timing event when dropped.
//!
//! An [`Obs`] handle is a cheap `Arc` clone; the solver, monitor, and
//! simulator each accept one and default to the null handle.
//!
//! ```
//! let (obs, ring) = pq_obs::Obs::ring(256);
//! {
//!     let _span = obs.timed(pq_obs::names::GP_SOLVE);
//!     // ... solve ...
//! }
//! obs.counter(pq_obs::names::DAB_RECOMPUTE).inc();
//! assert_eq!(ring.events().len(), 1); // the gp.solve_ns timing event
//! assert_eq!(obs.snapshot().counters["dab.recompute"], 1);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod recorder;
pub mod registry;
pub mod serve;
pub mod sharded;
pub mod slo;
pub mod span;
pub mod subscriber;
pub mod text;
pub mod window;

pub use event::{Event, EventKind, Value};
pub use jsonl::{parse, to_json, JsonError, JsonlWriter};
pub use recorder::{Recorder, RecorderConfig, DEFAULT_RECORDER_CAPACITY};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSummary, LabeledCounterSnapshot, Registry, Snapshot,
};
pub use serve::MetricsServer;
pub use sharded::{
    CounterId, HistogramId, LocalCollector, COUNTER_SLOTS, HISTOGRAM_SLOTS, SHARD_OVERFLOW,
};
pub use slo::{Alert, AlertKind, BurnWindow, Health, SloConfig, SloEngine, Watchdog};
pub use span::{start_profiler, Profiler, SpanContext, SpanContextGuard, SpanId, MAX_SPAN_DEPTH};
pub use subscriber::{
    Fanout, NullSubscriber, PrefixFilter, RingBufferSubscriber, StderrSubscriber, Subscriber,
};
pub use window::{
    WindowPlane, WindowedCounter, WindowedHistogram, WINDOW_1H, WINDOW_1M, WINDOW_5S,
};

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Nanoseconds since the first telemetry call in this process
/// (monotonic, saturating at `u64::MAX`).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The well-known metric and event names used across polyquery, so
/// instrumentation sites and consumers agree on spelling.
pub mod names {
    /// GP solve span (histogram `gp.solve_ns`).
    pub const GP_SOLVE: &str = "gp.solve";
    /// One outer barrier iteration of the GP solver.
    pub const GP_OUTER: &str = "gp.outer";
    /// One Newton step inside the GP solver.
    pub const GP_NEWTON: &str = "gp.newton";
    /// Counter: a KKT solve (dense or sparse) only succeeded after the
    /// regularization ladder bumped the diagonal — a near-singular system
    /// that would otherwise hide in timing noise.
    pub const GP_CHOL_REGULARIZED: &str = "gp.chol_regularized";
    /// Counter: barrier solves routed through the sparse KKT backend.
    pub const GP_SPARSE_SOLVE: &str = "gp.sparse_solve";
    /// Counter: sparse symbolic analyses built at solve time (compiled
    /// GPs build theirs at compile time and are not counted here).
    pub const GP_SPARSE_SYMBOLIC: &str = "gp.sparse_symbolic";
    /// DAB assignment solve span (histogram `dab.solve_ns`).
    pub const DAB_SOLVE: &str = "dab.solve";
    /// A DAB recomputation was triggered (one event per query solved).
    pub const DAB_RECOMPUTE: &str = "dab.recompute";
    /// Strategy/heuristic selection for one assignment unit.
    pub const CORE_ASSIGN: &str = "core.assign";
    /// A monitor was installed over the current data snapshot.
    pub const MONITOR_INSTALL: &str = "monitor.install";
    /// Outcome of one `Monitor::on_refresh` call.
    pub const MONITOR_REFRESH: &str = "monitor.refresh";
    /// A source refresh arrived at the simulated coordinator.
    pub const SIM_REFRESH: &str = "sim.refresh";
    /// A DAB change message was sent to a source.
    pub const SIM_DAB_CHANGE: &str = "sim.dab_change";
    /// A message was dropped by failure injection.
    pub const SIM_LOST_MESSAGE: &str = "sim.lost_message";
    /// A user notification fired.
    pub const SIM_USER_NOTIFY: &str = "sim.user_notification";
    /// A fidelity sample found a query outside its QAB.
    pub const SIM_QAB_VIOLATION: &str = "sim.qab_violation";
    /// One fidelity sample was taken across all queries.
    pub const SIM_FIDELITY_SAMPLE: &str = "sim.fidelity_sample";
    /// Wall-clock nanoseconds the simulated coordinator spent in DAB
    /// solvers (histogram; the `_ns` suffix is already included).
    pub const SIM_SOLVE_NS: &str = "sim.solve_ns";
    /// A simulation run started (carries configuration fields).
    pub const SIM_RUN_START: &str = "sim.run_start";
    /// A simulation run finished (carries summary metrics).
    pub const SIM_RUN_END: &str = "sim.run_end";
    /// One benchmark harness data point.
    pub const BENCH_RUN: &str = "bench.run";
    /// A refresh whose processing forced at least one DAB recomputation
    /// (labeled counter by triggering item — the paper's μ cost driver).
    pub const DAB_RECOMPUTE_TRIGGER: &str = "dab.recompute_trigger";
    /// A metric consumer saw a counter name it does not recognize
    /// (schema drift between producer and consumer).
    pub const OBS_UNKNOWN_METRIC: &str = "obs.unknown_metric";
    /// A cached recompute solved warm from the lightly blended previous
    /// optimum (first rung of the warm-start ladder).
    pub const SOLVE_WARM_HIT: &str = "solve.warm_hit";
    /// A cached recompute needed the shrink-toward-interior repair before
    /// a strictly feasible warm start was found.
    pub const SOLVE_WARM_REPAIR: &str = "solve.warm_repair";
    /// A cached recompute fell back to a cold phase-I solve after warm
    /// repair failed.
    pub const SOLVE_COLD_FALLBACK: &str = "solve.cold_fallback";
    /// The first solve of a cache entry (install time; excluded from the
    /// warm-hit-rate denominator).
    pub const SOLVE_COLD_START: &str = "solve.cold_start";

    /// One query value updated incrementally from an item delta
    /// (`O(affected terms)`; the compiled-plan fast path).
    pub const EVAL_DELTA: &str = "eval.delta";
    /// One full query evaluation (naive or compiled; the slow path the
    /// delta maintenance avoids).
    pub const EVAL_FULL: &str = "eval.full";
    /// One periodic full-re-eval rebase of the incrementally maintained
    /// query values (bounds float drift between rebases).
    pub const EVAL_REBASE: &str = "eval.rebase";
    /// Distinct monomials in a compiled cross-query `SharedPlan` (added
    /// once per compile; the CSE working-set size).
    pub const EVAL_SHARED_TERMS: &str = "eval.shared_terms";
    /// One query value updated by a shared-monomial delta scatter (the
    /// CSR term→query fan-out of `EvalMode::Shared`).
    pub const EVAL_SCATTER_FANOUT: &str = "eval.scatter_fanout";

    /// One event pushed into the simulator scheduler (heap or wheel).
    pub const SCHED_PUSH: &str = "sched.push";
    /// One event popped from the simulator scheduler.
    pub const SCHED_POP: &str = "sched.pop";
    /// One timer-wheel cascade: a higher-level slot re-filed into finer
    /// buckets as simulated time advanced past its span.
    pub const SCHED_CASCADE: &str = "sched.cascade";
    /// One batched-ingestion drain: same-time `RefreshArrive` events
    /// applied through a single fused delta sweep.
    pub const INGEST_BATCH: &str = "ingest.batch";
    /// Histogram of refreshes per ingestion batch.
    pub const INGEST_BATCH_SIZE: &str = "ingest.batch_size";

    /// One parallel DAB recompute batch dispatched by the simulator
    /// (span; parent of the fanned-out `gp.solve` spans).
    pub const SIM_RECOMPUTE_BATCH: &str = "sim.recompute_batch";

    /// One profiler sample of a thread's span stack (Point event with a
    /// folded `stack` field — see [`crate::span`]).
    pub const PROFILE_SAMPLE: &str = "profile.sample";
    /// Total thread-stack samples the profiler has taken.
    pub const PROFILE_SAMPLES: &str = "profile.samples";
    /// Nanoseconds the profiler spent sampling (its self-overhead).
    pub const PROFILE_OVERHEAD_NS: &str = "profile.overhead_ns";

    /// One fidelity-audit shadow evaluation of a sampled query.
    pub const AUDIT_SAMPLE: &str = "audit.sample";
    /// The audited delta-maintained value or violation decision diverged
    /// from the naive shadow evaluation (structured Point event + counter).
    pub const AUDIT_DIVERGENCE: &str = "audit.divergence";
    /// Gauge: percentage of audited samples where the coordinator value
    /// violated its QAB against the naive source truth (the live fig5 curve).
    pub const AUDIT_FIDELITY_LOSS_PCT: &str = "audit.fidelity_loss_pct";
    /// Gauge: largest |delta-maintained − naive| drift seen so far.
    pub const AUDIT_DRIFT_MAX: &str = "audit.drift_max";
    /// Gauge: total cost (refreshes + μ·recomputations) per refresh.
    pub const AUDIT_COST_PER_REFRESH: &str = "audit.cost_per_refresh";

    /// Label key for per-query attribution (value: decimal query index).
    pub const LABEL_QUERY: &str = "query";
    /// Label key for per-item attribution (value: decimal item index).
    pub const LABEL_ITEM: &str = "item";
    /// Label key for per-shard attribution (value: decimal shard index).
    pub const LABEL_SHARD: &str = "shard";

    /// Refreshes processed, labeled by coordinator shard (the sharded
    /// engine's per-shard view of [`SIM_REFRESH`]).
    pub const SHARD_REFRESH: &str = "shard.refresh";
    /// DAB recomputations, labeled by coordinator shard.
    pub const SHARD_RECOMPUTE: &str = "shard.recompute";
    /// Messages sent over an inter-shard ring, labeled by sending shard.
    pub const SHARD_RING_SEND: &str = "shard.ring_send";
    /// Messages received from inter-shard rings, labeled by receiving
    /// shard.
    pub const SHARD_RING_RECV: &str = "shard.ring_recv";
    /// Times a sender found its outbound ring full and had to spin
    /// (draining its own inbound), labeled by sending shard.
    pub const SHARD_RING_BACKPRESSURE: &str = "shard.ring_backpressure";

    /// One SLO alert raised (structured Point event — see [`crate::slo`]).
    pub const SLO_ALERT: &str = "slo.alert";
    /// Total SLO alerts raised over the run (counter).
    pub const SLO_ALERTS_RAISED: &str = "slo.alerts_raised";
    /// Gauge: fidelity burn rate over the fast pair's long window.
    pub const SLO_BURN_FAST: &str = "slo.burn_rate_fast";
    /// Gauge: fidelity burn rate over the slow pair's long window.
    pub const SLO_BURN_SLOW: &str = "slo.burn_rate_slow";
    /// Gauge: fraction of the run's error budget still unspent.
    pub const SLO_BUDGET_REMAINING: &str = "slo.error_budget_remaining";
    /// Synthetic header event of a flight-recorder postmortem dump
    /// (fields `reason`, `seq`, `threads`, `events`, `dropped`).
    pub const RECORDER_DUMP: &str = "recorder.dump";
}

/// How a component should expose telemetry. `Default` is fully off.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write a JSONL event trace to this path.
    pub jsonl: Option<PathBuf>,
    /// Append to the JSONL file instead of truncating it.
    pub append: bool,
    /// Keep the last N events in an in-memory ring.
    pub ring: Option<usize>,
    /// Render events as human-readable stderr lines.
    pub stderr: bool,
    /// Serve live `/metrics` (Prometheus text) and `/snapshot` (JSON)
    /// endpoints on this address (e.g. `127.0.0.1:9464`) for the
    /// lifetime of the process — see [`serve`]. The conventional
    /// environment variable is `PQ_OBS_ADDR`.
    pub addr: Option<String>,
    /// Run the sampling profiler at this rate (samples per second,
    /// clamped to `1..=1000`) for the lifetime of the process — see
    /// [`span`]. The conventional environment variable is
    /// `PQ_OBS_PROFILE_HZ`.
    pub profile_hz: Option<u32>,
    /// Keep a black-box flight recorder of recent events (bounded
    /// per-thread rings, dumped to JSONL on SLO breach, audit
    /// divergence, watchdog stall, or panic) — see [`recorder`]. The
    /// conventional environment variables are `PQ_OBS_RECORDER`
    /// (dump path) and `PQ_OBS_RECORDER_CAP` (per-thread capacity).
    pub recorder: Option<RecorderConfig>,
}

impl ObsConfig {
    /// Whether this config produces any subscriber, server, or
    /// profiler at all.
    pub fn is_off(&self) -> bool {
        self.jsonl.is_none()
            && self.ring.is_none()
            && !self.stderr
            && self.addr.is_none()
            && self.profile_hz.is_none()
            && self.recorder.is_none()
    }
}

/// Optional live-health components attached to an [`Obs`] handle after
/// construction: each is installed at most once (first caller wins)
/// and shared by every clone, so the exporter's `/health`, `/alerts`,
/// and windowed `/metrics` series see the same instances the engine
/// drives.
#[derive(Default)]
struct HealthCell {
    window: OnceLock<Arc<WindowPlane>>,
    slo: OnceLock<Arc<SloEngine>>,
    watchdog: OnceLock<Arc<Watchdog>>,
    /// Labeled watchdogs registered by multi-threaded components (one
    /// per shard thread); unlike `watchdog` this is a grow-only list,
    /// so `/health` can attribute a stall to the thread that stopped.
    watchdogs: std::sync::Mutex<Vec<(String, Arc<Watchdog>)>>,
    recorder: OnceLock<Recorder>,
}

struct Inner {
    subscriber: Arc<dyn Subscriber>,
    registry: Registry,
    health: HealthCell,
}

/// The telemetry handle: an `Arc` around a subscriber and a metrics
/// registry. Cloning is cheap; clones share both.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Inner>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled("debug"))
            .finish()
    }
}

impl Obs {
    /// A handle that emits nothing. Metrics still accumulate (they are
    /// how `SimMetrics` is populated), but no events are constructed.
    pub fn null() -> Self {
        Obs::with_subscriber(Arc::new(NullSubscriber))
    }

    /// True when `other` is a clone of this handle (same subscriber and
    /// registry). Callers that cache resolved counter handles use this
    /// to notice when they were handed a different registry and must
    /// re-resolve, instead of silently incrementing the old one.
    pub fn same_registry(&self, other: &Obs) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A handle delivering events to the given subscriber.
    pub fn with_subscriber(subscriber: Arc<dyn Subscriber>) -> Self {
        Obs {
            inner: Arc::new(Inner {
                subscriber,
                registry: Registry::default(),
                health: HealthCell::default(),
            }),
        }
    }

    /// A handle backed by an in-memory ring of `capacity` events,
    /// returned alongside the ring so callers can inspect it.
    pub fn ring(capacity: usize) -> (Self, Arc<RingBufferSubscriber>) {
        let ring = Arc::new(RingBufferSubscriber::new(capacity));
        (Obs::with_subscriber(ring.clone()), ring)
    }

    /// Builds a handle from a declarative config. Fails only if the
    /// JSONL file cannot be opened or the metrics address cannot be
    /// bound. A configured `addr` starts a detached [`serve`] thread
    /// that lives until process exit.
    pub fn from_config(config: &ObsConfig) -> std::io::Result<Self> {
        if config.is_off() {
            return Ok(Obs::null());
        }
        let mut sinks: Vec<Arc<dyn Subscriber>> = Vec::new();
        if let Some(path) = &config.jsonl {
            let writer = if config.append {
                JsonlWriter::append(path)?
            } else {
                JsonlWriter::create(path)?
            };
            sinks.push(Arc::new(writer));
        }
        if let Some(capacity) = config.ring {
            sinks.push(Arc::new(RingBufferSubscriber::new(capacity)));
        }
        if config.stderr {
            sinks.push(Arc::new(StderrSubscriber));
        }
        let recorder = config.recorder.clone().map(Recorder::new);
        if let Some(recorder) = &recorder {
            sinks.push(Arc::new(recorder.clone()));
        }
        let obs = match sinks.len() {
            0 => Obs::null(),
            1 => Obs::with_subscriber(sinks.pop().unwrap()),
            _ => Obs::with_subscriber(Arc::new(Fanout::new(sinks))),
        };
        if let Some(recorder) = recorder {
            recorder.install_panic_hook();
            obs.install_recorder(recorder);
        }
        if let Some(addr) = &config.addr {
            serve::spawn(obs.clone(), addr)?.detach();
        }
        if let Some(hz) = config.profile_hz {
            span::start_profiler(&obs, hz).detach();
        }
        Ok(obs)
    }

    /// Attaches a windowed-telemetry plane to this handle (and every
    /// clone); `/metrics` then exposes its `*_rate_5s/_1m/_1h` series.
    /// The first installed plane wins; returns `false` if one was
    /// already attached.
    pub fn install_window_plane(&self, plane: Arc<WindowPlane>) -> bool {
        self.inner.health.window.set(plane).is_ok()
    }

    /// The attached windowed-telemetry plane, if any.
    pub fn window_plane(&self) -> Option<Arc<WindowPlane>> {
        self.inner.health.window.get().cloned()
    }

    /// Attaches a fidelity SLO engine; `/health` and `/alerts` then
    /// report its verdicts. First installed engine wins.
    pub fn install_slo_engine(&self, slo: Arc<SloEngine>) -> bool {
        self.inner.health.slo.set(slo).is_ok()
    }

    /// The attached SLO engine, if any.
    pub fn slo_engine(&self) -> Option<Arc<SloEngine>> {
        self.inner.health.slo.get().cloned()
    }

    /// Attaches a hot-loop watchdog; `/health` then reports its status
    /// and a detected stall triggers a flight-recorder dump. First
    /// installed watchdog wins.
    pub fn install_watchdog(&self, watchdog: Arc<Watchdog>) -> bool {
        self.inner.health.watchdog.set(watchdog).is_ok()
    }

    /// The attached watchdog, if any.
    pub fn watchdog(&self) -> Option<Arc<Watchdog>> {
        self.inner.health.watchdog.get().cloned()
    }

    /// Registers a labeled watchdog (e.g. `"shard3"` for a shard
    /// thread's heartbeat). Unlike [`Obs::install_watchdog`] any number
    /// can be registered; `/health` reports each by label so a stall is
    /// attributed to the thread that stopped beating. Re-registering a
    /// label replaces the previous watchdog (a fresh run supersedes a
    /// finished one).
    pub fn register_watchdog(&self, label: &str, watchdog: Arc<Watchdog>) {
        let mut dogs = self
            .inner
            .health
            .watchdogs
            .lock()
            .expect("watchdog registry poisoned");
        if let Some(slot) = dogs.iter_mut().find(|(l, _)| l == label) {
            slot.1 = watchdog;
        } else {
            dogs.push((label.to_string(), watchdog));
        }
    }

    /// All labeled watchdogs, in registration order.
    pub fn watchdogs(&self) -> Vec<(String, Arc<Watchdog>)> {
        self.inner
            .health
            .watchdogs
            .lock()
            .expect("watchdog registry poisoned")
            .clone()
    }

    /// Attaches a flight recorder for trigger access (the recorder
    /// must separately ride in the subscriber chain to capture events;
    /// [`Obs::from_config`] wires both). First installed wins.
    pub fn install_recorder(&self, recorder: Recorder) -> bool {
        self.inner.health.recorder.set(recorder).is_ok()
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.health.recorder.get()
    }

    /// Whether any subscriber wants events for `target`.
    pub fn enabled(&self, target: &str) -> bool {
        self.inner.subscriber.enabled(target)
    }

    /// Delivers a pre-built event.
    pub fn emit(&self, event: &Event) {
        if self.inner.subscriber.enabled(&event.target) {
            self.inner.subscriber.on_event(event);
        }
    }

    /// Builds and delivers an event only if `target` is enabled — the
    /// closure (and thus all field formatting) is skipped under the
    /// null subscriber.
    pub fn emit_with(
        &self,
        target: &'static str,
        kind: EventKind,
        build: impl FnOnce(Event) -> Event,
    ) {
        if self.inner.subscriber.enabled(target) {
            let event = build(Event::new(target, kind));
            self.inner.subscriber.on_event(&event);
        }
    }

    /// The counter named `name` in this handle's registry.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.inner.registry.counter(name)
    }

    /// The histogram named `name` in this handle's registry.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(name)
    }

    /// The counter for label `value` of the labeled family `name` with
    /// label key `key` (e.g. `("dab.recompute", "query", "3")`).
    /// Obtain once at setup, then `inc()` on the hot path — see
    /// [`Registry::labeled_counter`].
    pub fn labeled_counter(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        self.inner.registry.labeled_counter(name, key, value)
    }

    /// The gauge named `name` in this handle's registry.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(name)
    }

    /// Interns `name` into a fixed sharded counter slot for lock-free
    /// recording through a [`LocalCollector`] — see [`sharded`].
    pub fn counter_id(&self, name: &str) -> CounterId {
        self.inner.registry.counter_id(name)
    }

    /// Interns `name` into a fixed sharded histogram slot — see
    /// [`sharded`].
    pub fn histogram_id(&self, name: &str) -> HistogramId {
        self.inner.registry.histogram_id(name)
    }

    /// A thread-private collector cell merged into this handle's
    /// snapshots; obtain one per worker thread — see [`sharded`].
    pub fn collector(&self) -> LocalCollector {
        self.inner.registry.collector()
    }

    /// Pre-resolves the `<name>_ns` histogram and span frame for a
    /// timing span started many times: build the [`Timer`] once on the
    /// setup path, then [`Timer::start`] per measurement without
    /// touching the registry lock.
    pub fn timer(&self, name: &str) -> Timer {
        let metric = format!("{name}_ns");
        Timer {
            hist: self.histogram(&metric),
            metric: Arc::from(metric),
            name: Arc::from(name),
        }
    }

    /// Starts a timing span for `name` (e.g. [`names::GP_SOLVE`]).
    /// When the guard drops, the elapsed nanoseconds are recorded in
    /// the `<name>_ns` histogram and — if a subscriber is listening —
    /// emitted as a `<name>_ns` timing event with `dur_ns`, `span_id`,
    /// and (when nested) `parent` fields. The span participates in
    /// causal parenting and profiler sampling — see [`span`].
    pub fn timed(&self, name: &str) -> TimedGuard {
        self.timer(name).start(self)
    }

    /// Like [`Obs::timed`], but the emitted timing event carries an
    /// attribution field `key=value` (e.g. `query=3`), so offline
    /// analysis can split span durations per query or per item. The
    /// histogram itself stays unlabeled — one series per span name.
    pub fn timed_labeled(&self, name: &str, key: &'static str, value: u64) -> TimedGuard {
        self.timer(name).start_labeled(self, key, value)
    }

    /// A point-in-time copy of every metric in this handle's registry.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.registry.snapshot()
    }

    /// Flushes buffered subscriber output (e.g. the JSONL file).
    pub fn flush(&self) {
        self.inner.subscriber.flush();
    }
}

/// A reusable timing-span template: the `<name>_ns` histogram handle
/// and names, resolved once. Cloning shares the handles.
#[derive(Debug, Clone)]
pub struct Timer {
    metric: Arc<str>,
    name: Arc<str>,
    hist: Arc<Histogram>,
}

impl Timer {
    /// Starts one timing span; same semantics as [`Obs::timed`] minus
    /// the per-call registry resolution.
    pub fn start(&self, obs: &Obs) -> TimedGuard {
        self.start_inner(obs, None)
    }

    /// Starts one labeled timing span; see [`Obs::timed_labeled`].
    pub fn start_labeled(&self, obs: &Obs, key: &'static str, value: u64) -> TimedGuard {
        self.start_inner(obs, Some((key, value)))
    }

    fn start_inner(&self, obs: &Obs, label: Option<(&'static str, u64)>) -> TimedGuard {
        let (span_id, parent) = span::push_span(&self.name);
        TimedGuard {
            obs: obs.clone(),
            metric: self.metric.clone(),
            hist: self.hist.clone(),
            label,
            span_id,
            parent,
            start: Instant::now(),
            _not_send: std::marker::PhantomData,
        }
    }
}

/// Span guard returned by [`Obs::timed`]; records on drop. Not `Send`:
/// the span is tracked on the opening thread's stack, so the guard
/// must drop there too (move a [`SpanContext`] instead to cross
/// threads).
#[derive(Debug)]
pub struct TimedGuard {
    obs: Obs,
    metric: Arc<str>,
    hist: Arc<Histogram>,
    label: Option<(&'static str, u64)>,
    span_id: SpanId,
    parent: Option<SpanId>,
    start: Instant,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl TimedGuard {
    /// This span's process-unique id (e.g. to hand to a [`SpanContext`]
    /// consumer out of band).
    pub fn span_id(&self) -> SpanId {
        self.span_id
    }
}

impl Drop for TimedGuard {
    fn drop(&mut self) {
        let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        span::pop_span();
        self.hist.record(dur_ns);
        if self.obs.enabled(&self.metric) {
            let mut event = Event::new(self.metric.to_string(), EventKind::Timing)
                .with("dur_ns", dur_ns)
                .with("span_id", self.span_id.0);
            if let Some(SpanId(parent)) = self.parent {
                event = event.with("parent", parent);
            }
            if let Some((key, value)) = self.label {
                event = event.with(key, value);
            }
            self.obs.emit(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_emits_nothing_but_counts_metrics() {
        let obs = Obs::null();
        assert!(!obs.enabled(names::GP_SOLVE));
        // The build closure must never run under the null subscriber.
        obs.emit_with(names::GP_SOLVE, EventKind::Point, |_| {
            panic!("event built despite null subscriber")
        });
        obs.counter(names::DAB_RECOMPUTE).inc();
        assert_eq!(obs.snapshot().counters["dab.recompute"], 1);
    }

    #[test]
    fn ring_handle_captures_emitted_events() {
        let (obs, ring) = Obs::ring(16);
        assert!(obs.enabled(names::SIM_REFRESH));
        obs.emit_with(names::SIM_REFRESH, EventKind::Point, |e| {
            e.with("item", 3u64)
        });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target, names::SIM_REFRESH);
        assert_eq!(events[0].field("item"), Some(&Value::U64(3)));
    }

    #[test]
    fn timed_guard_records_histogram_and_event() {
        let (obs, ring) = Obs::ring(16);
        {
            let _span = obs.timed(names::GP_SOLVE);
            std::hint::black_box(0u64);
        }
        let snap = obs.snapshot();
        let hist = &snap.histograms["gp.solve_ns"];
        assert_eq!(hist.count, 1);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target, "gp.solve_ns");
        assert_eq!(events[0].kind, EventKind::Timing);
        assert!(matches!(events[0].field("dur_ns"), Some(Value::U64(_))));
    }

    #[test]
    fn clones_share_subscriber_and_registry() {
        let (obs, ring) = Obs::ring(16);
        let clone = obs.clone();
        clone.counter("shared").inc();
        clone.emit_with("x", EventKind::Count, |e| e);
        assert_eq!(obs.snapshot().counters["shared"], 1);
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn config_roundtrip_through_jsonl_file() {
        let dir = std::env::temp_dir().join("pq-obs-test-config");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let config = ObsConfig {
            jsonl: Some(path.clone()),
            ..ObsConfig::default()
        };
        assert!(!config.is_off());
        let obs = Obs::from_config(&config).unwrap();
        obs.emit_with(names::DAB_RECOMPUTE, EventKind::Count, |e| {
            e.with("query", 0u64).with("reason", "refresh")
        });
        {
            let _span = obs.timed(names::GP_SOLVE);
        }
        obs.flush();
        let contents = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = contents
            .lines()
            .map(|l| crate::jsonl::parse(l).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].target, names::DAB_RECOMPUTE);
        assert_eq!(events[1].target, "gp.solve_ns");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn off_config_yields_null_handle() {
        let obs = Obs::from_config(&ObsConfig::default()).unwrap();
        assert!(!obs.enabled("anything"));
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn nested_timed_guards_emit_parented_span_events() {
        let (obs, ring) = Obs::ring(16);
        {
            let _outer = obs.timed("outer_span");
            let _inner = obs.timed("inner_span");
        }
        let events = ring.events();
        // Guards drop inner-first.
        assert_eq!(events[0].target, "inner_span_ns");
        assert_eq!(events[1].target, "outer_span_ns");
        let outer_id = match events[1].field("span_id") {
            Some(&Value::U64(id)) => id,
            other => panic!("outer span_id missing: {other:?}"),
        };
        assert_eq!(events[1].field("parent"), None);
        assert_eq!(events[0].field("parent"), Some(&Value::U64(outer_id)));
    }

    #[test]
    fn timer_reuses_handles_across_starts() {
        let (obs, ring) = Obs::ring(16);
        let timer = obs.timer("reused_span");
        for _ in 0..3 {
            let _g = timer.start(&obs);
        }
        assert_eq!(obs.snapshot().histograms["reused_span_ns"].count, 3);
        assert_eq!(ring.events().len(), 3);
        // Distinct spans each time.
        let ids: Vec<_> = ring
            .events()
            .iter()
            .map(|e| e.field("span_id").cloned())
            .collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|i| i.is_some()));
        assert_ne!(ids[0], ids[1]);
    }
}
