//! Metrics: monotonic counters and fixed-bucket latency histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s of atomics, so the
//! hot path is a relaxed fetch-add — no lock is held while recording.
//! The [`Registry`] map itself is only locked at handle-creation and
//! snapshot time.
//!
//! Counters additionally support one cheap **label dimension** for cost
//! attribution (e.g. `dab.recompute` broken down by `query`): a labeled
//! counter is obtained once per `(name, key, value)` triple — paying the
//! registry lock at setup — and is then a plain [`Counter`] on the hot
//! path. Each family holds at most [`LABEL_CAPACITY`] distinct label
//! values; later values share a single `_other` overflow counter so a
//! high-cardinality bug cannot balloon memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. Covers the full `u64` range.
const BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically durations in ns) with
/// power-of-two buckets, exact count/sum/min/max, and quantile
/// estimates accurate to within a factor of two.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (used as the quantile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket containing the rank-`ceil(q * count)` sample,
    /// clamped to the exact observed min/max. Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return bucket_upper(i).clamp(lo, hi);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                buckets.push((bucket_upper(i), cumulative));
            }
        }
        HistogramSummary {
            count,
            sum: self.sum(),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time statistics for one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound,
    /// cumulative count ≤ bound)` pairs, ascending — exactly the shape a
    /// Prometheus `_bucket{le=...}` series needs, so exporters never
    /// reconstruct cumulative totals from per-bucket tallies.
    pub buckets: Vec<(u64, u64)>,
}

/// Maximum distinct label values per labeled-counter family; further
/// values fold into the [`LABEL_OVERFLOW`] counter.
pub const LABEL_CAPACITY: usize = 1024;

/// Label value under which out-of-capacity increments accumulate.
pub const LABEL_OVERFLOW: &str = "_other";

/// One labeled-counter family: a metric name with a single label key
/// (e.g. `dab.recompute` by `query`) and a bounded set of label values.
#[derive(Debug)]
struct LabeledFamily {
    key: String,
    values: BTreeMap<String, Arc<Counter>>,
}

/// Get-or-create storage for named counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    labeled: Mutex<BTreeMap<String, LabeledFamily>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// The counter for `(name, key, value)` in the labeled family
    /// `name`, created on first use. The family's label key is fixed by
    /// its first caller; a mismatched key on a later call panics (a
    /// programming error — one family, one dimension).
    ///
    /// Obtain the handle once (setup path), then `inc()` it on the hot
    /// path — recording is the same relaxed fetch-add as a plain
    /// [`Counter`]. Past [`LABEL_CAPACITY`] distinct values the
    /// [`LABEL_OVERFLOW`] counter is returned instead.
    pub fn labeled_counter(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        let mut map = self.labeled.lock().unwrap();
        let family = map
            .entry(name.to_string())
            .or_insert_with(|| LabeledFamily {
                key: key.to_string(),
                values: BTreeMap::new(),
            });
        assert_eq!(
            family.key, key,
            "labeled counter {name:?} registered with key {:?}, asked for {key:?}",
            family.key
        );
        if let Some(c) = family.values.get(value) {
            return c.clone();
        }
        let value = if family.values.len() >= LABEL_CAPACITY {
            LABEL_OVERFLOW
        } else {
            value
        };
        family
            .values
            .entry(value.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// Values of all metrics at this moment, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            labeled: self
                .labeled
                .lock()
                .unwrap()
                .iter()
                .map(|(k, fam)| {
                    (
                        k.clone(),
                        LabeledCounterSnapshot {
                            key: fam.key.clone(),
                            values: fam
                                .values
                                .iter()
                                .map(|(v, c)| (v.clone(), c.get()))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Point-in-time totals of one labeled-counter family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabeledCounterSnapshot {
    /// The family's label key, e.g. `query` or `item`.
    pub key: String,
    /// Totals per label value, sorted by value.
    pub values: BTreeMap<String, u64>,
}

impl LabeledCounterSnapshot {
    /// Sum across all label values (including overflow).
    pub fn total(&self) -> u64 {
        self.values.values().sum()
    }

    /// Totals reassembled into a dense vector for label values that are
    /// decimal indices `0..n` (the per-query / per-item convention);
    /// non-numeric and out-of-range labels are ignored.
    pub fn dense(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for (value, &count) in &self.values {
            if let Ok(i) = value.parse::<usize>() {
                if i < n {
                    out[i] = count;
                }
            }
        }
        out
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Labeled-counter families by name (see [`Registry::labeled_counter`]).
    pub labeled: BTreeMap<String, LabeledCounterSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let registry = Registry::default();
        let c = registry.counter("dab.recompute");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(registry.counter("dab.recompute").get(), 5);
        assert_eq!(registry.counter("other").get(), 0);
    }

    #[test]
    fn histogram_summary_tracks_exact_count_sum_min_max() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_their_bucket() {
        let h = Histogram::default();
        // 1..=1000: true p50 = 500, p95 = 950, p99 = 990.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        // Power-of-two buckets: the estimate is the bucket upper bound,
        // so it is >= the true quantile and < 2x the true quantile.
        assert!((500..1000).contains(&s.p50), "p50 = {}", s.p50);
        assert!((950..=1000).contains(&s.p95), "p95 = {}", s.p95);
        assert!((990..=1000).contains(&s.p99), "p99 = {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = Histogram::default();
        h.record(700);
        let s = h.summary();
        // A single sample: every quantile is exactly that sample, not
        // the bucket bound 1023.
        assert_eq!((s.p50, s.p95, s.p99), (700, 700, 700));
        assert_eq!((s.min, s.max), (700, 700));

        let empty = Histogram::default();
        let s = empty.summary();
        assert_eq!((s.count, s.p50, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn snapshot_collects_all_metrics() {
        let registry = Registry::default();
        registry.counter("a").add(3);
        registry.counter("b").add(1);
        registry.histogram("h").record(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("a"), Some(&3));
        assert_eq!(snap.counters.get("b"), Some(&1));
        assert_eq!(snap.histograms.get("h").unwrap().count, 1);
        assert_eq!(snap.histograms.get("h").unwrap().max, 42);
    }

    #[test]
    fn summary_buckets_are_cumulative_and_end_at_count() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 3, 900] {
            h.record(v);
        }
        let s = h.summary();
        // Buckets: 0 -> 1, [1,2) -> 1, [2,4) -> 2, [512,1024) -> 1.
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (3, 4), (1023, 5)]);
        assert_eq!(s.buckets.last().unwrap().1, s.count);

        let empty = Histogram::default();
        assert!(empty.summary().buckets.is_empty());
    }

    #[test]
    fn labeled_counters_accumulate_per_value() {
        let registry = Registry::default();
        registry
            .labeled_counter("dab.recompute", "query", "0")
            .inc();
        registry
            .labeled_counter("dab.recompute", "query", "1")
            .add(4);
        // Same (name, value) returns the same underlying counter.
        registry
            .labeled_counter("dab.recompute", "query", "0")
            .inc();
        let snap = registry.snapshot();
        let fam = &snap.labeled["dab.recompute"];
        assert_eq!(fam.key, "query");
        assert_eq!(fam.values["0"], 2);
        assert_eq!(fam.values["1"], 4);
        assert_eq!(fam.total(), 6);
        assert_eq!(fam.dense(3), vec![2, 4, 0]);
    }

    #[test]
    fn labeled_counters_overflow_into_other() {
        let registry = Registry::default();
        for i in 0..LABEL_CAPACITY + 10 {
            registry
                .labeled_counter("hot", "item", &i.to_string())
                .inc();
        }
        let snap = registry.snapshot();
        let fam = &snap.labeled["hot"];
        // Capacity distinct values plus one shared overflow slot.
        assert_eq!(fam.values.len(), LABEL_CAPACITY + 1);
        assert_eq!(fam.values[LABEL_OVERFLOW], 10);
        assert_eq!(fam.total(), (LABEL_CAPACITY + 10) as u64);
    }

    #[test]
    #[should_panic(expected = "registered with key")]
    fn labeled_counter_key_mismatch_panics() {
        let registry = Registry::default();
        registry.labeled_counter("m", "query", "0");
        registry.labeled_counter("m", "item", "0");
    }
}
