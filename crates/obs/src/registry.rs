//! Metrics: monotonic counters and fixed-bucket latency histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s of atomics, so the
//! hot path is a relaxed fetch-add — no lock is held while recording.
//! The [`Registry`] map itself is only locked at handle-creation and
//! snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. Covers the full `u64` range.
const BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically durations in ns) with
/// power-of-two buckets, exact count/sum/min/max, and quantile
/// estimates accurate to within a factor of two.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (used as the quantile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket containing the rank-`ceil(q * count)` sample,
    /// clamped to the exact observed min/max. Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return bucket_upper(i).clamp(lo, hi);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics for one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
}

/// Get-or-create storage for named counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Values of all metrics at this moment, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let registry = Registry::default();
        let c = registry.counter("dab.recompute");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(registry.counter("dab.recompute").get(), 5);
        assert_eq!(registry.counter("other").get(), 0);
    }

    #[test]
    fn histogram_summary_tracks_exact_count_sum_min_max() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_their_bucket() {
        let h = Histogram::default();
        // 1..=1000: true p50 = 500, p95 = 950, p99 = 990.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        // Power-of-two buckets: the estimate is the bucket upper bound,
        // so it is >= the true quantile and < 2x the true quantile.
        assert!((500..1000).contains(&s.p50), "p50 = {}", s.p50);
        assert!((950..=1000).contains(&s.p95), "p95 = {}", s.p95);
        assert!((990..=1000).contains(&s.p99), "p99 = {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = Histogram::default();
        h.record(700);
        let s = h.summary();
        // A single sample: every quantile is exactly that sample, not
        // the bucket bound 1023.
        assert_eq!((s.p50, s.p95, s.p99), (700, 700, 700));
        assert_eq!((s.min, s.max), (700, 700));

        let empty = Histogram::default();
        let s = empty.summary();
        assert_eq!((s.count, s.p50, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn snapshot_collects_all_metrics() {
        let registry = Registry::default();
        registry.counter("a").add(3);
        registry.counter("b").add(1);
        registry.histogram("h").record(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("a"), Some(&3));
        assert_eq!(snap.counters.get("b"), Some(&1));
        assert_eq!(snap.histograms.get("h").unwrap().count, 1);
        assert_eq!(snap.histograms.get("h").unwrap().max, 42);
    }
}
