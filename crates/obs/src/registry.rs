//! Metrics: monotonic counters and fixed-bucket latency histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s of atomics, so the
//! hot path is a relaxed fetch-add — no lock is held while recording.
//! The [`Registry`] map itself is only locked at handle-creation and
//! snapshot time.
//!
//! Counters additionally support one cheap **label dimension** for cost
//! attribution (e.g. `dab.recompute` broken down by `query`): a labeled
//! counter is obtained once per `(name, key, value)` triple — paying the
//! registry lock at setup — and is then a plain [`Counter`] on the hot
//! path. Each family holds at most [`LABEL_CAPACITY`] distinct label
//! values; later values share a single `_other` overflow counter so a
//! high-cardinality bug cannot balloon memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::sharded::{CounterId, HistogramId, LocalCollector, ShardSet};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
///
/// Every value guarded by a registry mutex is either an `Arc` handle map
/// or a plain accumulation — there is no invariant a mid-panic writer
/// can leave half-established — so the telemetry plane deliberately
/// keeps serving after one instrumented thread dies. Without this, a
/// single panic would cascade: every later `counter()`/`snapshot()`
/// call on any thread would unwrap a `PoisonError` and bring the whole
/// process down with it.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. Covers the full `u64` range.
const BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically durations in ns) with
/// power-of-two buckets, exact count/sum/min/max, and quantile
/// estimates accurate to within a factor of two.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (used as the quantile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket containing the rank-`ceil(q * count)` sample,
    /// clamped to the exact observed min/max. Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        HistAcc::of(self).quantile(q)
    }

    /// A point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistAcc::of(self).summary()
    }
}

/// A plain-data accumulation of histogram contents, used wherever
/// several histograms (per-thread shard cells, retired cells, the
/// shared handle) must merge into one [`HistogramSummary`]. All
/// summary/quantile math lives here so the merged and single-histogram
/// paths cannot drift.
#[derive(Debug, Clone)]
pub(crate) struct HistAcc {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel while empty, like [`Histogram::min`].
    min: u64,
    max: u64,
}

impl Default for HistAcc {
    fn default() -> Self {
        HistAcc {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistAcc {
    pub(crate) fn of(h: &Histogram) -> Self {
        let mut acc = HistAcc::default();
        acc.absorb(h);
        acc
    }

    /// Folds a live histogram's current contents into this accumulation.
    pub(crate) fn absorb(&mut self, h: &Histogram) {
        for (slot, bucket) in self.buckets.iter_mut().zip(&h.buckets) {
            *slot += bucket.load(Ordering::Relaxed);
        }
        self.count += h.count();
        self.sum = self.sum.wrapping_add(h.sum());
        self.min = self.min.min(h.min.load(Ordering::Relaxed));
        self.max = self.max.max(h.max.load(Ordering::Relaxed));
    }

    /// Folds another accumulation into this one.
    pub(crate) fn merge(&mut self, other: &HistAcc) {
        for (slot, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0 && self.buckets.iter().all(|&n| n == 0)
    }

    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        // Guard the never-recorded sentinel: a concurrent recorder may
        // have bumped `count` before publishing `min`, and `clamp`
        // requires `lo <= hi`.
        let lo = if self.min == u64::MAX { 0 } else { self.min };
        let hi = self.max.max(lo);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(lo, hi);
            }
        }
        self.max
    }

    pub(crate) fn summary(&self) -> HistogramSummary {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                buckets.push((bucket_upper(i), cumulative));
            }
        }
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            // Sentinel, not `count == 0`: a registered-but-never-recorded
            // histogram (and a snapshot racing a first `record`) must
            // report 0, never the `u64::MAX` sentinel.
            min: if self.min == u64::MAX { 0 } else { self.min },
            max: self.max,
            buckets,
        }
    }
}

/// Point-in-time statistics for one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound,
    /// cumulative count ≤ bound)` pairs, ascending — exactly the shape a
    /// Prometheus `_bucket{le=...}` series needs, so exporters never
    /// reconstruct cumulative totals from per-bucket tallies.
    pub buckets: Vec<(u64, u64)>,
}

/// A last-write-wins floating-point level (e.g. `audit.drift_max`):
/// the one metric kind that may go down. Stored as `f64` bits in an
/// atomic, so `set` is a relaxed store and never locks.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Maximum distinct label values per labeled-counter family; further
/// values fold into the [`LABEL_OVERFLOW`] counter.
pub const LABEL_CAPACITY: usize = 1024;

/// Label value under which out-of-capacity increments accumulate.
pub const LABEL_OVERFLOW: &str = "_other";

/// One labeled-counter family: a metric name with a single label key
/// (e.g. `dab.recompute` by `query`) and a bounded set of label values.
#[derive(Debug)]
struct LabeledFamily {
    key: String,
    values: BTreeMap<String, Arc<Counter>>,
}

/// Get-or-create storage for named counters, histograms, and gauges,
/// plus the thread-sharded collector cells (see [`crate::sharded`]).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    labeled: Mutex<BTreeMap<String, LabeledFamily>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    shards: Arc<ShardSet>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_unpoisoned(&self.counters);
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_unpoisoned(&self.histograms);
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// The counter for `(name, key, value)` in the labeled family
    /// `name`, created on first use. The family's label key is fixed by
    /// its first caller; a mismatched key on a later call panics (a
    /// programming error — one family, one dimension).
    ///
    /// Obtain the handle once (setup path), then `inc()` it on the hot
    /// path — recording is the same relaxed fetch-add as a plain
    /// [`Counter`]. Past [`LABEL_CAPACITY`] distinct values the
    /// [`LABEL_OVERFLOW`] counter is returned instead.
    pub fn labeled_counter(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        let mut map = lock_unpoisoned(&self.labeled);
        let family = map
            .entry(name.to_string())
            .or_insert_with(|| LabeledFamily {
                key: key.to_string(),
                values: BTreeMap::new(),
            });
        assert_eq!(
            family.key, key,
            "labeled counter {name:?} registered with key {:?}, asked for {key:?}",
            family.key
        );
        if let Some(c) = family.values.get(value) {
            return c.clone();
        }
        let value = if family.values.len() >= LABEL_CAPACITY {
            LABEL_OVERFLOW
        } else {
            value
        };
        family
            .values
            .entry(value.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_unpoisoned(&self.gauges);
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), g.clone());
        g
    }

    /// Interns `name` into a fixed sharded counter slot — resolve once
    /// at registration, then record through a [`LocalCollector`].
    pub fn counter_id(&self, name: &str) -> CounterId {
        self.shards.counter_id(name)
    }

    /// Interns `name` into a fixed sharded histogram slot.
    pub fn histogram_id(&self, name: &str) -> HistogramId {
        self.shards.histogram_id(name)
    }

    /// A new thread-private collector cell whose contents merge into
    /// this registry's snapshots. See [`crate::sharded`].
    pub fn collector(&self) -> LocalCollector {
        self.shards.collector()
    }

    /// Values of all metrics at this moment, sorted by name. Sharded
    /// collector cells are merged in by name, so consumers see one
    /// total per metric regardless of how it was recorded.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = lock_unpoisoned(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut hist_accs: BTreeMap<String, HistAcc> = lock_unpoisoned(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), HistAcc::of(v)))
            .collect();
        self.shards.merge_into(&mut counters, &mut hist_accs);
        Snapshot {
            counters,
            histograms: hist_accs
                .into_iter()
                .map(|(k, acc)| (k, acc.summary()))
                .collect(),
            labeled: lock_unpoisoned(&self.labeled)
                .iter()
                .map(|(k, fam)| {
                    (
                        k.clone(),
                        LabeledCounterSnapshot {
                            key: fam.key.clone(),
                            values: fam
                                .values
                                .iter()
                                .map(|(v, c)| (v.clone(), c.get()))
                                .collect(),
                        },
                    )
                })
                .collect(),
            gauges: lock_unpoisoned(&self.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
        }
    }
}

/// Point-in-time totals of one labeled-counter family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabeledCounterSnapshot {
    /// The family's label key, e.g. `query` or `item`.
    pub key: String,
    /// Totals per label value, sorted by value.
    pub values: BTreeMap<String, u64>,
}

impl LabeledCounterSnapshot {
    /// Sum across all label values (including overflow).
    pub fn total(&self) -> u64 {
        self.values.values().sum()
    }

    /// Totals reassembled into a dense vector for label values that are
    /// decimal indices `0..n` (the per-query / per-item convention);
    /// non-numeric and out-of-range labels are ignored.
    pub fn dense(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for (value, &count) in &self.values {
            if let Ok(i) = value.parse::<usize>() {
                if i < n {
                    out[i] = count;
                }
            }
        }
        out
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Labeled-counter families by name (see [`Registry::labeled_counter`]).
    pub labeled: BTreeMap<String, LabeledCounterSnapshot>,
    /// Gauge levels by name (see [`Registry::gauge`]).
    pub gauges: BTreeMap<String, f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let registry = Registry::default();
        let c = registry.counter("dab.recompute");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(registry.counter("dab.recompute").get(), 5);
        assert_eq!(registry.counter("other").get(), 0);
    }

    #[test]
    fn histogram_summary_tracks_exact_count_sum_min_max() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_their_bucket() {
        let h = Histogram::default();
        // 1..=1000: true p50 = 500, p95 = 950, p99 = 990.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        // Power-of-two buckets: the estimate is the bucket upper bound,
        // so it is >= the true quantile and < 2x the true quantile.
        assert!((500..1000).contains(&s.p50), "p50 = {}", s.p50);
        assert!((950..=1000).contains(&s.p95), "p95 = {}", s.p95);
        assert!((990..=1000).contains(&s.p99), "p99 = {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = Histogram::default();
        h.record(700);
        let s = h.summary();
        // A single sample: every quantile is exactly that sample, not
        // the bucket bound 1023.
        assert_eq!((s.p50, s.p95, s.p99), (700, 700, 700));
        assert_eq!((s.min, s.max), (700, 700));

        let empty = Histogram::default();
        let s = empty.summary();
        assert_eq!((s.count, s.p50, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn snapshot_collects_all_metrics() {
        let registry = Registry::default();
        registry.counter("a").add(3);
        registry.counter("b").add(1);
        registry.histogram("h").record(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("a"), Some(&3));
        assert_eq!(snap.counters.get("b"), Some(&1));
        assert_eq!(snap.histograms.get("h").unwrap().count, 1);
        assert_eq!(snap.histograms.get("h").unwrap().max, 42);
    }

    #[test]
    fn summary_buckets_are_cumulative_and_end_at_count() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 3, 900] {
            h.record(v);
        }
        let s = h.summary();
        // Buckets: 0 -> 1, [1,2) -> 1, [2,4) -> 2, [512,1024) -> 1.
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (3, 4), (1023, 5)]);
        assert_eq!(s.buckets.last().unwrap().1, s.count);

        let empty = Histogram::default();
        assert!(empty.summary().buckets.is_empty());
    }

    #[test]
    fn labeled_counters_accumulate_per_value() {
        let registry = Registry::default();
        registry
            .labeled_counter("dab.recompute", "query", "0")
            .inc();
        registry
            .labeled_counter("dab.recompute", "query", "1")
            .add(4);
        // Same (name, value) returns the same underlying counter.
        registry
            .labeled_counter("dab.recompute", "query", "0")
            .inc();
        let snap = registry.snapshot();
        let fam = &snap.labeled["dab.recompute"];
        assert_eq!(fam.key, "query");
        assert_eq!(fam.values["0"], 2);
        assert_eq!(fam.values["1"], 4);
        assert_eq!(fam.total(), 6);
        assert_eq!(fam.dense(3), vec![2, 4, 0]);
    }

    #[test]
    fn labeled_counters_overflow_into_other() {
        let registry = Registry::default();
        for i in 0..LABEL_CAPACITY + 10 {
            registry
                .labeled_counter("hot", "item", &i.to_string())
                .inc();
        }
        let snap = registry.snapshot();
        let fam = &snap.labeled["hot"];
        // Capacity distinct values plus one shared overflow slot.
        assert_eq!(fam.values.len(), LABEL_CAPACITY + 1);
        assert_eq!(fam.values[LABEL_OVERFLOW], 10);
        assert_eq!(fam.total(), (LABEL_CAPACITY + 10) as u64);
    }

    #[test]
    #[should_panic(expected = "registered with key")]
    fn labeled_counter_key_mismatch_panics() {
        let registry = Registry::default();
        registry.labeled_counter("m", "query", "0");
        registry.labeled_counter("m", "item", "0");
    }

    #[test]
    fn registered_but_never_recorded_histogram_reports_zero_min() {
        let registry = Registry::default();
        let _h = registry.histogram("gp.solve_ns");
        let s = registry.snapshot();
        let summary = &s.histograms["gp.solve_ns"];
        assert_eq!(summary.count, 0);
        assert_eq!(summary.min, 0, "never the u64::MAX sentinel");
        assert_eq!(summary.max, 0);
    }

    #[test]
    fn gauges_snapshot_last_written_value() {
        let registry = Registry::default();
        let g = registry.gauge("audit.drift_max");
        assert_eq!(g.get(), 0.0);
        g.set(0.25);
        g.set(0.125); // gauges may go down
        registry.gauge("audit.fidelity_loss_pct").set(1.5);
        let s = registry.snapshot();
        assert_eq!(s.gauges["audit.drift_max"], 0.125);
        assert_eq!(s.gauges["audit.fidelity_loss_pct"], 1.5);
    }

    #[test]
    fn sharded_and_handle_counts_merge_under_one_name() {
        let registry = Registry::default();
        registry.counter("sim.refresh").add(2);
        let id = registry.counter_id("sim.refresh");
        let hid = registry.histogram_id("gp.solve_ns");
        registry.histogram("gp.solve_ns").record(10);
        let local = registry.collector();
        local.add(id, 5);
        local.record(hid, 1000);
        let s = registry.snapshot();
        assert_eq!(s.counters["sim.refresh"], 7);
        let h = &s.histograms["gp.solve_ns"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1010, 10, 1000));
        drop(local);
        // Retired cells keep contributing to later snapshots.
        assert_eq!(registry.snapshot().counters["sim.refresh"], 7);
    }

    #[test]
    fn panicking_thread_does_not_poison_the_telemetry_plane() {
        let obs = crate::Obs::null();
        obs.labeled_counter("m", "query", "0").inc();
        let clone = obs.clone();
        let worker = std::thread::spawn(move || {
            // Recording from the doomed thread must survive the panic...
            clone.counter("sim.refresh").add(3);
            // ...and this key-mismatch panic fires while the `labeled`
            // mutex is held, poisoning it the hard way.
            clone.labeled_counter("m", "item", "0");
        });
        assert!(worker.join().is_err(), "worker must have panicked");
        // Every accessor and the snapshot keep working afterwards.
        obs.labeled_counter("m", "query", "1").add(4);
        obs.counter("sim.refresh").inc();
        obs.histogram("gp.solve_ns").record(10);
        obs.gauge("audit.drift_max").set(0.5);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["sim.refresh"], 4);
        assert_eq!(snap.labeled["m"].values["1"], 4);
        assert_eq!(snap.histograms["gp.solve_ns"].count, 1);
        assert_eq!(snap.gauges["audit.drift_max"], 0.5);
    }

    #[test]
    fn merged_histogram_quantiles_match_single_histogram() {
        let registry = Registry::default();
        let hid = registry.histogram_id("h");
        let a = registry.collector();
        let b = registry.collector();
        let single = Histogram::default();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(hid, v)
            } else {
                b.record(hid, v)
            }
            single.record(v);
        }
        let merged = registry.snapshot().histograms["h"].clone();
        assert_eq!(merged, single.summary());
    }
}
