//! Causal span context and the sampling profiler.
//!
//! Every [`crate::Obs::timed`] guard is a **span**: it gets a
//! process-unique [`SpanId`], a parent (the innermost span open on the
//! same thread, or the thread's *ambient parent*), and pushes its name
//! onto two stacks — a plain thread-local one for parent resolution,
//! and a lock-free mirror the [`Profiler`] can sample from another
//! thread. Timing events gain additive `span_id` / `parent` fields, so
//! `pq-trace tree` reconstructs the exact fan-out forest instead of
//! guessing nesting from interval containment.
//!
//! **Propagation across threads** uses [`SpanContext`]: capture it
//! where the work is *caused* (`SpanContext::current()`), move it into
//! the worker closure, and `enter()` it there — spans the worker opens
//! then parent under the capture point. This is how `gp.solve` spans
//! inside the parallel recompute pool chain back to the coordinator's
//! `sim.recompute_batch` span.
//!
//! **Sampling profiler:** [`Profiler`] wakes at a configurable rate,
//! reads every live thread's span-stack mirror, and emits one
//! `profile.sample` Point event per non-empty stack with a folded
//! `stack` field (`root;child;leaf` — the flamegraph input format that
//! `pq-trace profile` aggregates). The mirror is written with a
//! release-store of the depth after the frame, so the sampler sees a
//! consistent prefix; a sample racing a push/pop may be one frame
//! stale, which is noise a profiler tolerates by design. Self-overhead
//! is reported in the `profile.samples` / `profile.overhead_ns`
//! counters.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::event::EventKind;
use crate::Obs;

/// Maximum span nesting mirrored for the profiler; deeper frames still
/// resolve parents correctly but are invisible to sampling.
pub const MAX_SPAN_DEPTH: usize = 32;

/// A process-unique span identifier (never 0, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed))
}

/// Process-global frame-name interner: span names → small ids stored
/// in the sampled stack mirrors. Bounded by the number of distinct
/// span names in the program (a handful), not by span volume.
struct FrameNames {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

fn frame_names() -> &'static Mutex<FrameNames> {
    static NAMES: OnceLock<Mutex<FrameNames>> = OnceLock::new();
    NAMES.get_or_init(|| {
        Mutex::new(FrameNames {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

fn intern_frame_global(name: &str) -> u32 {
    let mut reg = frame_names().lock().unwrap();
    if let Some(&id) = reg.by_name.get(name) {
        return id;
    }
    let id = reg.names.len() as u32;
    reg.names.push(name.to_string());
    reg.by_name.insert(name.to_string(), id);
    id
}

/// Snapshot of all interned frame names (index = frame id).
fn frame_name_table() -> Vec<String> {
    frame_names().lock().unwrap().names.clone()
}

thread_local! {
    /// Per-thread memo of name → frame id, so the global interner lock
    /// is paid once per (thread, span name), not once per span.
    static FRAME_MEMO: RefCell<HashMap<String, u32>> = RefCell::new(HashMap::new());
}

fn intern_frame(name: &str) -> u32 {
    FRAME_MEMO
        .try_with(|memo| {
            if let Some(&id) = memo.borrow().get(name) {
                return id;
            }
            let id = intern_frame_global(name);
            memo.borrow_mut().insert(name.to_string(), id);
            id
        })
        .unwrap_or_else(|_| intern_frame_global(name))
}

/// The lock-free span-stack mirror one thread publishes for sampling.
struct SharedStack {
    label: String,
    /// Logical depth; may exceed [`MAX_SPAN_DEPTH`] (excess frames are
    /// simply not mirrored). Stored with `Release` after the frame
    /// write so samplers reading `Acquire` see initialized frames.
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_SPAN_DEPTH],
    alive: AtomicBool,
}

fn stack_registry() -> &'static Mutex<Vec<Arc<SharedStack>>> {
    static STACKS: OnceLock<Mutex<Vec<Arc<SharedStack>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Thread-local span state: open span ids (for parent resolution), the
/// ambient cross-thread parent, and the shared sampling mirror.
struct ThreadSpans {
    ids: Vec<SpanId>,
    ambient: Option<SpanId>,
    shared: Option<Arc<SharedStack>>,
}

impl ThreadSpans {
    fn shared_stack(&mut self) -> &Arc<SharedStack> {
        self.shared.get_or_insert_with(|| {
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
            let stack = Arc::new(SharedStack {
                label,
                depth: AtomicUsize::new(0),
                frames: std::array::from_fn(|_| AtomicU32::new(0)),
                alive: AtomicBool::new(true),
            });
            stack_registry().lock().unwrap().push(stack.clone());
            stack
        })
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.alive.store(false, Ordering::Release);
        }
    }
}

thread_local! {
    static SPANS: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans {
            ids: Vec::new(),
            ambient: None,
            shared: None,
        })
    };
}

/// Opens a span named `name` on the current thread; returns its id and
/// its parent (innermost open span, or the ambient cross-thread
/// parent). Must be balanced by [`pop_span`].
pub(crate) fn push_span(name: &str) -> (SpanId, Option<SpanId>) {
    let id = next_span_id();
    SPANS
        .try_with(|spans| {
            let mut spans = spans.borrow_mut();
            let parent = spans.ids.last().copied().or(spans.ambient);
            spans.ids.push(id);
            let frame = intern_frame(name);
            let shared = spans.shared_stack();
            let depth = shared.depth.load(Ordering::Relaxed);
            if depth < MAX_SPAN_DEPTH {
                shared.frames[depth].store(frame, Ordering::Relaxed);
            }
            shared.depth.store(depth + 1, Ordering::Release);
            (id, parent)
        })
        // Thread teardown: spans no longer tracked, still usable ids.
        .unwrap_or((id, None))
}

/// Closes the innermost span opened by [`push_span`].
pub(crate) fn pop_span() {
    let _ = SPANS.try_with(|spans| {
        let mut spans = spans.borrow_mut();
        spans.ids.pop();
        if let Some(shared) = &spans.shared {
            let depth = shared.depth.load(Ordering::Relaxed);
            shared
                .depth
                .store(depth.saturating_sub(1), Ordering::Release);
        }
    });
}

/// A capturable causal position: "spans opened under this context are
/// children of span X". `Copy` + `Send`, so it moves into worker
/// closures and across channels for free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    parent: Option<SpanId>,
}

impl SpanContext {
    /// The current causal position on this thread: the innermost open
    /// span, or the already-entered ambient context.
    pub fn current() -> Self {
        let parent = SPANS
            .try_with(|spans| {
                let spans = spans.borrow();
                spans.ids.last().copied().or(spans.ambient)
            })
            .unwrap_or(None);
        SpanContext { parent }
    }

    /// An empty context (spans opened under it are roots).
    pub fn none() -> Self {
        SpanContext { parent: None }
    }

    /// A context parenting under an explicit span id — used to restore
    /// causality after a span id crossed a thread or message-channel
    /// boundary as a raw `u64` (e.g. the sharded engine's inter-shard
    /// rings ship the sender's span id in each message).
    pub fn with_parent(parent: Option<SpanId>) -> Self {
        SpanContext { parent }
    }

    /// The span new children will parent under, if any.
    pub fn parent(&self) -> Option<SpanId> {
        self.parent
    }

    /// Installs this context as the current thread's ambient parent
    /// until the returned guard drops (the previous ambient is
    /// restored, so contexts nest).
    pub fn enter(self) -> SpanContextGuard {
        let prev = SPANS
            .try_with(|spans| {
                let mut spans = spans.borrow_mut();
                std::mem::replace(&mut spans.ambient, self.parent)
            })
            .unwrap_or(None);
        SpanContextGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

/// Restores the previous ambient parent on drop. Not `Send`: the guard
/// must drop on the thread that entered the context.
#[derive(Debug)]
pub struct SpanContextGuard {
    prev: Option<SpanId>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        let _ = SPANS.try_with(|spans| {
            spans.borrow_mut().ambient = prev;
        });
    }
}

/// A background thread sampling every live span stack at a fixed rate.
/// Stop explicitly with [`Profiler::stop`], let it stop on drop, or
/// [`Profiler::detach`] it for the life of the process.
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Starts a sampling profiler emitting into `obs`. `hz` is clamped to
/// `1..=1000`. Each sampling round emits one `profile.sample` event
/// per thread with a non-empty span stack (folded `stack` field plus
/// the thread label) and accounts its own cost in the
/// `profile.samples` and `profile.overhead_ns` counters.
pub fn start_profiler(obs: &Obs, hz: u32) -> Profiler {
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz.clamp(1, 1000)));
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let obs = obs.clone();
    let handle = std::thread::Builder::new()
        .name("pq-obs-profiler".into())
        .spawn(move || {
            let c_samples = obs.counter(crate::names::PROFILE_SAMPLES);
            let c_overhead = obs.counter(crate::names::PROFILE_OVERHEAD_NS);
            let mut names: Vec<String> = Vec::new();
            while !stop_flag.load(Ordering::Relaxed) {
                let round_start = Instant::now();
                let stacks: Vec<Arc<SharedStack>> = {
                    let mut reg = stack_registry().lock().unwrap();
                    reg.retain(|s| s.alive.load(Ordering::Acquire));
                    reg.clone()
                };
                for stack in &stacks {
                    let depth = stack.depth.load(Ordering::Acquire).min(MAX_SPAN_DEPTH);
                    if depth == 0 {
                        continue;
                    }
                    let mut folded = String::new();
                    for frame in stack.frames.iter().take(depth) {
                        let id = frame.load(Ordering::Relaxed) as usize;
                        if id >= names.len() {
                            names = frame_name_table();
                        }
                        if !folded.is_empty() {
                            folded.push(';');
                        }
                        folded.push_str(names.get(id).map_or("?", String::as_str));
                    }
                    c_samples.inc();
                    let label = stack.label.clone();
                    obs.emit_with(crate::names::PROFILE_SAMPLE, EventKind::Point, |e| {
                        e.with("stack", folded).with("thread", label)
                    });
                }
                let spent = round_start.elapsed();
                c_overhead.add(u64::try_from(spent.as_nanos()).unwrap_or(u64::MAX));
                if let Some(rest) = period.checked_sub(spent) {
                    std::thread::sleep(rest);
                }
            }
            obs.flush();
        })
        .expect("spawn pq-obs-profiler thread");
    Profiler {
        stop,
        handle: Some(handle),
    }
}

impl Profiler {
    /// Stops the sampling thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Lets the profiler run for the remaining life of the process.
    pub fn detach(mut self) {
        self.handle.take();
    }

    fn shutdown(&mut self) {
        // Only signal stop while we still own the sampler thread: after
        // `detach` the flag must stay clear or the drop of the handle
        // shell would silently kill the detached thread.
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn nested_spans_resolve_parents_on_one_thread() {
        let (outer, outer_parent) = push_span("outer");
        let (inner, inner_parent) = push_span("inner");
        assert_eq!(inner_parent, Some(outer));
        assert_ne!(outer, inner);
        pop_span();
        pop_span();
        // This test must not observe sibling tests' spans as parents,
        // so only check the relation between our own two spans.
        let _ = outer_parent;
    }

    #[test]
    fn span_context_carries_parent_across_threads() {
        let (root, _) = push_span("root");
        let ctx = SpanContext::current();
        assert_eq!(ctx.parent(), Some(root));
        let observed = std::thread::spawn(move || {
            let _guard = ctx.enter();
            let (_, parent) = push_span("child");
            pop_span();
            parent
        })
        .join()
        .unwrap();
        pop_span();
        assert_eq!(observed, Some(root));
    }

    #[test]
    fn context_guard_restores_previous_ambient() {
        let a = SpanContext {
            parent: Some(SpanId(11)),
        };
        let b = SpanContext {
            parent: Some(SpanId(22)),
        };
        let _ga = a.enter();
        {
            let _gb = b.enter();
            assert_eq!(SpanContext::current().parent(), Some(SpanId(22)));
        }
        assert_eq!(SpanContext::current().parent(), Some(SpanId(11)));
    }

    #[test]
    fn profiler_samples_open_spans() {
        let (obs, ring) = Obs::ring(4096);
        let profiler = start_profiler(&obs, 1000);
        {
            let _outer = obs.timed("prof_outer");
            let _inner = obs.timed("prof_inner");
            std::thread::sleep(Duration::from_millis(50));
        }
        profiler.stop();
        let events = ring.events();
        let sampled: Vec<String> = events
            .iter()
            .filter(|e| e.target == crate::names::PROFILE_SAMPLE)
            .filter_map(|e| match e.field("stack") {
                Some(Value::Str(s)) => Some(s.to_string()),
                _ => None,
            })
            .collect();
        assert!(
            sampled.iter().any(|s| s.contains("prof_outer;prof_inner")),
            "expected a folded prof_outer;prof_inner sample, got {sampled:?}"
        );
        let snap = obs.snapshot();
        assert!(snap.counters[crate::names::PROFILE_SAMPLES] > 0);
        assert!(snap
            .counters
            .contains_key(crate::names::PROFILE_OVERHEAD_NS));
    }

    #[test]
    fn detached_profiler_keeps_sampling() {
        let (obs, _ring) = Obs::ring(64);
        start_profiler(&obs, 1000).detach();
        let _span = obs.timed("detached_work");
        // The detached sampler must survive the drop of its handle
        // shell; poll until it proves it is alive (bounded for CI).
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let snap = obs.snapshot();
            if snap
                .counters
                .get(crate::names::PROFILE_SAMPLES)
                .is_some_and(|&n| n > 0)
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("detached profiler stopped sampling after detach()");
    }
}
