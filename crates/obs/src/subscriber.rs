//! Event sinks.
//!
//! A [`Subscriber`] receives every emitted [`Event`]. The facade asks
//! [`Subscriber::enabled`] *before* constructing an event, so an
//! uninterested sink (notably [`NullSubscriber`]) costs one virtual
//! call and no allocation per instrumentation site.

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An event sink. Implementations must be thread-safe: the simulator
/// and solver may emit from concurrent tests sharing a sink.
pub trait Subscriber: Send + Sync {
    /// Whether this sink wants events for `target`. Returning `false`
    /// lets the facade skip event construction entirely.
    fn enabled(&self, _target: &str) -> bool {
        true
    }

    /// Receives one event.
    fn on_event(&self, event: &Event);

    /// Forces any buffered output to its destination.
    fn flush(&self) {}
}

/// Discards everything; `enabled` is `false` so instrumented code never
/// even builds events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn enabled(&self, _target: &str) -> bool {
        false
    }

    fn on_event(&self, _event: &Event) {}
}

/// Keeps the last `capacity` events in memory; older events are
/// overwritten and counted in [`RingBufferSubscriber::dropped`].
#[derive(Debug)]
pub struct RingBufferSubscriber {
    buf: Mutex<RingState>,
    capacity: usize,
    dropped: AtomicU64,
}

#[derive(Debug)]
struct RingState {
    slots: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
}

impl RingBufferSubscriber {
    /// A ring holding at most `capacity` events (at least one slot).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSubscriber {
            buf: Mutex::new(RingState {
                slots: Vec::with_capacity(capacity.min(1024)),
                head: 0,
            }),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().slots.len()
    }

    /// Whether no events have been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of held events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let state = self.buf.lock().unwrap();
        let mut out = Vec::with_capacity(state.slots.len());
        out.extend_from_slice(&state.slots[state.head..]);
        out.extend_from_slice(&state.slots[..state.head]);
        out
    }
}

impl Subscriber for RingBufferSubscriber {
    fn on_event(&self, event: &Event) {
        let mut state = self.buf.lock().unwrap();
        if state.slots.len() < self.capacity {
            state.slots.push(event.clone());
        } else {
            let head = state.head;
            state.slots[head] = event.clone();
            state.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Renders events as human-readable lines on stderr, keeping stdout
/// clean for result tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_event(&self, event: &Event) {
        use std::fmt::Write as _;
        let mut line = format!("[{}]", event.target);
        for (key, value) in &event.fields {
            match value {
                crate::event::Value::Bool(v) => {
                    let _ = write!(line, " {key}={v}");
                }
                crate::event::Value::U64(v) => {
                    let _ = write!(line, " {key}={v}");
                }
                crate::event::Value::F64(v) => {
                    let _ = write!(line, " {key}={v:.4}");
                }
                crate::event::Value::Str(v) => {
                    let _ = write!(line, " {key}={v}");
                }
            }
        }
        eprintln!("{line}");
    }
}

/// Restricts an inner subscriber to targets starting with any of a set
/// of prefixes.
///
/// Useful in a [`Fanout`]: e.g. render only `bench.` progress events to
/// stderr while a [`crate::JsonlWriter`] records the full trace.
pub struct PrefixFilter {
    inner: Arc<dyn Subscriber>,
    prefixes: Vec<&'static str>,
}

impl PrefixFilter {
    /// Forwards to `inner` only events whose target starts with one of
    /// `prefixes`.
    pub fn new(inner: Arc<dyn Subscriber>, prefixes: Vec<&'static str>) -> Self {
        PrefixFilter { inner, prefixes }
    }
}

impl Subscriber for PrefixFilter {
    fn enabled(&self, target: &str) -> bool {
        self.prefixes.iter().any(|p| target.starts_with(p)) && self.inner.enabled(target)
    }

    fn on_event(&self, event: &Event) {
        if self.enabled(&event.target) {
            self.inner.on_event(event);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Duplicates every event to each inner subscriber.
pub struct Fanout {
    sinks: Vec<Arc<dyn Subscriber>>,
}

impl Fanout {
    /// A subscriber forwarding to all of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Subscriber>>) -> Self {
        Fanout { sinks }
    }
}

impl Subscriber for Fanout {
    fn enabled(&self, target: &str) -> bool {
        self.sinks.iter().any(|s| s.enabled(target))
    }

    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            if sink.enabled(&event.target) {
                sink.on_event(event);
            }
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn event(n: u64) -> Event {
        Event::new("test", EventKind::Point).with("n", n)
    }

    #[test]
    fn null_subscriber_disables_all_targets() {
        let null = NullSubscriber;
        assert!(!null.enabled("gp.solve"));
        assert!(!null.enabled("anything"));
        null.on_event(&event(0)); // must be a harmless no-op
    }

    #[test]
    fn ring_holds_events_until_capacity() {
        let ring = RingBufferSubscriber::new(8);
        assert!(ring.is_empty());
        for n in 0..5 {
            ring.on_event(&event(n));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let held: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e.field("n") {
                Some(crate::event::Value::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(held, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = RingBufferSubscriber::new(3);
        for n in 0..10 {
            ring.on_event(&event(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let held: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e.field("n") {
                Some(crate::event::Value::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(held, vec![7, 8, 9], "oldest first after wrapping");
    }

    #[test]
    fn prefix_filter_passes_only_matching_targets() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let filtered = PrefixFilter::new(ring.clone(), vec!["bench.", "sim.run"]);
        assert!(filtered.enabled("bench.run"));
        assert!(filtered.enabled("sim.run_end"));
        assert!(!filtered.enabled("gp.newton"));
        filtered.on_event(&Event::new("bench.run", EventKind::Point));
        filtered.on_event(&Event::new("gp.newton", EventKind::Point));
        let held = ring.events();
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].target, "bench.run");
    }

    #[test]
    fn fanout_delivers_to_every_interested_sink() {
        let a = Arc::new(RingBufferSubscriber::new(4));
        let b = Arc::new(RingBufferSubscriber::new(4));
        let fan = Fanout::new(vec![a.clone(), b.clone(), Arc::new(NullSubscriber)]);
        assert!(fan.enabled("x"));
        fan.on_event(&event(1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        let empty = Fanout::new(vec![Arc::new(NullSubscriber)]);
        assert!(!empty.enabled("x"), "all-null fanout disables targets");
    }
}
