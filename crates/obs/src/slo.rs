//! Fidelity SLO engine: error budgets and multi-window burn-rate
//! alerts over the live fidelity stream.
//!
//! The paper's headline metric — the fraction of time every query's
//! value stays inside its quantified accuracy bound — is exactly a
//! service-level objective over a continuously maintained view. This
//! module turns the per-tick fidelity samples, the per-query QAB
//! violation counters, and the PR 6 audit stream into an ops story:
//!
//! * an **error budget** per query book: with target availability `t`,
//!   the budget is the `1 - t` fraction of query-samples allowed to
//!   violate their QAB over the run;
//! * **burn rate**: the windowed violation ratio divided by the budget
//!   — burn 1 spends the budget exactly at the allowed pace, burn 14
//!   exhausts it 14× too fast;
//! * **multi-window alerts** (the classic SRE pairing): an alert needs
//!   the burn to exceed its factor in *both* a short and a long window
//!   — the long window proves the regression is sustained, the short
//!   window makes the alert clear quickly once the problem stops. The
//!   fast pair (5 s / 1 m) pages on sharp regressions; the slow pair
//!   (1 m / 1 h) catches smoldering ones.
//! * an **audit-integrity objective** with zero budget: the delta plane
//!   disagreeing with the naive shadow evaluation
//!   ([`crate::names::AUDIT_DIVERGENCE`]) is always a bug, so any
//!   divergence is an infinite burn and raises immediately.
//!
//! The engine is driven by the same caller-owned clock as
//! [`crate::window`] (one unit = one simulated second), so alerting is
//! deterministic on a fixed seed. Feed it per-tick deltas with
//! [`SloEngine::observe`]; newly raised alerts come back to the caller,
//! which is where the flight-recorder dump trigger lives.
//!
//! A [`Watchdog`] rides along: the coordinator hot loop heartbeats it,
//! and `/health` flags a coordinator that stopped processing (a stall
//! no throughput metric can distinguish from a quiet workload).

use crate::registry::{lock_unpoisoned, Counter, Gauge};
use crate::window::{WindowedCounter, WINDOW_1H, WINDOW_1M, WINDOW_5S};
use crate::{names, Obs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One burn-rate alerting pair: short and long windows (clock units)
/// plus the burn factor both must exceed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// The short window (fast clear).
    pub short: u64,
    /// The long window (sustained evidence).
    pub long: u64,
    /// Burn-rate threshold; both windows must burn at least this fast.
    pub factor: f64,
}

/// Configuration of the fidelity SLO engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Target fidelity: the fraction of query-samples that must sit
    /// inside their QAB. The error budget is `1 - target`.
    pub target: f64,
    /// The paging pair: 5 s / 1 m at burn 14.4 by default (exhausts a
    /// month-scaled budget in ~2 days; here it simply means "two orders
    /// of magnitude over budget, right now").
    pub fast: BurnWindow,
    /// The ticket pair: 1 m / 1 h at burn 6 by default.
    pub slow: BurnWindow,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target: 0.9,
            fast: BurnWindow {
                short: WINDOW_5S,
                long: WINDOW_1M,
                factor: 14.4,
            },
            slow: BurnWindow {
                short: WINDOW_1M,
                long: WINDOW_1H,
                factor: 6.0,
            },
        }
    }
}

/// What kind of SLO alert fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The fast (paging) burn-rate pair exceeded its factor.
    FastBurn,
    /// The slow (ticket) burn-rate pair exceeded its factor.
    SlowBurn,
    /// The audit stream reported delta-vs-naive divergence (zero-budget
    /// objective: any occurrence alerts).
    AuditDivergence,
}

impl AlertKind {
    /// Stable lowercase identifier used in events and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::FastBurn => "fast_burn",
            AlertKind::SlowBurn => "slow_burn",
            AlertKind::AuditDivergence => "audit_divergence",
        }
    }
}

/// One raised (and possibly since-cleared) alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotonic id, unique within this engine.
    pub id: u64,
    /// Which objective fired.
    pub kind: AlertKind,
    /// Clock value when the alert was raised.
    pub raised_at: u64,
    /// Clock value when it cleared, `None` while active.
    pub cleared_at: Option<u64>,
    /// Burn rate in the pair's short window at raise time.
    pub burn_short: f64,
    /// Burn rate in the pair's long window at raise time.
    pub burn_long: f64,
    /// Human-readable one-liner.
    pub message: String,
}

impl Alert {
    /// Whether the alert is still firing.
    pub fn is_active(&self) -> bool {
        self.cleared_at.is_none()
    }
}

/// Aggregate health verdict, the `/health` payload's core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// No active alerts.
    Ok,
    /// At least one active alert.
    Degraded,
}

impl Health {
    /// Stable lowercase identifier used in the `/health` payload.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
        }
    }
}

/// Bound on remembered (cleared) alerts; active ones are always kept.
const ALERT_HISTORY_CAP: usize = 256;

struct SloInner {
    now: u64,
    samples: WindowedCounter,
    violations: WindowedCounter,
    divergences: WindowedCounter,
    total_samples: u64,
    total_violations: u64,
    alerts: Vec<Alert>,
    next_id: u64,
}

/// The engine: windowed good/bad accounting, alert lifecycle, and the
/// registry mirror (gauges `slo.burn_rate_fast` / `slo.burn_rate_slow`
/// / `slo.error_budget_remaining`, counter `slo.alerts_raised`).
pub struct SloEngine {
    cfg: SloConfig,
    inner: Mutex<SloInner>,
    g_burn_fast: Arc<Gauge>,
    g_burn_slow: Arc<Gauge>,
    g_budget: Arc<Gauge>,
    c_raised: Arc<Counter>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_unpoisoned(&self.inner);
        f.debug_struct("SloEngine")
            .field("cfg", &self.cfg)
            .field("now", &inner.now)
            .field("alerts", &inner.alerts.len())
            .finish()
    }
}

impl SloEngine {
    /// A fresh engine at clock 0, mirroring into `obs`'s registry.
    pub fn new(cfg: SloConfig, obs: &Obs) -> Self {
        let engine = SloEngine {
            cfg,
            inner: Mutex::new(SloInner {
                now: 0,
                samples: WindowedCounter::new(),
                violations: WindowedCounter::new(),
                divergences: WindowedCounter::new(),
                total_samples: 0,
                total_violations: 0,
                alerts: Vec::new(),
                next_id: 0,
            }),
            g_burn_fast: obs.gauge(names::SLO_BURN_FAST),
            g_burn_slow: obs.gauge(names::SLO_BURN_SLOW),
            g_budget: obs.gauge(names::SLO_BUDGET_REMAINING),
            c_raised: obs.counter(names::SLO_ALERTS_RAISED),
        };
        engine.g_budget.set(1.0);
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Advances the clock to `now`, accounts one tick's deltas
    /// (`samples` query-samples taken, of which `violations` were
    /// outside their QAB, plus `divergences` audit divergences), and
    /// runs the alert lifecycle. Returns the alerts *newly raised* by
    /// this observation — the caller's cue to dump the flight recorder.
    pub fn observe(&self, now: u64, samples: u64, violations: u64, divergences: u64) -> Vec<Alert> {
        let budget = (1.0 - self.cfg.target).max(0.0);
        let mut inner = lock_unpoisoned(&self.inner);
        let inner = &mut *inner;
        inner.now = inner.now.max(now);
        let now = inner.now;
        inner.samples.advance(now);
        inner.violations.advance(now);
        inner.divergences.advance(now);
        if samples > 0 {
            inner.samples.record(samples);
        }
        if violations > 0 {
            inner.violations.record(violations);
        }
        if divergences > 0 {
            inner.divergences.record(divergences);
        }
        inner.total_samples += samples;
        inner.total_violations += violations;

        let burn = |window: u64| -> f64 {
            let s = inner.samples.sum(window);
            if s == 0 {
                return 0.0;
            }
            let ratio = inner.violations.sum(window) as f64 / s as f64;
            if budget > 0.0 {
                ratio / budget
            } else if ratio > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        };
        let fast = (burn(self.cfg.fast.short), burn(self.cfg.fast.long));
        let slow = (burn(self.cfg.slow.short), burn(self.cfg.slow.long));
        self.g_burn_fast.set(fast.1);
        self.g_burn_slow.set(slow.1);
        self.g_budget
            .set(if inner.total_samples == 0 || budget <= 0.0 {
                1.0
            } else {
                1.0 - (inner.total_violations as f64 / inner.total_samples as f64) / budget
            });

        let divergences_recent = inner.divergences.sum(self.cfg.fast.long);
        let mut raised = Vec::new();
        let conditions = [
            (
                AlertKind::FastBurn,
                fast.0 >= self.cfg.fast.factor && fast.1 >= self.cfg.fast.factor,
                fast,
            ),
            (
                AlertKind::SlowBurn,
                slow.0 >= self.cfg.slow.factor && slow.1 >= self.cfg.slow.factor,
                slow,
            ),
            (
                AlertKind::AuditDivergence,
                divergences_recent > 0,
                (divergences_recent as f64, divergences_recent as f64),
            ),
        ];
        for (kind, active, (burn_short, burn_long)) in conditions {
            let open = inner
                .alerts
                .iter_mut()
                .find(|a| a.kind == kind && a.is_active());
            match (open, active) {
                (None, true) => {
                    // The message is only built on the raise transition —
                    // this runs once per tick in the engine hot loop, and
                    // formatting three strings per tick is pure waste on
                    // the (overwhelmingly common) quiet path.
                    let message = match kind {
                        AlertKind::FastBurn => format!(
                            "fidelity burn {:.1}x budget over {}s and {:.1}x over {}s (factor {})",
                            fast.0,
                            self.cfg.fast.short,
                            fast.1,
                            self.cfg.fast.long,
                            self.cfg.fast.factor
                        ),
                        AlertKind::SlowBurn => format!(
                            "fidelity burn {:.1}x budget over {}s and {:.1}x over {}s (factor {})",
                            slow.0,
                            self.cfg.slow.short,
                            slow.1,
                            self.cfg.slow.long,
                            self.cfg.slow.factor
                        ),
                        AlertKind::AuditDivergence => format!(
                            "{divergences_recent} audit divergence(s) in the last {}s — \
                             the delta plane disagrees with the naive shadow evaluation",
                            self.cfg.fast.long
                        ),
                    };
                    let alert = Alert {
                        id: inner.next_id,
                        kind,
                        raised_at: now,
                        cleared_at: None,
                        burn_short,
                        burn_long,
                        message,
                    };
                    inner.next_id += 1;
                    self.c_raised.inc();
                    raised.push(alert.clone());
                    inner.alerts.push(alert);
                }
                (Some(alert), false) => alert.cleared_at = Some(now),
                _ => {}
            }
        }
        // Bound the history: drop the oldest *cleared* alerts first.
        while inner.alerts.len() > ALERT_HISTORY_CAP {
            match inner.alerts.iter().position(|a| !a.is_active()) {
                Some(i) => {
                    inner.alerts.remove(i);
                }
                None => break,
            }
        }
        raised
    }

    /// Every remembered alert, oldest first (active and cleared).
    pub fn alerts(&self) -> Vec<Alert> {
        lock_unpoisoned(&self.inner).alerts.clone()
    }

    /// The currently firing alerts.
    pub fn active_alerts(&self) -> Vec<Alert> {
        lock_unpoisoned(&self.inner)
            .alerts
            .iter()
            .filter(|a| a.is_active())
            .cloned()
            .collect()
    }

    /// Aggregate verdict plus the active alert count.
    pub fn health(&self) -> (Health, usize) {
        let active = lock_unpoisoned(&self.inner)
            .alerts
            .iter()
            .filter(|a| a.is_active())
            .count();
        if active == 0 {
            (Health::Ok, 0)
        } else {
            (Health::Degraded, active)
        }
    }

    /// Fraction of the run's error budget still unspent (1.0 with no
    /// samples; negative when overspent).
    pub fn error_budget_remaining(&self) -> f64 {
        self.g_budget.get()
    }
}

/// Where a [`Watchdog`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogStatus {
    /// Never beaten, or explicitly disarmed (run finished cleanly).
    Disarmed,
    /// Beating within the stall threshold.
    Ok,
    /// Armed but silent past the threshold: the loop that promised to
    /// heartbeat has stalled.
    Stalled,
}

impl WatchdogStatus {
    /// Stable lowercase identifier used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            WatchdogStatus::Disarmed => "disarmed",
            WatchdogStatus::Ok => "ok",
            WatchdogStatus::Stalled => "stalled",
        }
    }
}

/// A hot-loop heartbeat monitor. The monitored loop calls
/// [`Watchdog::beat`] every iteration (one relaxed store); `/health`
/// calls [`Watchdog::status`] at scrape time. No background thread —
/// detection happens at observation, which is when anyone cares.
#[derive(Debug)]
pub struct Watchdog {
    /// Wall-clock ns ([`crate::now_ns`]) of the last beat.
    last_beat_ns: AtomicU64,
    stall_after_ns: u64,
    armed: AtomicBool,
    /// Set once the first stall has been reported (the flight-recorder
    /// dump trigger must not fire on every scrape).
    stall_reported: AtomicBool,
}

impl Watchdog {
    /// A watchdog that reports a stall after `stall_after` without a
    /// beat. Disarmed until the first beat.
    pub fn new(stall_after: std::time::Duration) -> Self {
        Watchdog {
            last_beat_ns: AtomicU64::new(0),
            stall_after_ns: u64::try_from(stall_after.as_nanos()).unwrap_or(u64::MAX),
            armed: AtomicBool::new(false),
            stall_reported: AtomicBool::new(false),
        }
    }

    /// Records a heartbeat (and arms the watchdog). A beat ends any
    /// stall episode, so the next stall reports again.
    pub fn beat(&self) {
        self.last_beat_ns.store(crate::now_ns(), Ordering::Relaxed);
        self.armed.store(true, Ordering::Relaxed);
        self.stall_reported.store(false, Ordering::Relaxed);
    }

    /// Disarms the watchdog — a loop that finished cleanly is not
    /// stalled, however long ago its last beat was.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// The current status against the live clock.
    pub fn status(&self) -> WatchdogStatus {
        self.status_at(crate::now_ns())
    }

    /// The status as of `now_ns` — the deterministic test entry point.
    pub fn status_at(&self, now_ns: u64) -> WatchdogStatus {
        if !self.armed.load(Ordering::Relaxed) {
            return WatchdogStatus::Disarmed;
        }
        let last = self.last_beat_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) > self.stall_after_ns {
            WatchdogStatus::Stalled
        } else {
            WatchdogStatus::Ok
        }
    }

    /// True exactly once per stall episode: the first caller to observe
    /// a stall gets `true` (and should trigger the postmortem dump);
    /// later observers get `false`. A beat re-arms the report.
    pub fn should_report_stall(&self) -> bool {
        if self.status() != WatchdogStatus::Stalled {
            self.stall_reported.store(false, Ordering::Relaxed);
            return false;
        }
        !self.stall_reported.swap(true, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(target: f64) -> (SloEngine, Obs) {
        let obs = Obs::null();
        let cfg = SloConfig {
            target,
            ..SloConfig::default()
        };
        (SloEngine::new(cfg, &obs), obs)
    }

    #[test]
    fn clean_stream_raises_nothing() {
        let (slo, obs) = engine(0.9);
        for t in 1..=200 {
            assert!(slo.observe(t, 10, 0, 0).is_empty());
        }
        assert_eq!(slo.health(), (Health::Ok, 0));
        assert!(slo.alerts().is_empty());
        assert_eq!(slo.error_budget_remaining(), 1.0);
        assert_eq!(obs.snapshot().counters[names::SLO_ALERTS_RAISED], 0);
    }

    #[test]
    fn violations_under_budget_do_not_alert() {
        // 5% violations against a 10% budget: burn 0.5, no alert.
        let (slo, _obs) = engine(0.9);
        for t in 1..=600 {
            let v = u64::from(t % 20 == 0);
            assert!(slo.observe(t, 1, v, 0).is_empty());
        }
        assert_eq!(slo.health(), (Health::Ok, 0));
        assert!(slo.error_budget_remaining() > 0.4);
    }

    #[test]
    fn sustained_burn_raises_fast_then_clears() {
        // 100% violations against a 1% budget: burn 100 exceeds both
        // the fast (14.4) and slow (6) factors, so both pairs page.
        let (slo, obs) = engine(0.99);
        let mut raised: Vec<(AlertKind, u64)> = Vec::new();
        for t in 1..=120 {
            for a in slo.observe(t, 10, 10, 0) {
                assert!(a.burn_short >= 6.0 && a.burn_long >= 6.0);
                raised.push((a.kind, t));
            }
        }
        assert_eq!(
            raised,
            vec![(AlertKind::FastBurn, 1), (AlertKind::SlowBurn, 1)],
            "both pairs fire as soon as every window agrees"
        );
        assert_eq!(slo.health(), (Health::Degraded, 2));
        assert!(slo.error_budget_remaining() < 0.0, "budget overspent");
        assert_eq!(obs.snapshot().counters[names::SLO_ALERTS_RAISED], 2);
        assert!(obs.snapshot().gauges[names::SLO_BURN_FAST] > 14.4);

        // Recovery: an alert clears as soon as *either* of its windows
        // drops under the factor — the short window is what makes that
        // fast (5 s for the paging pair, 1 m for the ticket pair).
        for t in 121..=400 {
            slo.observe(t, 10, 0, 0);
        }
        assert_eq!(slo.health(), (Health::Ok, 0));
        let history = slo.alerts();
        assert_eq!(history.len(), 2);
        let cleared: std::collections::BTreeMap<_, _> = history
            .iter()
            .map(|a| (a.kind.as_str(), a.cleared_at.expect("cleared")))
            .collect();
        assert!(cleared["fast_burn"] <= 121 + 6, "{cleared:?}");
        assert!(cleared["slow_burn"] <= 121 + 60, "{cleared:?}");
    }

    #[test]
    fn short_blip_does_not_page() {
        // One violating tick in an otherwise clean stream: the 5 s
        // window spikes but the 1 m window never crosses the factor.
        let (slo, _obs) = engine(0.99);
        for t in 1..=120 {
            let bad = if t == 60 { 10 } else { 0 };
            assert!(slo.observe(t, 10, bad, 0).is_empty(), "paged at t={t}");
        }
        assert_eq!(slo.health(), (Health::Ok, 0));
    }

    #[test]
    fn slow_burn_catches_smoldering_regressions() {
        // 10% violations against a 1% budget is burn 10: above the
        // slow factor 6, below the fast factor 14.4 — only the slow
        // pair may page. (While the 1 m window is still warming up the
        // ratio dips below the factor between violating ticks, so the
        // alert can legitimately flap once or twice before t=60; what
        // matters is that every page is a SlowBurn and it is still
        // active after an hour of smoldering.)
        let (slo, _obs) = engine(0.99);
        let mut kinds = Vec::new();
        for t in 1..=3700 {
            let bad = u64::from(t % 10 == 0) * 10;
            for a in slo.observe(t, 10, bad, 0) {
                kinds.push(a.kind);
            }
        }
        assert!(!kinds.is_empty(), "slow burn never fired");
        assert!(
            kinds.iter().all(|k| *k == AlertKind::SlowBurn),
            "only the slow pair may page on a smoldering burn: {kinds:?}"
        );
        assert_eq!(slo.health().0, Health::Degraded);
    }

    #[test]
    fn any_divergence_alerts_immediately_and_ages_out() {
        let (slo, _obs) = engine(0.9);
        for t in 1..=50 {
            assert!(slo.observe(t, 10, 0, 0).is_empty());
        }
        let new = slo.observe(51, 10, 0, 1);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].kind, AlertKind::AuditDivergence);
        assert_eq!(slo.health(), (Health::Degraded, 1));
        // No repeat alert while it stays active.
        assert!(slo.observe(52, 10, 0, 1).is_empty());
        // Clears once the divergence leaves the 1 m window.
        for t in 53..=120 {
            slo.observe(t, 10, 0, 0);
        }
        assert_eq!(slo.health(), (Health::Ok, 0));
        assert_eq!(slo.alerts().len(), 1);
        assert!(!slo.alerts()[0].is_active());
    }

    #[test]
    fn zero_budget_makes_any_violation_infinite_burn() {
        let (slo, _obs) = engine(1.0);
        for t in 1..=10 {
            slo.observe(t, 10, 1, 0);
        }
        assert_eq!(slo.health().0, Health::Degraded);
        assert_eq!(
            slo.error_budget_remaining(),
            1.0,
            "undefined budget stays 1"
        );
    }

    #[test]
    fn watchdog_lifecycle() {
        let w = Watchdog::new(std::time::Duration::from_millis(10));
        assert_eq!(w.status(), WatchdogStatus::Disarmed);
        assert!(!w.should_report_stall());
        w.beat();
        let base = crate::now_ns();
        assert_eq!(w.status_at(base), WatchdogStatus::Ok);
        assert_eq!(
            w.status_at(base + 50_000_000),
            WatchdogStatus::Stalled,
            "50ms past a 10ms threshold"
        );
        w.disarm();
        assert_eq!(w.status_at(base + 50_000_000), WatchdogStatus::Disarmed);
    }

    #[test]
    fn stall_reports_exactly_once_per_episode() {
        let w = Watchdog::new(std::time::Duration::ZERO);
        w.beat();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(w.should_report_stall());
        assert!(!w.should_report_stall(), "second observer stays quiet");
        w.beat(); // recovery...
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(w.should_report_stall(), "...re-arms the report");
    }

    #[test]
    fn alert_history_is_bounded() {
        let (slo, _obs) = engine(0.9);
        let mut t = 0;
        for _ in 0..(ALERT_HISTORY_CAP + 40) {
            // One divergence raises; 61 clean ticks clear it.
            t += 1;
            slo.observe(t, 1, 0, 1);
            t += 61;
            slo.observe(t, 1, 0, 0);
        }
        assert!(slo.alerts().len() <= ALERT_HISTORY_CAP);
        assert_eq!(slo.health().0, Health::Ok);
    }
}
