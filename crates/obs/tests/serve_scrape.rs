//! Integration test: scrape a live `/metrics` endpoint over a real TCP
//! socket and validate the Prometheus text exposition format line by
//! line, exactly as an external scraper would see it.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;

use pq_obs::Obs;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Validates one Prometheus text document: every line is either a
/// `# TYPE` comment or a `series value` sample; series names are legal;
/// every sample's base name was declared by a TYPE line; label values
/// are quoted. Returns the set of sampled series names.
fn validate_prometheus(body: &str) -> HashSet<String> {
    let mut declared = HashSet::new();
    let mut sampled = HashSet::new();
    for line in body.lines() {
        assert!(!line.is_empty(), "no blank lines in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE has a metric name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary"),
                "unknown TYPE kind in: {line}"
            );
            declared.insert(name.to_string());
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "only TYPE comments expected: {line}"
        );
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value must be numeric: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.is_empty()
                && !name.chars().next().unwrap().is_ascii_digit(),
            "illegal metric name: {name}"
        );
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed label block: {series}"
                );
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
                    assert!(v.starts_with('"') && v.ends_with('"'), "unquoted: {pair}");
                }
            }
        }
        // Histogram series suffixes resolve to their declared base name.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .unwrap_or(name);
        assert!(
            declared.contains(base) || declared.contains(name),
            "sample {name} has no TYPE declaration"
        );
        sampled.insert(name.to_string());
    }
    sampled
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let obs = Obs::null();
    // Populate the registry the way an instrumented run does: plain
    // counters, per-query and per-item labeled families, histograms.
    obs.counter("sim.refresh").add(41);
    for q in 0..3u32 {
        obs.labeled_counter(
            pq_obs::names::DAB_RECOMPUTE,
            pq_obs::names::LABEL_QUERY,
            &q.to_string(),
        )
        .add(u64::from(q) + 1);
    }
    obs.labeled_counter("sim.refresh", pq_obs::names::LABEL_ITEM, "7")
        .add(41);
    for v in [150u64, 3_000, 3_000, 80_000] {
        obs.histogram("gp.solve_ns").record(v);
    }

    let server = pq_obs::serve::spawn(obs, "127.0.0.1:0").expect("bind ephemeral port");
    let (head, body) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "prometheus content type: {head}"
    );

    let sampled = validate_prometheus(&body);
    for expected in [
        "pq_dab_recompute_total",
        "pq_gp_solve_ns_bucket",
        "pq_gp_solve_ns_sum",
        "pq_gp_solve_ns_count",
        "pq_gp_solve_ns_max",
    ] {
        assert!(sampled.contains(expected), "missing series {expected}");
    }
    // Per-query attribution series with exact totals.
    assert!(body.contains("pq_dab_recompute_total{query=\"0\"} 1\n"));
    assert!(body.contains("pq_dab_recompute_total{query=\"2\"} 3\n"));
    // Exact count/sum from the histogram fields, not bucket arithmetic.
    assert!(body.contains("pq_gp_solve_ns_sum 86150\n"));
    assert!(body.contains("pq_gp_solve_ns_count 4\n"));
    assert!(body.contains("pq_gp_solve_ns_bucket{le=\"+Inf\"} 4\n"));
    server.shutdown();
}

#[test]
fn snapshot_endpoint_serves_json_mirror() {
    let obs = Obs::null();
    obs.counter("sim.refresh").add(2);
    obs.labeled_counter("sim.refresh", "item", "0").add(2);
    let server = pq_obs::serve::spawn(obs, "127.0.0.1:0").unwrap();
    let (head, body) = http_get(server.addr(), "/snapshot");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("application/json"));
    assert!(body.contains("\"sim.refresh\":2"));
    assert!(body.contains("\"key\":\"item\""));
    server.shutdown();
}

#[test]
fn obs_config_addr_spawns_detached_exporter() {
    // Pick a free port first, then hand it to ObsConfig.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let config = pq_obs::ObsConfig {
        addr: Some(addr.to_string()),
        ..Default::default()
    };
    assert!(!config.is_off());
    let obs = Obs::from_config(&config).expect("bind configured addr");
    obs.counter("sim.refresh").inc();
    // Give the detached thread a beat if the OS is slow to hand over.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(body.contains("pq_sim_refresh_total 1"));
}
