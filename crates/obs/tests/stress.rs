//! Concurrency stress for the registry/collector merge: writer threads
//! hammer handle-based and sharded counters + histograms while a reader
//! snapshots continuously. Asserts the two guarantees the sharded plane
//! documents: no lost (or double-counted) increments, and monotone
//! totals across successive snapshots — including across collector
//! retirement, which moves a cell's counts from the live sum into the
//! retired accumulator mid-run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pq_obs::Obs;

const WRITERS: usize = 8;
const ROUNDS: u64 = 20_000;

#[test]
fn concurrent_writers_lose_nothing_and_totals_stay_monotone() {
    let obs = Obs::null();
    let counter_id = obs.counter_id("stress.sharded");
    let hist_id = obs.histogram_id("stress.sharded_ns");
    let handle_counter = obs.counter("stress.handle");
    let handle_hist = obs.histogram("stress.handle_ns");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let obs = obs.clone();
            let handle_counter = handle_counter.clone();
            let handle_hist = handle_hist.clone();
            writers.push(s.spawn(move || {
                // Half the writers retire their collector mid-run and
                // continue on a fresh one, exercising the fold path
                // while the reader snapshots.
                let mut local = obs.collector();
                for i in 0..ROUNDS {
                    local.inc(counter_id);
                    local.record(hist_id, i % 1024);
                    handle_counter.inc();
                    handle_hist.record(i % 512);
                    if w % 2 == 0 && i == ROUNDS / 2 {
                        local = obs.collector();
                    }
                }
            }));
        }

        let reader = {
            let obs = obs.clone();
            let done = done.clone();
            s.spawn(move || {
                let mut last_sharded = 0u64;
                let mut last_handle = 0u64;
                let mut last_hist_count = 0u64;
                let mut snapshots = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = obs.snapshot();
                    let sharded = snap.counters.get("stress.sharded").copied().unwrap_or(0);
                    let handle = snap.counters.get("stress.handle").copied().unwrap_or(0);
                    assert!(
                        sharded >= last_sharded,
                        "sharded total went backwards: {last_sharded} -> {sharded}"
                    );
                    assert!(
                        handle >= last_handle,
                        "handle total went backwards: {last_handle} -> {handle}"
                    );
                    if let Some(h) = snap.histograms.get("stress.sharded_ns") {
                        assert!(h.count >= last_hist_count, "histogram count went backwards");
                        last_hist_count = h.count;
                        // The min sentinel must never leak, even racing
                        // a first record.
                        assert_ne!(h.min, u64::MAX);
                        assert!(h.min <= h.max.max(1));
                    }
                    last_sharded = sharded;
                    last_handle = handle;
                    snapshots += 1;
                }
                snapshots
            })
        };

        for writer in writers {
            writer.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = reader.join().unwrap();
        assert!(snapshots > 0, "reader never snapshotted");
    });

    // Exact final totals: nothing lost, nothing double-counted.
    let snap = obs.snapshot();
    let expected = (WRITERS as u64) * ROUNDS;
    assert_eq!(snap.counters["stress.sharded"], expected);
    assert_eq!(snap.counters["stress.handle"], expected);
    let sharded_hist = &snap.histograms["stress.sharded_ns"];
    assert_eq!(sharded_hist.count, expected);
    let expected_sum: u64 = (0..ROUNDS).map(|i| i % 1024).sum::<u64>() * WRITERS as u64;
    assert_eq!(sharded_hist.sum, expected_sum);
    assert_eq!(sharded_hist.min, 0);
    assert_eq!(sharded_hist.max, 1023);
    assert_eq!(snap.histograms["stress.handle_ns"].count, expected);
}
