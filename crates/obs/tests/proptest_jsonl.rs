//! Property: every event serializes to exactly one line of valid JSON
//! and parses back structurally equal (with NaN compared bitwise).

use pq_obs::{parse, to_json, Event, EventKind, Value};
use proptest::prelude::*;

/// A strategy over arbitrary field values, including float edge cases.
fn arb_value() -> impl Strategy<Value = Value> {
    (0u32..6, 0u64..u64::MAX, -1.0e12f64..1.0e12, 0u32..5).prop_map(
        |(tag, integer, float, edge)| match tag {
            0 => Value::Bool(integer % 2 == 0),
            1 => Value::U64(integer),
            2 => Value::F64(float),
            3 => Value::F64(match edge {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => (integer % 1_000_000) as f64, // integral float
            }),
            4 => Value::Str(format!("s{integer}").into()),
            // Awkward strings: quotes, escapes, controls, unicode.
            _ => Value::Str(
                match edge {
                    0 => "with \"quotes\" and \\slashes\\".to_string(),
                    1 => "line\nbreak\tand\rreturns".to_string(),
                    2 => "control\u{1}\u{1f}chars".to_string(),
                    3 => "unicode λ→∞ 🚀".to_string(),
                    _ => String::new(),
                }
                .into(),
            ),
        },
    )
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u64..u64::MAX,
        0u32..3,
        proptest::collection::vec((0u32..1000, arb_value()), 0..8),
    )
        .prop_map(|(ts_ns, kind, fields)| Event {
            ts_ns,
            target: format!("target.{}", ts_ns % 97).into(),
            kind: match kind {
                0 => EventKind::Point,
                1 => EventKind::Count,
                _ => EventKind::Timing,
            },
            fields: fields
                .into_iter()
                .map(|(k, v)| (format!("k{k}").into(), v))
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_event_round_trips_as_one_json_line(event in arb_event()) {
        let line = to_json(&event);
        prop_assert!(
            !line.contains('\n') && !line.contains('\r'),
            "serialized event spans multiple lines: {line}"
        );
        let back = parse(&line);
        prop_assert!(back.is_ok(), "parse failed for {line}: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), event);
    }
}
