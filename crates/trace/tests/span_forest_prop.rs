//! Property: a span forest emitted as JSONL timing events round-trips
//! exactly through `pq-trace` — [`pq_trace::span_forest`] recovers the
//! precise parent/child structure regardless of event order or
//! timestamps (the explicit `span_id`/`parent` fields carry the
//! causality, as they do across the parallel solve fan-out, where
//! interval containment would misattribute overlapping workers).

use std::collections::{BTreeMap, HashMap};

use pq_obs::{parse, to_json, Event, EventKind};
use pq_trace::{render_tree, span_forest};
use proptest::prelude::*;

/// One modeled span: a name, an optional parent (an earlier index), a
/// duration, and an arbitrary end timestamp (deliberately unrelated to
/// the nesting — explicit ids must not care).
#[derive(Debug, Clone)]
struct ModelSpan {
    name: &'static str,
    parent: Option<usize>,
    dur_ns: u64,
    ts_ns: u64,
}

const NAMES: [&str; 4] = [
    "sim.recompute_batch_ns",
    "gp.solve_ns",
    "monitor.install_ns",
    "eval_ns",
];

fn arb_forest() -> impl Strategy<Value = Vec<ModelSpan>> {
    // (name pick, parent pick, dur, ts) per span; names from a small
    // alphabet so paths collide and aggregate.
    proptest::collection::vec(
        (
            0usize..NAMES.len(),
            0u64..u64::MAX,
            0u64..1_000_000,
            0u64..1_000_000,
        ),
        1..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (name, pick, dur_ns, ts_ns))| ModelSpan {
                name: NAMES[name],
                // Roots and nested spans mixed: even picks parent an
                // earlier span, odd stays a root.
                parent: if i > 0 && pick % 2 == 0 {
                    Some((pick % i as u64) as usize)
                } else {
                    None
                },
                dur_ns,
                ts_ns,
            })
            .collect()
    })
}

/// Root-to-leaf name path of model span `i`.
fn model_path(forest: &[ModelSpan], i: usize) -> String {
    let mut names = vec![forest[i].name];
    let mut cursor = forest[i].parent;
    while let Some(p) = cursor {
        names.push(forest[p].name);
        cursor = forest[p].parent;
    }
    names.reverse();
    names.join("/")
}

proptest! {
    #[test]
    fn span_forest_round_trips_through_jsonl(
        forest in arb_forest(),
        order in proptest::collection::vec(0u64..u64::MAX, 24..25),
    ) {
        // Emit in a scrambled order: sort indices by the random keys.
        let mut emit: Vec<usize> = (0..forest.len()).collect();
        emit.sort_by_key(|&i| order[i]);

        let mut lines = Vec::new();
        for &i in &emit {
            let span = &forest[i];
            let mut event = Event::new(span.name.to_string(), EventKind::Timing)
                .with("dur_ns", span.dur_ns)
                .with("span_id", i as u64 + 1);
            if let Some(p) = span.parent {
                event = event.with("parent", p as u64 + 1);
            }
            event.ts_ns = span.ts_ns;
            lines.push(to_json(&event));
        }
        let parsed: Vec<Event> = lines.iter().map(|l| parse(l).unwrap()).collect();

        // The reconstructed forest is the model forest, exactly.
        let edges = span_forest(&parsed);
        prop_assert_eq!(edges.len(), forest.len());
        let by_id: HashMap<u64, &pq_trace::SpanEdge> =
            edges.iter().map(|e| (e.id, e)).collect();
        for (i, span) in forest.iter().enumerate() {
            let edge = by_id[&(i as u64 + 1)];
            prop_assert_eq!(edge.name.as_str(), span.name);
            prop_assert_eq!(edge.parent, span.parent.map(|p| p as u64 + 1));
            prop_assert_eq!(edge.dur_ns, span.dur_ns);
        }

        // Walking the recovered edges rebuilds every root-to-leaf path.
        let mut expected: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..forest.len() {
            *expected.entry(model_path(&forest, i)).or_insert(0) += 1;
        }
        let mut recovered: BTreeMap<String, u64> = BTreeMap::new();
        for edge in &edges {
            let mut names = vec![edge.name.as_str()];
            let mut cursor = edge.parent;
            while let Some(p) = cursor.map(|p| by_id[&p]) {
                names.push(p.name.as_str());
                cursor = p.parent;
            }
            names.reverse();
            *recovered.entry(names.join("/")).or_insert(0) += 1;
        }
        prop_assert_eq!(&recovered, &expected);

        // And the tree report nests by those ids: every modeled span
        // shows up at its exact depth, timestamps notwithstanding.
        let text = render_tree(&parsed);
        for path in expected.keys() {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap();
            let needle = format!("{}{leaf}", "  ".repeat(depth));
            prop_assert!(
                text.lines().any(|l| l.starts_with(&needle)),
                "missing {needle:?} in:\n{text}"
            );
        }
    }
}
