//! Golden tests pinning `pq-trace`'s exact report output on checked-in
//! JSONL fixtures.
//!
//! To update the expected files after an intentional format change, run
//! `PQ_TRACE_BLESS=1 cargo test -p pq-trace --test golden` and review
//! the fixture diff.

use std::path::PathBuf;

use pq_trace::{load, render_diff, render_postmortem, render_summary, render_tree, TraceStats};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_golden(actual: &str, expected_file: &str) {
    let path = fixture(expected_file);
    if std::env::var_os("PQ_TRACE_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "output drifted from {expected_file}; bless with PQ_TRACE_BLESS=1 if intentional"
    );
}

#[test]
fn summary_matches_golden() {
    let events = load(fixture("run_a.jsonl")).unwrap();
    let stats = TraceStats::from_events(&events);
    assert_golden(&render_summary(&stats, 5), "summary_a.txt");
}

#[test]
fn tree_matches_golden() {
    let events = load(fixture("run_a.jsonl")).unwrap();
    assert_golden(&render_tree(&events), "tree_a.txt");
}

#[test]
fn diff_matches_golden() {
    let a = TraceStats::from_events(&load(fixture("run_a.jsonl")).unwrap());
    let b = TraceStats::from_events(&load(fixture("run_b.jsonl")).unwrap());
    assert_golden(&render_diff(&a, &b), "diff_ab.txt");
}

#[test]
fn postmortem_matches_golden() {
    let events = load(fixture("postmortem_a.jsonl")).unwrap();
    assert_golden(&render_postmortem(&events, 4), "postmortem_a.txt");
}

#[test]
fn summary_counts_match_fixture_contents() {
    // Independent of formatting: the fixture has 3 refreshes (2 on item
    // 0), 3 recomputations (2 for query 0), and 2 forcing refreshes on
    // item 0 that forced 3 recomputations total.
    let events = load(fixture("run_a.jsonl")).unwrap();
    let stats = TraceStats::from_events(&events);
    assert_eq!(stats.refreshes_by_item[&0], 2);
    assert_eq!(stats.refreshes_by_item[&1], 1);
    assert_eq!(stats.recomputes_by_query["0"], 2);
    assert_eq!(stats.recomputes_by_query["1"], 1);
    assert_eq!(stats.triggers_by_item[&0], 2);
    assert_eq!(stats.forced_by_item[&0], 3);
    // Spans: four gp.solve_ns (one per query 1, three per query 0) and
    // one monitor.install_ns.
    assert_eq!(stats.spans["gp.solve_ns"].len(), 4);
    assert_eq!(stats.solve_by_query[&0].len(), 3);
    assert_eq!(stats.solve_by_query[&1].len(), 1);
    assert_eq!(stats.spans["monitor.install_ns"], vec![500]);
}
