//! End-to-end flight-recorder check: a fixed-seed simulation with an
//! injected audit fault must page the SLO engine within one audit
//! interval, flip the live exporter's `/health` to degraded, and leave a
//! recorder dump that `pq-trace postmortem` renders into a usable triage
//! report.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pq_ddm::{Trace, TraceSet};
use pq_obs::{AlertKind, Obs, Recorder};
use pq_poly::{ItemId, PolynomialQuery};
use pq_sim::{run_observed, AuditConfig, AuditFault, RecorderConfig, SimConfig, SloConfig};
use pq_trace::{load, render_postmortem};

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response.split_once("\r\n\r\n").unwrap().1.to_string()
}

#[test]
fn injected_fault_pages_degrades_health_and_renders_a_postmortem() {
    let dir = std::env::temp_dir().join(format!("pq-postmortem-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("flight.jsonl");

    let traces = TraceSet::new(vec![
        Trace::sinusoid(20.0, 3.0, 400.0, 600),
        Trace::sinusoid(10.0, 2.0, 300.0, 600),
    ]);
    let queries = vec![PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 8.0).unwrap()];
    let mut cfg = SimConfig::new(traces, queries);
    cfg.audit = Some(AuditConfig::default());
    let fault_tick = 300;
    cfg.audit_fault = Some(AuditFault {
        tick: fault_tick,
        query: 0,
        perturb: 1.0e6,
    });
    cfg.slo = Some(SloConfig::default());

    let recorder = Recorder::new(RecorderConfig::new(dump_path.clone()));
    let obs = Obs::with_subscriber(Arc::new(recorder.clone()));
    assert!(obs.install_recorder(recorder));
    run_observed(&cfg, &obs).unwrap();

    // The zero-budget audit objective paged within one audit interval.
    let slo = obs.slo_engine().expect("SLO engine installed");
    let alerts = slo.alerts();
    let alert = alerts
        .iter()
        .find(|a| a.kind == AlertKind::AuditDivergence)
        .expect("divergence alert raised");
    let every = AuditConfig::default().every as u64;
    assert!(
        alert.raised_at <= fault_tick as u64 + every,
        "raised at {} — more than one audit interval after tick {fault_tick}",
        alert.raised_at
    );

    // The live exporter reflects it. The alert may have aged out of its
    // 1 m window by run end, so accept either an active or cleared alert
    // — but the alert history and windowed series must be served.
    let server = pq_obs::serve::spawn(obs.clone(), "127.0.0.1:0").unwrap();
    let health = get(server.addr(), "/health");
    if alert.is_active() {
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
    } else {
        assert!(health.contains("\"status\":\"ok\""), "{health}");
    }
    assert!(health.contains("\"recorder_dumps\":"), "{health}");
    let alerts_json = get(server.addr(), "/alerts");
    assert!(
        alerts_json.contains("\"kind\":\"audit_divergence\""),
        "{alerts_json}"
    );
    let metrics = get(server.addr(), "/metrics");
    assert!(
        metrics.contains("pq_sim_refresh_rate_1m"),
        "windowed series must be exported"
    );
    server.shutdown();

    // The dump renders into a postmortem naming the trigger.
    let events = load(&dump_path).expect("flight recorder dumped");
    let report = render_postmortem(&events, 25);
    assert!(report.contains("reason: audit.divergence"), "{report}");
    assert!(report.contains("audit.divergence"), "{report}");
    assert!(report.contains("Timeline"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}
