//! End-to-end attribution check: run the simulator with a JSONL trace
//! attached, re-analyze the trace with `pq-trace`, and require that the
//! trace-derived attribution matches [`pq_sim::SimMetrics`] exactly —
//! the acceptance bar for the offline analysis being trustworthy.

use std::sync::Arc;

use pq_ddm::{Trace, TraceSet};
use pq_poly::{ItemId, PolynomialQuery};
use pq_sim::{run_observed, Obs, SimConfig};
use pq_trace::{load, span_forest, TraceStats};

#[test]
fn trace_attribution_matches_sim_metrics_exactly() {
    let traces = TraceSet::new(vec![
        Trace::sinusoid(20.0, 3.0, 400.0, 600),
        Trace::sinusoid(10.0, 2.0, 300.0, 600),
        Trace::sinusoid(15.0, 4.0, 250.0, 600),
    ]);
    let queries = vec![
        PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 8.0).unwrap(),
        PolynomialQuery::portfolio([(1.0, ItemId(1), ItemId(2))], 6.0).unwrap(),
    ];
    let cfg = SimConfig::new(traces, queries);

    let dir = std::env::temp_dir().join("pq-trace-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("run-{}.jsonl", std::process::id()));
    let writer = Arc::new(pq_obs::JsonlWriter::create(&path).unwrap());
    let obs = Obs::with_subscriber(writer);

    let metrics = run_observed(&cfg, &obs).unwrap();
    obs.flush();

    let stats = TraceStats::from_events(&load(&path).unwrap());
    std::fs::remove_file(&path).ok();

    // Per-query recomputations: every dab.recompute event carries its
    // query label; the trace tally must equal the engine's own counts.
    for (qi, &n) in metrics.per_query_recomputations.iter().enumerate() {
        let traced = stats
            .recomputes_by_query
            .get(&qi.to_string())
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "query {qi} recomputations");
    }
    let traced_total: u64 = stats.recomputes_by_query.values().sum();
    assert_eq!(traced_total, metrics.recomputations, "total recomputations");

    // Per-item refreshes and refreshes-that-forced-recomputation.
    for (item, &n) in metrics.per_item_refreshes.iter().enumerate() {
        let traced = stats
            .refreshes_by_item
            .get(&(item as u64))
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "item {item} refreshes");
    }
    let traced_total: u64 = stats.refreshes_by_item.values().sum();
    assert_eq!(traced_total, metrics.refreshes, "total refreshes");

    for (item, &n) in metrics.per_item_recompute_triggers.iter().enumerate() {
        let traced = stats
            .triggers_by_item
            .get(&(item as u64))
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "item {item} forcing refreshes");
    }

    // Every forced recomputation is attributed to some item, and the
    // per-item forced totals add up to the recomputations that the
    // trigger events explain (initial installs are not item-forced).
    let forced_total: u64 = stats.forced_by_item.values().sum();
    assert!(forced_total <= metrics.recomputations);
    assert!(metrics.recomputations > 0, "simulation should recompute");
    assert!(
        stats
            .spans
            .get("gp.solve_ns")
            .is_some_and(|s| !s.is_empty()),
        "trace should carry gp.solve spans"
    );
}

/// Causal spans across the parallel solve fan-out: every in-run
/// `gp.solve` span recorded by a recompute batch must carry an explicit
/// parent edge resolving to a `sim.recompute_batch` span — even though
/// the solves run on scoped worker threads, whose wall-clock intervals
/// containment analysis could never attribute.
#[test]
fn parallel_solve_spans_parent_to_their_recompute_batch() {
    let traces = TraceSet::new(vec![
        Trace::sinusoid(20.0, 3.0, 400.0, 600),
        Trace::sinusoid(10.0, 2.0, 300.0, 600),
        Trace::sinusoid(15.0, 4.0, 250.0, 600),
    ]);
    let queries = vec![
        PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 8.0).unwrap(),
        PolynomialQuery::portfolio([(1.0, ItemId(1), ItemId(2))], 6.0).unwrap(),
    ];
    let mut cfg = SimConfig::new(traces, queries);
    cfg.threads = 4;

    let dir = std::env::temp_dir().join("pq-trace-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("spans-{}.jsonl", std::process::id()));
    let writer = Arc::new(pq_obs::JsonlWriter::create(&path).unwrap());
    let obs = Obs::with_subscriber(writer);
    run_observed(&cfg, &obs).unwrap();
    obs.flush();

    let events = load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let edges = span_forest(&events);
    let by_id: std::collections::HashMap<u64, &pq_trace::SpanEdge> =
        edges.iter().map(|e| (e.id, e)).collect();

    let batches = edges
        .iter()
        .filter(|e| e.name == "sim.recompute_batch_ns")
        .count();
    assert!(batches > 0, "in-run recompute batches should be recorded");

    // Every gp.solve span whose ancestor chain leaves the solver layer
    // (gp.solve under dab.solve) must land in a recompute batch: these
    // are exactly the in-run fan-out solves. Install-time seeding
    // solves have no batch ancestor and stay roots of their chains.
    let ancestry = |edge: &pq_trace::SpanEdge| {
        let mut names = Vec::new();
        let mut cursor = edge.parent;
        while let Some(p) = cursor.and_then(|p| by_id.get(&p)) {
            names.push(p.name.clone());
            cursor = p.parent;
        }
        names
    };
    let mut batched = 0;
    for edge in edges.iter().filter(|e| e.name == "gp.solve_ns") {
        let chain = ancestry(edge);
        if chain.iter().any(|n| n == "sim.recompute_batch_ns") {
            assert_eq!(
                chain.last().map(String::as_str),
                Some("sim.recompute_batch_ns"),
                "the recompute batch must be the root of a fan-out solve's chain: {chain:?}"
            );
            batched += 1;
        }
    }
    assert!(
        batched > 0,
        "fan-out gp.solve spans should resolve to batch parents across threads"
    );
}
