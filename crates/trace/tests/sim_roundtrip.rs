//! End-to-end attribution check: run the simulator with a JSONL trace
//! attached, re-analyze the trace with `pq-trace`, and require that the
//! trace-derived attribution matches [`pq_sim::SimMetrics`] exactly —
//! the acceptance bar for the offline analysis being trustworthy.

use std::sync::Arc;

use pq_ddm::{Trace, TraceSet};
use pq_poly::{ItemId, PolynomialQuery};
use pq_sim::{run_observed, Obs, SimConfig};
use pq_trace::{load, TraceStats};

#[test]
fn trace_attribution_matches_sim_metrics_exactly() {
    let traces = TraceSet::new(vec![
        Trace::sinusoid(20.0, 3.0, 400.0, 600),
        Trace::sinusoid(10.0, 2.0, 300.0, 600),
        Trace::sinusoid(15.0, 4.0, 250.0, 600),
    ]);
    let queries = vec![
        PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 8.0).unwrap(),
        PolynomialQuery::portfolio([(1.0, ItemId(1), ItemId(2))], 6.0).unwrap(),
    ];
    let cfg = SimConfig::new(traces, queries);

    let dir = std::env::temp_dir().join("pq-trace-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("run-{}.jsonl", std::process::id()));
    let writer = Arc::new(pq_obs::JsonlWriter::create(&path).unwrap());
    let obs = Obs::with_subscriber(writer);

    let metrics = run_observed(&cfg, &obs).unwrap();
    obs.flush();

    let stats = TraceStats::from_events(&load(&path).unwrap());
    std::fs::remove_file(&path).ok();

    // Per-query recomputations: every dab.recompute event carries its
    // query label; the trace tally must equal the engine's own counts.
    for (qi, &n) in metrics.per_query_recomputations.iter().enumerate() {
        let traced = stats
            .recomputes_by_query
            .get(&qi.to_string())
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "query {qi} recomputations");
    }
    let traced_total: u64 = stats.recomputes_by_query.values().sum();
    assert_eq!(traced_total, metrics.recomputations, "total recomputations");

    // Per-item refreshes and refreshes-that-forced-recomputation.
    for (item, &n) in metrics.per_item_refreshes.iter().enumerate() {
        let traced = stats
            .refreshes_by_item
            .get(&(item as u64))
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "item {item} refreshes");
    }
    let traced_total: u64 = stats.refreshes_by_item.values().sum();
    assert_eq!(traced_total, metrics.refreshes, "total refreshes");

    for (item, &n) in metrics.per_item_recompute_triggers.iter().enumerate() {
        let traced = stats
            .triggers_by_item
            .get(&(item as u64))
            .copied()
            .unwrap_or(0);
        assert_eq!(traced, n, "item {item} forcing refreshes");
    }

    // Every forced recomputation is attributed to some item, and the
    // per-item forced totals add up to the recomputations that the
    // trigger events explain (initial installs are not item-forced).
    let forced_total: u64 = stats.forced_by_item.values().sum();
    assert!(forced_total <= metrics.recomputations);
    assert!(metrics.recomputations > 0, "simulation should recompute");
    assert!(
        stats
            .spans
            .get("gp.solve_ns")
            .is_some_and(|s| !s.is_empty()),
        "trace should carry gp.solve spans"
    );
}
