//! `pq-trace`: offline analysis of [`pq_obs`] JSONL traces.
//!
//! The simulator, monitor, and bench harnesses record their full event
//! stream with `PQ_OBS_JSONL=<path>`; this crate turns such a trace back
//! into answers:
//!
//! * [`render_summary`] — per-phase and per-query duration percentile
//!   tables (exact, from the recorded spans, not bucketed), event
//!   counts, and the recomputation attribution the paper's μ-cost
//!   analysis needs: which queries recompute, and which items' refreshes
//!   force those recomputations.
//! * [`render_tree`] — the span forest with inclusive/exclusive
//!   timings, aggregated over repeated occurrences (a span's exclusive
//!   time is its duration minus its direct children's). Traces whose
//!   timing events carry the explicit `span_id`/`parent` fields (every
//!   trace recorded since causal spans landed) nest by those ids — exact
//!   even across the parallel solve fan-out; older traces fall back to
//!   interval containment, byte-identical to the previous output.
//! * [`render_profile`] — folds the sampling profiler's
//!   `profile.sample` events into collapsed-stack (`flamegraph.pl`
//!   compatible) `stack count` lines.
//! * [`render_diff`] — two traces side by side with deltas, for
//!   regression triage between runs.
//! * [`render_postmortem`] — a flight-recorder dump (the JSONL file the
//!   [`pq_obs`] recorder writes on an SLO breach, audit divergence,
//!   watchdog stall, or panic) rendered as a triage report: the dump
//!   header, per-thread buffer accounting, event counts, and the final
//!   timeline leading up to the trigger.
//!
//! Everything here is pure string-in/string-out over parsed [`Event`]s,
//! so the binary in `main.rs` stays a thin argument parser and the
//! golden tests can pin exact outputs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

pub use pq_obs::{Event, EventKind, Value};

/// A failure while loading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// A line did not parse as an event.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Underlying JSON error.
        source: pq_obs::JsonError,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Parse { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Streams a JSONL trace file line by line, reporting the first
/// malformed line. Never holds the whole trace in memory — bench traces
/// run to gigabytes.
pub fn for_each_event(path: impl AsRef<Path>, mut f: impl FnMut(Event)) -> Result<(), TraceError> {
    use std::io::BufRead;
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        f(pq_obs::parse(&line).map_err(|source| TraceError::Parse {
            line: i + 1,
            source,
        })?);
    }
    Ok(())
}

/// Loads a whole JSONL trace into memory. Convenient for tests and
/// small traces; use [`for_each_event`] (or [`TraceStats::from_path`] /
/// [`timing_events`]) for bench-sized ones.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for_each_event(path, |e| events.push(e))?;
    Ok(events)
}

/// Streams a trace, keeping only its timing events — all
/// [`render_tree`] needs, and typically a small fraction of the file.
pub fn timing_events(path: impl AsRef<Path>) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for_each_event(path, |e| {
        if e.kind == EventKind::Timing {
            events.push(e);
        }
    })?;
    Ok(events)
}

/// Reads a field as an unsigned integer (accepting integral floats,
/// which the JSONL number grammar can produce).
fn field_u64(event: &Event, name: &str) -> Option<u64> {
    match event.field(name)? {
        Value::U64(v) => Some(*v),
        Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.8e19 => Some(*v as u64),
        _ => None,
    }
}

/// Exact duration statistics over one set of recorded spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurStats {
    /// Number of spans.
    pub count: u64,
    /// Total nanoseconds.
    pub sum: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Longest span.
    pub max: u64,
}

impl DurStats {
    /// Exact nearest-rank percentiles; sorts `durations` in place.
    pub fn compute(durations: &mut [u64]) -> Self {
        if durations.is_empty() {
            return DurStats::default();
        }
        durations.sort_unstable();
        let n = durations.len();
        let rank = |q: f64| durations[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        DurStats {
            count: n as u64,
            sum: durations.iter().sum(),
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: durations[n - 1],
        }
    }
}

/// Everything [`render_summary`] and [`render_diff`] need, extracted in
/// one pass over a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// `(target, kind-name)` → number of events.
    pub event_counts: BTreeMap<(String, &'static str), u64>,
    /// Span name (timing target, e.g. `gp.solve_ns`) → durations in
    /// event order.
    pub spans: BTreeMap<String, Vec<u64>>,
    /// `gp.solve_ns` durations per attributed query.
    pub solve_by_query: BTreeMap<u64, Vec<u64>>,
    /// `dab.recompute` event counts per query label. Network traces
    /// carry a `node` field; their queries are labeled `c<node>.q<qi>`.
    pub recomputes_by_query: BTreeMap<String, u64>,
    /// `sim.refresh` event counts per item.
    pub refreshes_by_item: BTreeMap<u64, u64>,
    /// `dab.recompute_trigger` event counts per item: refreshes whose
    /// processing forced at least one recomputation.
    pub triggers_by_item: BTreeMap<u64, u64>,
    /// Total recomputations forced per item (sum of the trigger
    /// events' `recomputes` field).
    pub forced_by_item: BTreeMap<u64, u64>,
}

impl TraceStats {
    /// Extracts statistics from an already-parsed trace.
    pub fn from_events(events: &[Event]) -> Self {
        let mut stats = TraceStats::default();
        for event in events {
            stats.add(event);
        }
        stats
    }

    /// Streams a trace file straight into statistics without ever
    /// holding the events in memory.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let mut stats = TraceStats::default();
        for_each_event(path, |e| stats.add(&e))?;
        Ok(stats)
    }

    /// Folds one event into the statistics.
    pub fn add(&mut self, event: &Event) {
        *self
            .event_counts
            .entry((event.target.to_string(), event.kind.as_str()))
            .or_insert(0) += 1;
        if event.kind == EventKind::Timing {
            if let Some(dur) = field_u64(event, "dur_ns") {
                self.spans
                    .entry(event.target.to_string())
                    .or_default()
                    .push(dur);
                if event.target == "gp.solve_ns" {
                    if let Some(q) = field_u64(event, "query") {
                        self.solve_by_query.entry(q).or_default().push(dur);
                    }
                }
            }
        }
        match event.target.as_ref() {
            "dab.recompute" => {
                if let Some(q) = field_u64(event, "query") {
                    let label = match field_u64(event, "node") {
                        Some(node) => format!("c{node}.q{q}"),
                        None => q.to_string(),
                    };
                    *self.recomputes_by_query.entry(label).or_insert(0) += 1;
                }
            }
            "sim.refresh" => {
                if let Some(item) = field_u64(event, "item") {
                    *self.refreshes_by_item.entry(item).or_insert(0) += 1;
                }
            }
            "dab.recompute_trigger" => {
                if let Some(item) = field_u64(event, "item") {
                    *self.triggers_by_item.entry(item).or_insert(0) += 1;
                    *self.forced_by_item.entry(item).or_insert(0) +=
                        field_u64(event, "recomputes").unwrap_or(1);
                }
            }
            _ => {}
        }
    }
}

/// Renders an aligned ASCII table; every column right-aligned.
fn table(out: &mut String, title: &str, header: &[&str], rows: &[Vec<String>]) {
    let _ = writeln!(out, "== {title} ==");
    if rows.is_empty() {
        let _ = writeln!(out, "(none)\n");
        return;
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            let _ = write!(s, "{c:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    out.push('\n');
}

/// The `k` heaviest `(key, count)` pairs of a map, heaviest first, ties
/// toward the smaller key.
fn top_k<K: Ord + Copy>(map: &BTreeMap<K, u64>, k: usize) -> Vec<(K, u64)> {
    let mut pairs: Vec<(K, u64)> = map.iter().map(|(&key, &v)| (key, v)).collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// Renders the `summary` report: event counts, per-phase and per-query
/// exact percentiles, and top-`k` recomputation attribution.
pub fn render_summary(stats: &TraceStats, k: usize) -> String {
    let mut out = String::new();

    let rows: Vec<Vec<String>> = stats
        .event_counts
        .iter()
        .map(|((target, kind), n)| vec![target.clone(), kind.to_string(), n.to_string()])
        .collect();
    table(&mut out, "Events", &["target", "kind", "count"], &rows);

    let dur_row = |name: String, s: &DurStats| {
        vec![
            name,
            s.count.to_string(),
            s.sum.to_string(),
            s.p50.to_string(),
            s.p95.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]
    };
    let rows: Vec<Vec<String>> = stats
        .spans
        .iter()
        .map(|(name, durs)| dur_row(name.clone(), &DurStats::compute(&mut durs.clone())))
        .collect();
    table(
        &mut out,
        "Spans (per phase)",
        &[
            "span", "count", "total_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns",
        ],
        &rows,
    );

    let mut per_query: Vec<(u64, DurStats)> = stats
        .solve_by_query
        .iter()
        .map(|(&q, durs)| (q, DurStats::compute(&mut durs.clone())))
        .collect();
    per_query.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then(a.0.cmp(&b.0)));
    per_query.truncate(k);
    let rows: Vec<Vec<String>> = per_query
        .into_iter()
        .map(|(q, s)| dur_row(q.to_string(), &s))
        .collect();
    table(
        &mut out,
        format!("Top {k} queries by gp.solve time").as_str(),
        &[
            "query", "count", "total_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns",
        ],
        &rows,
    );

    let mut by_query: Vec<(&String, &u64)> = stats.recomputes_by_query.iter().collect();
    by_query.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    by_query.truncate(k);
    let rows: Vec<Vec<String>> = by_query
        .into_iter()
        .map(|(q, n)| vec![q.clone(), n.to_string()])
        .collect();
    table(
        &mut out,
        format!("Top {k} queries by recomputations").as_str(),
        &["query", "recomputations"],
        &rows,
    );

    let rows: Vec<Vec<String>> = top_k(&stats.triggers_by_item, k)
        .into_iter()
        .map(|(item, triggers)| {
            vec![
                item.to_string(),
                triggers.to_string(),
                stats
                    .forced_by_item
                    .get(&item)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                stats
                    .refreshes_by_item
                    .get(&item)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            ]
        })
        .collect();
    table(
        &mut out,
        format!("Top {k} items by refreshes that forced recomputation").as_str(),
        &[
            "item",
            "forcing_refreshes",
            "forced_recomputes",
            "refreshes",
        ],
        &rows,
    );
    out
}

/// One aggregated node of the span forest.
#[derive(Debug, Default, Clone)]
struct PathAgg {
    count: u64,
    inclusive_ns: u64,
    exclusive_ns: u64,
}

/// One edge of the explicit span forest: a recorded timing span, its
/// process-unique id, and (when nested) the id of its causal parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEdge {
    /// The span's `span_id` field.
    pub id: u64,
    /// The span's `parent` field, if it had an open parent span —
    /// including a parent on another thread (fan-out workers carry the
    /// spawning span's context).
    pub parent: Option<u64>,
    /// Span name (the timing event's target, e.g. `gp.solve_ns`).
    pub name: String,
    /// Recorded duration.
    pub dur_ns: u64,
}

/// Extracts the explicit span forest from a trace: one [`SpanEdge`] per
/// timing event carrying a `span_id` field, in event order. Traces from
/// before causal spans landed yield an empty forest.
pub fn span_forest(events: &[Event]) -> Vec<SpanEdge> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::Timing)
        .filter_map(|e| {
            Some(SpanEdge {
                id: field_u64(e, "span_id")?,
                parent: field_u64(e, "parent"),
                name: e.target.to_string(),
                dur_ns: field_u64(e, "dur_ns").unwrap_or(0),
            })
        })
        .collect()
}

/// Aggregates the explicit span forest by root-to-leaf name path.
fn aggregate_by_ids(edges: &[SpanEdge]) -> BTreeMap<String, PathAgg> {
    use std::collections::HashMap;
    // A span id is process-unique, so the last occurrence wins (there
    // are no duplicates in well-formed traces).
    let by_id: HashMap<u64, &SpanEdge> = edges.iter().map(|e| (e.id, e)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for edge in edges {
        if let Some(parent) = edge.parent.filter(|p| by_id.contains_key(p)) {
            *child_ns.entry(parent).or_insert(0) += edge.dur_ns;
        }
    }
    let mut aggregate: BTreeMap<String, PathAgg> = BTreeMap::new();
    for edge in edges {
        // Root-to-leaf name chain; the depth cap guards malformed
        // traces with parent cycles.
        let mut names = vec![edge.name.as_str()];
        let mut cursor = edge.parent;
        while let Some(p) = cursor.and_then(|p| by_id.get(&p)) {
            names.push(p.name.as_str());
            cursor = p.parent;
            if names.len() > 64 {
                break;
            }
        }
        names.reverse();
        let agg = aggregate.entry(names.join("/")).or_default();
        agg.count += 1;
        agg.inclusive_ns += edge.dur_ns;
        agg.exclusive_ns += edge
            .dur_ns
            .saturating_sub(child_ns.get(&edge.id).copied().unwrap_or(0));
    }
    aggregate
}

/// Aggregates spans by interval containment (the pre-span-id fallback).
///
/// A timing event's timestamp is taken at span *end*, so each span
/// covers `[ts_ns - dur_ns, ts_ns]`; containment of those intervals
/// (single-threaded traces) reconstructs the nesting.
fn aggregate_by_containment(events: &[Event]) -> BTreeMap<String, PathAgg> {
    struct Span {
        name: String,
        start: u64,
        end: u64,
        dur: u64,
    }
    let mut spans: Vec<Span> = events
        .iter()
        .filter(|e| e.kind == EventKind::Timing)
        .filter_map(|e| {
            let dur = field_u64(e, "dur_ns")?;
            Some(Span {
                name: e.target.to_string(),
                start: e.ts_ns.saturating_sub(dur),
                end: e.ts_ns,
                dur,
            })
        })
        .collect();
    // Parents start no later than their children and end no earlier.
    spans.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));

    struct Open {
        path: String,
        end: u64,
        dur: u64,
        child_ns: u64,
    }
    let mut aggregate: BTreeMap<String, PathAgg> = BTreeMap::new();
    let mut stack: Vec<Open> = Vec::new();
    let close = |open: Open, aggregate: &mut BTreeMap<String, PathAgg>| {
        let agg = aggregate.entry(open.path).or_default();
        agg.count += 1;
        agg.inclusive_ns += open.dur;
        agg.exclusive_ns += open.dur.saturating_sub(open.child_ns);
    };
    for span in spans {
        while stack.last().is_some_and(|top| top.end <= span.start) {
            let top = stack.pop().expect("non-empty stack");
            close(top, &mut aggregate);
        }
        if let Some(top) = stack.last_mut() {
            top.child_ns += span.dur;
        }
        let path = match stack.last() {
            Some(top) => format!("{}/{}", top.path, span.name),
            None => span.name,
        };
        stack.push(Open {
            path,
            end: span.end,
            dur: span.dur,
            child_ns: 0,
        });
    }
    while let Some(top) = stack.pop() {
        close(top, &mut aggregate);
    }
    aggregate
}

/// Renders the `tree` report: the span forest aggregated by path, with
/// inclusive and exclusive (self) time per path.
///
/// Traces whose timing events carry `span_id` fields nest by the
/// explicit causal parents (exact across threads); older traces fall
/// back to interval containment, producing byte-identical output to
/// previous releases.
pub fn render_tree(events: &[Event]) -> String {
    let edges = span_forest(events);
    let aggregate = if edges.is_empty() {
        aggregate_by_containment(events)
    } else {
        aggregate_by_ids(&edges)
    };

    let rows: Vec<Vec<String>> = aggregate
        .iter()
        .map(|(path, agg)| {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().expect("non-empty path");
            vec![
                format!("{}{leaf}", "  ".repeat(depth)),
                agg.count.to_string(),
                agg.inclusive_ns.to_string(),
                agg.exclusive_ns.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    // Left-align the span column by padding inside the cell.
    let name_w = rows.iter().map(|r| r[0].len()).max().unwrap_or(4);
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|mut r| {
            r[0] = format!("{:<name_w$}", r[0]);
            r
        })
        .collect();
    table(
        &mut out,
        "Span tree (inclusive/exclusive ns, aggregated by path)",
        &["span", "count", "inclusive_ns", "exclusive_ns"],
        &rows,
    );
    out
}

/// Renders the `profile` report: the sampling profiler's
/// `profile.sample` events folded into collapsed-stack lines —
/// `a;b;c <count>`, one line per distinct stack, heaviest first (ties
/// toward the lexicographically smaller stack). The output is the
/// collapsed format `flamegraph.pl` and `inferno-flamegraph` consume
/// directly.
pub fn render_profile(events: &[Event]) -> String {
    let mut folded: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        if event.target != "profile.sample" {
            continue;
        }
        if let Some(Value::Str(stack)) = event.field("stack") {
            *folded.entry(stack.as_ref()).or_insert(0) += 1;
        }
    }
    let mut lines: Vec<(&str, u64)> = folded.into_iter().collect();
    lines.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = String::new();
    for (stack, count) in lines {
        let _ = writeln!(out, "{stack} {count}");
    }
    out
}

/// One field value as display text (postmortem timeline cells).
fn value_str(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(x) => format!("{x}"),
        Value::Str(s) => s.to_string(),
    }
}

/// Renders the `postmortem` report over a flight-recorder dump: the
/// `recorder.dump` header (reason, sequence number, buffer accounting),
/// per-thread and per-target event counts, and the last `tail` buffered
/// events as a timeline — the moments leading up to whatever pulled the
/// trigger. Dumps are small by construction (bounded per-thread rings),
/// so `events` is the whole file via [`load`].
pub fn render_postmortem(events: &[Event], tail: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Flight recorder dump ==");
    match events.iter().find(|e| e.target == "recorder.dump") {
        Some(header) => {
            for key in ["reason", "seq", "threads", "events", "dropped"] {
                let value = header.field(key).map(value_str).unwrap_or_default();
                let _ = writeln!(out, "{key}: {value}");
            }
        }
        None => {
            let _ = writeln!(
                out,
                "(no recorder.dump header — not a flight-recorder dump?)"
            );
        }
    }
    out.push('\n');

    let buffered: Vec<&Event> = events
        .iter()
        .filter(|e| e.target != "recorder.dump")
        .collect();

    let mut by_thread: BTreeMap<String, u64> = BTreeMap::new();
    for event in &buffered {
        let thread = match event.field("thread") {
            Some(Value::Str(s)) => s.to_string(),
            _ => "<unattributed>".to_string(),
        };
        *by_thread.entry(thread).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_thread
        .iter()
        .map(|(thread, n)| vec![thread.clone(), n.to_string()])
        .collect();
    table(&mut out, "Events by thread", &["thread", "count"], &rows);

    let mut by_target: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
    for event in &buffered {
        *by_target
            .entry((event.target.to_string(), event.kind.as_str()))
            .or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_target
        .iter()
        .map(|((target, kind), n)| vec![target.clone(), kind.to_string(), n.to_string()])
        .collect();
    table(&mut out, "Events", &["target", "kind", "count"], &rows);

    let start = buffered.len().saturating_sub(tail);
    let _ = writeln!(
        out,
        "== Timeline (last {} of {} events) ==",
        buffered.len() - start,
        buffered.len()
    );
    for event in &buffered[start..] {
        let mut line = format!("{:>12}  ", event.ts_ns);
        let _ = write!(line, "{:<7}  {}", event.kind.as_str(), event.target);
        for (key, value) in &event.fields {
            let _ = write!(line, " {key}={}", value_str(value));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Signed difference rendered as `+n` / `-n` / `0`.
fn delta(a: u64, b: u64) -> String {
    match b.cmp(&a) {
        std::cmp::Ordering::Greater => format!("+{}", b - a),
        std::cmp::Ordering::Less => format!("-{}", a - b),
        std::cmp::Ordering::Equal => "0".to_string(),
    }
}

/// Renders the `diff` report between two traces: event counts, span
/// totals, and per-item forcing-refresh attribution, with deltas.
pub fn render_diff(a: &TraceStats, b: &TraceStats) -> String {
    let mut out = String::new();

    let mut keys: Vec<&(String, &'static str)> =
        a.event_counts.keys().chain(b.event_counts.keys()).collect();
    keys.sort();
    keys.dedup();
    let rows: Vec<Vec<String>> = keys
        .into_iter()
        .map(|key| {
            let (na, nb) = (
                a.event_counts.get(key).copied().unwrap_or(0),
                b.event_counts.get(key).copied().unwrap_or(0),
            );
            vec![key.0.clone(), na.to_string(), nb.to_string(), delta(na, nb)]
        })
        .collect();
    table(
        &mut out,
        "Event counts",
        &["target", "a", "b", "delta"],
        &rows,
    );

    let mut keys: Vec<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    keys.sort();
    keys.dedup();
    let rows: Vec<Vec<String>> = keys
        .into_iter()
        .map(|key| {
            let total = |s: &TraceStats| s.spans.get(key).map(|d| d.iter().sum()).unwrap_or(0u64);
            let (ta, tb) = (total(a), total(b));
            vec![key.clone(), ta.to_string(), tb.to_string(), delta(ta, tb)]
        })
        .collect();
    table(
        &mut out,
        "Span totals (ns)",
        &["span", "a", "b", "delta"],
        &rows,
    );

    let mut keys: Vec<u64> = a
        .triggers_by_item
        .keys()
        .chain(b.triggers_by_item.keys())
        .copied()
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let rows: Vec<Vec<String>> = keys
        .into_iter()
        .map(|item| {
            let (na, nb) = (
                a.triggers_by_item.get(&item).copied().unwrap_or(0),
                b.triggers_by_item.get(&item).copied().unwrap_or(0),
            );
            vec![
                item.to_string(),
                na.to_string(),
                nb.to_string(),
                delta(na, nb),
            ]
        })
        .collect();
    table(
        &mut out,
        "Refreshes that forced recomputation, by item",
        &["item", "a", "b", "delta"],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ts_ns: u64, target: &str, kind: EventKind) -> Event {
        let mut e = Event::new(target.to_string(), kind);
        e.ts_ns = ts_ns;
        e
    }

    #[test]
    fn durstats_uses_exact_nearest_rank() {
        let mut durs = vec![100, 900, 300, 300, 400];
        let s = DurStats::compute(&mut durs);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2000);
        assert_eq!(s.p50, 300, "3rd of 5 sorted values");
        assert_eq!(s.p95, 900);
        assert_eq!(s.p99, 900);
        assert_eq!(s.max, 900);
        assert_eq!(DurStats::compute(&mut []), DurStats::default());
    }

    #[test]
    fn stats_attribute_recomputes_and_triggers() {
        let events = vec![
            event(10, "sim.refresh", EventKind::Count).with("item", 3u64),
            event(20, "dab.recompute", EventKind::Count).with("query", 1u64),
            event(25, "dab.recompute_trigger", EventKind::Count)
                .with("item", 3u64)
                .with("recomputes", 2u64),
            event(30, "dab.recompute", EventKind::Count)
                .with("node", 1u64)
                .with("query", 0u64),
            event(40, "gp.solve_ns", EventKind::Timing)
                .with("dur_ns", 500u64)
                .with("query", 1u64),
        ];
        let stats = TraceStats::from_events(&events);
        assert_eq!(stats.refreshes_by_item[&3], 1);
        assert_eq!(stats.recomputes_by_query["1"], 1);
        assert_eq!(stats.recomputes_by_query["c1.q0"], 1);
        assert_eq!(stats.triggers_by_item[&3], 1);
        assert_eq!(stats.forced_by_item[&3], 2);
        assert_eq!(stats.solve_by_query[&1], vec![500]);
        assert_eq!(stats.spans["gp.solve_ns"], vec![500]);
    }

    #[test]
    fn tree_nests_spans_by_interval_containment() {
        // install covers [100, 1100]; two solves inside; one solve after.
        let events = vec![
            event(500, "gp.solve_ns", EventKind::Timing).with("dur_ns", 300u64),
            event(900, "gp.solve_ns", EventKind::Timing).with("dur_ns", 200u64),
            event(1100, "monitor.install_ns", EventKind::Timing).with("dur_ns", 1000u64),
            event(2000, "gp.solve_ns", EventKind::Timing).with("dur_ns", 400u64),
        ];
        let text = render_tree(&events);
        // Parent: inclusive 1000, exclusive 1000 - 300 - 200 = 500.
        assert!(text.contains("monitor.install_ns"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        let parent = lines
            .iter()
            .find(|l| l.contains("monitor.install_ns"))
            .unwrap();
        assert!(
            parent.contains("1000") && parent.contains("500"),
            "{parent}"
        );
        // Nested solves aggregate under the parent path (indented),
        // the trailing solve is a root (unindented).
        let nested = lines
            .iter()
            .find(|l| l.trim_start().starts_with("gp.solve_ns") && l.starts_with("  "))
            .unwrap();
        assert!(nested.contains('2') && nested.contains("500"), "{nested}");
        let root = lines.iter().find(|l| l.starts_with("gp.solve_ns")).unwrap();
        assert!(root.contains("400"), "{root}");
    }

    #[test]
    fn tree_prefers_explicit_span_parents() {
        // Two fan-out solves parented to one batch span; the second
        // ends *after* its parent (worker outlived the guard's window),
        // which interval containment would misread as a root.
        let events = vec![
            event(1000, "gp.solve_ns", EventKind::Timing)
                .with("dur_ns", 300u64)
                .with("span_id", 2u64)
                .with("parent", 1u64),
            event(1010, "sim.recompute_batch_ns", EventKind::Timing)
                .with("dur_ns", 500u64)
                .with("span_id", 1u64),
            event(2000, "gp.solve_ns", EventKind::Timing)
                .with("dur_ns", 400u64)
                .with("span_id", 3u64)
                .with("parent", 1u64),
        ];
        let text = render_tree(&events);
        let lines: Vec<&str> = text.lines().collect();
        let parent = lines
            .iter()
            .find(|l| l.contains("sim.recompute_batch_ns"))
            .unwrap();
        assert!(parent.contains("500"), "{parent}");
        let nested = lines
            .iter()
            .find(|l| l.trim_start().starts_with("gp.solve_ns"))
            .unwrap();
        assert!(nested.starts_with("  "), "solves must nest: {nested}");
        assert!(nested.contains('2') && nested.contains("700"), "{nested}");
    }

    #[test]
    fn span_forest_extracts_edges_in_event_order() {
        let events = vec![
            event(10, "outer_ns", EventKind::Timing)
                .with("dur_ns", 9u64)
                .with("span_id", 7u64),
            event(9, "inner_ns", EventKind::Timing)
                .with("dur_ns", 3u64)
                .with("span_id", 8u64)
                .with("parent", 7u64),
            // No span_id: pre-causal-span trace line, not an edge.
            event(20, "legacy_ns", EventKind::Timing).with("dur_ns", 5u64),
        ];
        let edges = span_forest(&events);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].id, 7);
        assert_eq!(edges[0].parent, None);
        assert_eq!(edges[1].parent, Some(7));
        assert_eq!(edges[1].name, "inner_ns");
        assert_eq!(edges[1].dur_ns, 3);
    }

    #[test]
    fn profile_folds_samples_into_collapsed_stacks() {
        let events = vec![
            event(1, "profile.sample", EventKind::Point)
                .with("stack", "sim.recompute_batch;gp.solve"),
            event(2, "profile.sample", EventKind::Point)
                .with("stack", "sim.recompute_batch;gp.solve"),
            event(3, "profile.sample", EventKind::Point).with("stack", "sim.recompute_batch"),
            event(4, "sim.refresh", EventKind::Count).with("stack", "not-a-sample"),
        ];
        assert_eq!(
            render_profile(&events),
            "sim.recompute_batch;gp.solve 2\nsim.recompute_batch 1\n"
        );
        assert_eq!(render_profile(&[]), "");
    }

    #[test]
    fn diff_shows_signed_deltas() {
        let a = TraceStats::from_events(&[
            event(1, "sim.refresh", EventKind::Count).with("item", 0u64),
            event(2, "sim.refresh", EventKind::Count).with("item", 0u64),
        ]);
        let b =
            TraceStats::from_events(
                &[event(3, "sim.refresh", EventKind::Count).with("item", 0u64)],
            );
        let text = render_diff(&a, &b);
        assert!(text.contains("sim.refresh"), "{text}");
        assert!(text.contains("-1"), "{text}");
    }

    #[test]
    fn postmortem_renders_header_counts_and_timeline() {
        let events = vec![
            event(5000, "recorder.dump", EventKind::Point)
                .with("reason", "audit.divergence")
                .with("seq", 0u64)
                .with("threads", 2u64)
                .with("events", 3u64)
                .with("dropped", 1u64),
            event(100, "sim.refresh", EventKind::Count)
                .with("item", 3u64)
                .with("thread", "main"),
            event(200, "gp.solve_ns", EventKind::Timing)
                .with("dur_ns", 400u64)
                .with("thread", "pq-recompute-0"),
            event(300, "audit.divergence", EventKind::Point)
                .with("query", 0u64)
                .with("thread", "main"),
        ];
        let text = render_postmortem(&events, 2);
        assert!(text.contains("reason: audit.divergence"), "{text}");
        assert!(text.contains("dropped: 1"));
        // Thread accounting covers both threads.
        assert!(text.contains("main") && text.contains("pq-recompute-0"));
        // Tail of 2 skips the first buffered event but keeps the trigger.
        assert!(text.contains("Timeline (last 2 of 3 events)"), "{text}");
        assert!(
            !text.contains("item=3"),
            "tail must drop the oldest: {text}"
        );
        assert!(text.contains("query=0"), "{text}");
    }

    #[test]
    fn postmortem_without_header_degrades_gracefully() {
        let events = vec![event(1, "sim.refresh", EventKind::Count).with("thread", "main")];
        let text = render_postmortem(&events, 10);
        assert!(text.contains("not a flight-recorder dump"), "{text}");
        assert!(text.contains("Timeline (last 1 of 1 events)"));
    }

    #[test]
    fn load_reports_malformed_lines_with_numbers() {
        let dir = std::env::temp_dir().join("pq-trace-test-load");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(
            &path,
            "{\"ts_ns\":1,\"target\":\"t\",\"kind\":\"point\",\"fields\":{}}\nnot json\n",
        )
        .unwrap();
        match load(&path) {
            Err(TraceError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
