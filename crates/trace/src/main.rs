//! `pq-trace` — offline analysis of pq-obs JSONL traces.
//!
//! ```text
//! pq-trace summary <trace.jsonl> [--top K]   per-phase/per-query percentiles + attribution
//! pq-trace tree    <trace.jsonl>             span forest with inclusive/exclusive ns
//! pq-trace profile <trace.jsonl>             collapsed profiler stacks (flamegraph.pl format)
//! pq-trace diff    <a.jsonl> <b.jsonl>       event/span/attribution deltas between runs
//! pq-trace postmortem <dump.jsonl> [--tail K]  triage a flight-recorder dump
//! ```
//!
//! Produce a trace with e.g. `PQ_OBS_JSONL=fig5.jsonl cargo run --release --bin fig5`
//! (add `PQ_OBS_PROFILE_HZ=99` for profiler samples).

use pq_trace::{
    for_each_event, load, render_diff, render_postmortem, render_profile, render_summary,
    render_tree, timing_events, TraceStats,
};

const USAGE: &str = "usage:
  pq-trace summary <trace.jsonl> [--top K]
  pq-trace tree    <trace.jsonl>
  pq-trace profile <trace.jsonl>
  pq-trace diff    <a.jsonl> <b.jsonl>
  pq-trace postmortem <dump.jsonl> [--tail K]";

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("pq-trace: {msg}");
    std::process::exit(1);
}

fn stats_or_fail(path: &str) -> TraceStats {
    TraceStats::from_path(path).unwrap_or_else(|e| fail(format_args!("{path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut top = 10usize;
    let mut tail = 25usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| fail("--top requires a value"));
                top = v
                    .parse()
                    .unwrap_or_else(|_| fail(format_args!("invalid --top value: {v}")));
            }
            "--tail" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| fail("--tail requires a value"));
                tail = v
                    .parse()
                    .unwrap_or_else(|_| fail(format_args!("invalid --tail value: {v}")));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => fail(format_args!("unknown flag {other}\n{USAGE}")),
            other => positional.push(other),
        }
    }

    match positional.as_slice() {
        ["summary", path] => {
            print!("{}", render_summary(&stats_or_fail(path), top));
        }
        ["tree", path] => {
            let timings = timing_events(path).unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
            print!("{}", render_tree(&timings));
        }
        ["profile", path] => {
            let mut samples = Vec::new();
            for_each_event(path, |e| {
                if e.target == "profile.sample" {
                    samples.push(e);
                }
            })
            .unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
            print!("{}", render_profile(&samples));
        }
        ["diff", a, b] => {
            print!("{}", render_diff(&stats_or_fail(a), &stats_or_fail(b)));
        }
        ["postmortem", path] => {
            let events = load(path).unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
            print!("{}", render_postmortem(&events, tail));
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}
