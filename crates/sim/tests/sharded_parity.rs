//! Fixed-seed parity between the classic single-coordinator engine and
//! the partitioned multi-coordinator engine (DESIGN.md §13):
//!
//! * `shards = 1` through the sharded entry point is **byte-identical**
//!   to the classic engine — metrics and the QAB-violation event log;
//! * with [`DelayRng::PerItem`] draws, service-free delays and a clean
//!   partition (the banded "large book" workload), fixed-seed metrics
//!   are invariant across shard counts (only `ingest_batches` — a
//!   per-coordinator artifact — and `solver_seconds` — wall clock —
//!   may differ);
//! * split components (one giant chain) run the full ring protocol to
//!   completion without deadlock, with every refresh accounted.

use pq_ddm::TraceSet;
use pq_obs::{names, Obs, Value};
use pq_sim::{
    run_observed, run_sharded, DelayConfig, DelayRng, Execution, Pareto, SimConfig, SimMetrics,
};
use pq_workload::{WorkloadConfig, WorkloadGen};

const SEED: u64 = 0x1CDE_2008;

/// The "large book": many independent banded portfolios over one stock
/// universe. Partitions cleanly at any shard count that divides the
/// component count.
fn banded_config(n_items: usize, n_queries: usize, n_ticks: usize) -> SimConfig {
    let traces = TraceSet::stock_universe(n_items, n_ticks, SEED);
    let mut gen = WorkloadGen::with_config(
        WorkloadConfig {
            n_items,
            ..WorkloadConfig::default()
        },
        SEED,
    );
    let queries = gen.banded_portfolio_queries(n_queries, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.seed = SEED;
    cfg
}

/// Fig. 5 regime with per-item draws and service-free delays: the
/// coordinator check/solve occupancy is what legitimately differs
/// between one shared coordinator and K independent ones, so cross-K
/// metric invariance is defined over the service-free delay model.
fn cross_k_config(n_items: usize, n_queries: usize, n_ticks: usize) -> SimConfig {
    let mut cfg = banded_config(n_items, n_queries, n_ticks);
    cfg.delay_rng = DelayRng::PerItem;
    let mut delays = DelayConfig::zero();
    delays.node_to_node = Pareto::with_mean(0.110);
    cfg.delays = delays;
    cfg.loss_probability = 0.02;
    cfg
}

/// The `(query, tick)` log of QAB violation events, in emission order.
fn violation_log(ring: &pq_obs::RingBufferSubscriber) -> Vec<(u64, u64)> {
    ring.events()
        .iter()
        .filter(|e| e.target == names::SIM_QAB_VIOLATION)
        .map(|e| {
            let q = match e.field("query") {
                Some(Value::U64(q)) => *q,
                other => panic!("violation event missing query: {other:?}"),
            };
            let t = match e.field("tick") {
                Some(Value::U64(t)) => *t,
                other => panic!("violation event missing tick: {other:?}"),
            };
            (q, t)
        })
        .collect()
}

fn without_wallclock(mut m: SimMetrics) -> SimMetrics {
    m.solver_seconds = 0.0;
    m
}

/// What must be invariant across shard counts: everything except the
/// per-coordinator batching artifact and wall clock.
fn cross_k_view(mut m: SimMetrics) -> SimMetrics {
    m.solver_seconds = 0.0;
    m.ingest_batches = 0;
    m
}

#[test]
fn one_shard_is_byte_identical_to_the_classic_engine() {
    let cfg = banded_config(48, 6, 300);

    let (obs_classic, ring_classic) = Obs::ring(65_536);
    let classic = run_observed(&cfg, &obs_classic).expect("classic run");

    let (obs_sharded, ring_sharded) = Obs::ring(65_536);
    let report =
        run_sharded(&cfg, &obs_sharded, Execution::Threaded).expect("sharded run at k = 1");

    assert_eq!(
        without_wallclock(classic),
        without_wallclock(report.metrics),
        "shards = 1 must reproduce the classic engine exactly"
    );
    assert_eq!(
        violation_log(&ring_classic),
        violation_log(&ring_sharded),
        "shards = 1 must reproduce the violation event log exactly"
    );
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.cross_edges, 0);
}

#[test]
fn metrics_are_invariant_across_shard_counts_on_clean_partitions() {
    let base = cross_k_config(96, 12, 300);
    let mut baseline = None;
    for k in [1usize, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.shards = k;
        let obs = Obs::null();
        let report = run_sharded(&cfg, &obs, Execution::Threaded)
            .unwrap_or_else(|e| panic!("sharded run failed at k = {k}: {e}"));
        assert_eq!(report.cross_edges, 0, "banded workload must split cleanly");
        let view = cross_k_view(report.metrics);
        assert!(view.refreshes > 0, "degenerate run at k = {k}");
        match &baseline {
            None => baseline = Some(view),
            Some(b) => assert_eq!(b, &view, "fixed-seed metrics must be invariant at k = {k}"),
        }
    }
}

#[test]
fn fidelity_and_violations_match_fig5_across_shard_counts() {
    // The CI shard gate enforces exactly this pair on the large-book
    // workload; keep an in-tree witness at test scale.
    let base = cross_k_config(64, 8, 400);
    let mut cfg1 = base.clone();
    cfg1.shards = 1;
    let obs = Obs::null();
    let r1 = run_sharded(&cfg1, &obs, Execution::Threaded).expect("k = 1");
    for k in [2usize, 4] {
        let mut cfg = base.clone();
        cfg.shards = k;
        let obs = Obs::null();
        let r = run_sharded(&cfg, &obs, Execution::Threaded).expect("k > 1");
        assert_eq!(
            r1.metrics.fidelity_samples, r.metrics.fidelity_samples,
            "fidelity sample count must not depend on k"
        );
        assert_eq!(
            r1.metrics.per_query_violations, r.metrics.per_query_violations,
            "per-query violations must not depend on k (k = {k})"
        );
    }
}

#[test]
fn shared_eval_is_invariant_across_shard_counts() {
    // Under EvalMode::Shared each coordinator compiles a SharedPlan
    // over its own partition (and the partitioner packs by marginal
    // shared-eval load): fixed-seed metrics must still match the
    // classic engine at k = 1 and stay invariant across shard counts.
    let mut base = cross_k_config(96, 12, 300);
    base.eval = pq_sim::EvalMode::Shared { rebase_every: 256 };
    let obs = Obs::null();
    let classic = run_observed(&base, &obs).expect("classic shared run");
    let mut baseline = None;
    for k in [1usize, 2, 4] {
        let mut cfg = base.clone();
        cfg.shards = k;
        let obs = Obs::null();
        let report = run_sharded(&cfg, &obs, Execution::Threaded)
            .unwrap_or_else(|e| panic!("sharded shared run failed at k = {k}: {e}"));
        assert_eq!(report.cross_edges, 0, "banded workload must split cleanly");
        let view = cross_k_view(report.metrics);
        assert!(view.refreshes > 0, "degenerate run at k = {k}");
        if k == 1 {
            assert_eq!(
                cross_k_view(classic.clone()),
                view,
                "shards = 1 must reproduce the classic shared-eval engine"
            );
        }
        match &baseline {
            None => baseline = Some(view),
            Some(b) => assert_eq!(b, &view, "fixed-seed metrics must be invariant at k = {k}"),
        }
    }
}

#[test]
fn sequential_execution_matches_threaded_on_clean_partitions() {
    let mut cfg = cross_k_config(64, 8, 200);
    cfg.shards = 4;
    let obs = Obs::null();
    let threaded = run_sharded(&cfg, &obs, Execution::Threaded).expect("threaded");
    let obs = Obs::null();
    let sequential = run_sharded(&cfg, &obs, Execution::Sequential).expect("sequential");
    assert_eq!(sequential.execution, Execution::Sequential);
    assert!(sequential.max_busy_seconds() > 0.0);
    assert_eq!(
        cross_k_view(threaded.metrics),
        cross_k_view(sequential.metrics),
        "execution mode must not change simulated outcomes"
    );
}

#[test]
fn split_components_run_the_ring_protocol_to_completion() {
    // One giant chain q_i = {x_i, x_{i+1}}: a single connected component
    // far above any fair share, so the partitioner must cut it and the
    // shards must exchange refreshes and DAB minima over the rings.
    use pq_poly::{ItemId, PolynomialQuery};
    let n_items = 25;
    let traces = TraceSet::stock_universe(n_items, 300, SEED);
    let initial = traces.initial_values();
    let queries: Vec<PolynomialQuery> = (0..n_items - 1)
        .map(|i| {
            let q =
                PolynomialQuery::portfolio([(1.0, ItemId(i as u32), ItemId(i as u32 + 1))], 1.0)
                    .expect("valid legs");
            let qab = (0.01 * q.eval(&initial).abs()).max(1e-9);
            q.with_qab(qab).expect("positive bound")
        })
        .collect();
    let mut cfg = SimConfig::new(traces, queries);
    cfg.seed = SEED;
    cfg.delay_rng = DelayRng::PerItem;
    cfg.shards = 2;
    let obs = Obs::null();
    let report = run_sharded(&cfg, &obs, Execution::Threaded).expect("split run must complete");
    assert!(report.cross_edges > 0, "a giant chain must split");
    assert!(!report.clean());
    assert!(report.metrics.refreshes > 0);
    // Replicated items appear on both sides; per-item refresh counts
    // cover the whole universe.
    let covered = report
        .metrics
        .per_item_refreshes
        .iter()
        .filter(|&&r| r > 0)
        .count();
    assert!(
        covered > n_items / 2,
        "only {covered}/{n_items} items ever refreshed"
    );
    let replicas: usize = report.shards.iter().map(|s| s.n_replicas).sum();
    assert!(replicas > 0, "split components must create replicas");
    // A sequential request over an unclean plan must fall back rather
    // than deadlock on the ring barrier.
    let obs = Obs::null();
    let fallback = run_sharded(&cfg, &obs, Execution::Sequential).expect("fallback run");
    assert_eq!(fallback.execution, Execution::Threaded);
}
