//! Property tests for the timer-wheel scheduler.
//!
//! The wheel's contract is *exactness*, not mere approximate ordering:
//! for any interleaving of pushes and pops it must emit the identical
//! event stream as the binary-heap [`EventQueue`], and a full simulation
//! run under [`Scheduler::Wheel`] must produce byte-identical
//! [`pq_sim::SimMetrics`] to [`Scheduler::Heap`] on the same seed.

use proptest::prelude::*;

use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_ddm::{Trace, TraceSet};
use pq_poly::{ItemId, PolynomialQuery};
use pq_sim::{
    run, DelayConfig, Event, EventQueue, Scheduler, SimConfig, SimQueue, SimStrategy, TimerWheel,
};

/// One step of an adversarial queue workload.
#[derive(Debug, Clone)]
enum Op {
    /// Push an event `offset` seconds after the last popped time.
    Push(f64),
    /// Pop the earliest event (if any).
    Pop,
}

/// Offsets mixing exact quantum-aligned collisions (multiples of the
/// wheel's 1/64 s quantum, including zero), arbitrary sub-quantum floats,
/// and far-future jumps that land in higher levels or the overflow list.
fn offset_from(kind: u32, k: u32, f: f64) -> f64 {
    match kind % 13 {
        0..=3 => 0.0,
        4..=7 => k as f64 / 64.0,
        8..=11 => f * 30.0,
        _ => 1_000.0 + f * 399_000.0,
    }
}

/// Push about 3/5 of the time, pop the rest; pushes draw from
/// [`offset_from`]'s mixture.
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..5, 0u32..13, 0u32..512, 0.0f64..1.0).prop_map(|(op, kind, k, f)| {
            if op < 3 {
                Op::Push(offset_from(kind, k, f))
            } else {
                Op::Pop
            }
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel pops the identical `(time, event)` stream as the heap
    /// for any interleaving of pushes and pops.
    #[test]
    fn wheel_and_heap_pop_identical_streams(ops in arb_ops()) {
        let mut heap = EventQueue::new();
        let mut wheel = TimerWheel::new();
        let mut now = 0.0_f64;
        let mut next_id = 0usize;
        for op in &ops {
            match *op {
                Op::Push(offset) => {
                    let time = now + offset;
                    let ev = Event::RefreshArrive { item: next_id, value: time };
                    next_id += 1;
                    heap.push(time, ev.clone());
                    wheel.push(time, ev);
                }
                Op::Pop => {
                    let h = heap.pop_until(f64::INFINITY);
                    let w = wheel.pop_until(f64::INFINITY);
                    prop_assert_eq!(&h, &w);
                    if let Some((t, _)) = h {
                        now = t;
                    }
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
        }
        // Drain whatever is left; the tails must match event for event.
        loop {
            let h = heap.pop_until(f64::INFINITY);
            let w = wheel.pop_until(f64::INFINITY);
            prop_assert_eq!(&h, &w);
            if h.is_none() {
                break;
            }
        }
    }

    /// `SimQueue::Wheel` agrees with the heap on `peek_time` as well as
    /// the popped stream under a bounded-horizon drain (the engine's
    /// access pattern: peek, then pop everything up to the next tick).
    #[test]
    fn sim_queue_agrees_under_horizon_drains(ops in arb_ops(), horizon_step in 0.25f64..8.0) {
        let mut heap = SimQueue::new(Scheduler::Heap);
        let mut wheel = SimQueue::new(Scheduler::Wheel);
        let mut now = 0.0_f64;
        let mut next_id = 0usize;
        for op in &ops {
            match *op {
                Op::Push(offset) => {
                    let time = now + offset;
                    let ev = Event::RefreshArrive { item: next_id, value: time };
                    next_id += 1;
                    heap.push(time, ev.clone());
                    wheel.push(time, ev);
                }
                Op::Pop => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time());
                    let horizon = now + horizon_step;
                    while let Some((t, ev)) = heap.pop_until(horizon) {
                        prop_assert_eq!(wheel.pop_until(horizon), Some((t, ev)));
                    }
                    prop_assert_eq!(wheel.pop_until(horizon), None);
                    now = horizon;
                }
            }
        }
    }
}

fn x(i: u32) -> ItemId {
    ItemId(i)
}

proptest! {
    // Each case runs two full simulations (with GP solves), so keep the
    // case count low; the queue-level tests above carry the volume.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-simulation determinism: heap and wheel produce byte-identical
    /// metrics on random small configurations, with and without delays.
    #[test]
    fn full_sim_metrics_are_scheduler_invariant(
        seed in 0u64..1_000,
        mu in 1.0f64..10.0,
        period in 150.0f64..500.0,
        amplitude in 1.0f64..4.0,
        ticks in 300usize..600,
        planetlab in (0u32..2).prop_map(|b| b == 1),
    ) {
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, amplitude, period, ticks),
            Trace::sinusoid(10.0, amplitude * 0.7, period * 0.8, ticks),
        ]);
        let queries = vec![PolynomialQuery::portfolio([(1.0, x(0), x(1))], 8.0).unwrap()];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.seed = seed;
        cfg.strategy = SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu },
            heuristic: PqHeuristic::DifferentSum,
        };
        cfg.delays = if planetlab {
            DelayConfig::planetlab_like()
        } else {
            DelayConfig::zero()
        };
        cfg.scheduler = Scheduler::Heap;
        let mut h = run(&cfg).unwrap();
        cfg.scheduler = Scheduler::Wheel;
        let mut w = run(&cfg).unwrap();
        // Wall-clock solver time is the only nondeterministic field.
        h.solver_seconds = 0.0;
        w.solver_seconds = 0.0;
        prop_assert_eq!(h, w);
    }
}
