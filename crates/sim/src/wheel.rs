//! Hierarchical timer wheel — O(1) amortized event scheduling.
//!
//! The binary-heap [`EventQueue`] pays `O(log n)` per push/pop with `n`
//! events in flight; at production scale (millions of items pushing
//! refreshes) the heap churn dominates the simulator hot loop. A
//! hierarchical timer wheel files each event into a time bucket in O(1)
//! and drains buckets in time order, paying a small sort only when a
//! bucket is opened.
//!
//! # Exactness contract
//!
//! [`TimerWheel`] is **order-identical** to the heap, not merely
//! approximately so: events pop in ascending `(time, seq)` order, where
//! `seq` is the monotonic push counter — the exact total order
//! [`EventQueue`] produces. Two facts make this work:
//!
//! 1. Bucketing is *floor* quantization (`q = ⌊time·64⌋`), which is
//!    monotone: `t1 < t2` implies `q1 <= q2`, so draining buckets in
//!    index order never pops a later event before an earlier one.
//! 2. When a bucket is opened its entries are sorted by `(time, seq)`,
//!    and events pushed *into the bucket currently being drained* (a
//!    zero-delay push at the current instant) are merge-inserted at
//!    their sorted position.
//!
//! Consequently every [`crate::SimMetrics`] field of a fixed-seed run is
//! byte-identical under [`Scheduler::Heap`] and [`Scheduler::Wheel`] —
//! enforced by the cross-scheduler proptest and the `simbench` parity
//! gate.
//!
//! # Layout
//!
//! Four levels of 64 slots at a resolution of 1/64 s cover ~2^24
//! quanta (~3 days of simulated time); farther events wait in an
//! overflow list that is re-filed (a *cascade*) when the wheel advances
//! into their span. Each level-`l` slot spans `64^l` quanta; advancing
//! past a level's window re-files its next occupied slot into finer
//! buckets, also counted as a cascade (see [`TimerWheel::cascades`],
//! exported as the `sched.cascade` counter).

use crate::event::{Event, EventQueue};

/// Which backend schedules the simulator's events.
///
/// Both produce byte-identical simulations on a fixed seed; the wheel is
/// the scale-out choice once many events are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The binary-heap [`EventQueue`] (`O(log n)` push/pop) — the
    /// reference implementation and the default.
    #[default]
    Heap,
    /// The hierarchical [`TimerWheel`] (`O(1)` amortized push/pop).
    Wheel,
}

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;
/// Wheel resolution: quanta per simulated second.
const QUANTA_PER_SEC: f64 = 64.0;

#[inline]
fn quantum(time: f64) -> u64 {
    // Floor for non-negative input (push asserts time >= 0), saturating
    // far beyond the wheel span for pathological times.
    (time * QUANTA_PER_SEC) as u64
}

#[derive(Debug, Clone)]
struct WheelEntry {
    time: f64,
    seq: u64,
    event: Event,
}

#[inline]
fn entry_before(a: &WheelEntry, time: f64, seq: u64) -> bool {
    match a.time.total_cmp(&time) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => a.seq < seq,
        std::cmp::Ordering::Greater => false,
    }
}

/// A hierarchical timer wheel with the same API and the same total event
/// order as [`EventQueue`] — see the module docs for the exactness
/// argument.
#[derive(Debug)]
pub struct TimerWheel {
    /// `levels[l][s]`: unsorted bucket for the level-`l` slot `s`.
    levels: Vec<Vec<Vec<WheelEntry>>>,
    /// Events beyond the wheel span, re-filed on cascade.
    overflow: Vec<WheelEntry>,
    /// The quantum currently being drained; `ready` holds its events.
    cur: u64,
    /// Sorted (by `(time, seq)`) events of quantum `cur`; drained from
    /// `ready_pos` so already-popped entries are not shifted out.
    ready: Vec<WheelEntry>,
    ready_pos: usize,
    seq: u64,
    len: usize,
    cascades: u64,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel positioned at time 0.
    pub fn new() -> Self {
        TimerWheel {
            levels: vec![vec![Vec::new(); SLOTS]; LEVELS],
            overflow: Vec::new(),
            cur: 0,
            ready: Vec::new(),
            ready_pos: 0,
            seq: 0,
            len: 0,
            cascades: 0,
        }
    }

    /// Schedules `event` at absolute `time` — O(1).
    pub fn push(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite() && time >= 0.0);
        let entry = WheelEntry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        self.file(entry);
    }

    /// Files one entry into the ready run, a wheel slot, or overflow.
    fn file(&mut self, entry: WheelEntry) {
        let q = quantum(entry.time);
        if q <= self.cur {
            // The quantum currently being drained (e.g. a zero-delay
            // push at the current instant): merge-insert so the ready
            // run stays sorted by (time, seq).
            let at = self.ready_pos
                + self.ready[self.ready_pos..]
                    .partition_point(|e| entry_before(e, entry.time, entry.seq));
            self.ready.insert(at, entry);
            return;
        }
        for l in 0..LEVELS {
            let window = SLOT_BITS * (l as u32 + 1);
            if q >> window == self.cur >> window {
                let slot = ((q >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
                self.levels[l][slot].push(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Advances `cur` to the next occupied quantum and loads its sorted
    /// bucket into `ready`. Requires `len > 0` and an exhausted ready
    /// run.
    fn advance(&mut self) {
        debug_assert!(self.len > 0);
        debug_assert!(self.ready_pos >= self.ready.len());
        self.ready.clear();
        self.ready_pos = 0;
        'search: loop {
            // Level 0: remaining quanta of the current 64-quantum window.
            let base = self.cur & !(SLOTS as u64 - 1);
            let start = (self.cur & (SLOTS as u64 - 1)) as usize;
            for s in start + 1..SLOTS {
                if !self.levels[0][s].is_empty() {
                    self.cur = base + s as u64;
                    std::mem::swap(&mut self.ready, &mut self.levels[0][s]);
                    break 'search;
                }
            }
            // Cascade: re-file the next occupied coarser slot into finer
            // buckets (entries at the slot's first quantum land directly
            // in `ready` via `file`).
            for l in 1..LEVELS {
                let lshift = SLOT_BITS * l as u32;
                let wshift = lshift + SLOT_BITS;
                let wbase = (self.cur >> wshift) << wshift;
                let lstart = ((self.cur >> lshift) & (SLOTS as u64 - 1)) as usize;
                for s in lstart + 1..SLOTS {
                    if self.levels[l][s].is_empty() {
                        continue;
                    }
                    self.cur = wbase + ((s as u64) << lshift);
                    let entries = std::mem::take(&mut self.levels[l][s]);
                    self.cascades += 1;
                    for e in entries {
                        self.file(e);
                    }
                    if self.ready.is_empty() {
                        continue 'search;
                    }
                    break 'search;
                }
            }
            // The whole wheel span is empty: jump to the earliest
            // overflow quantum and re-file.
            debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing scheduled");
            self.cur = self
                .overflow
                .iter()
                .map(|e| quantum(e.time))
                .min()
                .expect("overflow non-empty");
            self.cascades += 1;
            let entries = std::mem::take(&mut self.overflow);
            for e in entries {
                self.file(e);
            }
            debug_assert!(!self.ready.is_empty());
            break 'search;
        }
        self.ready[self.ready_pos..]
            .sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
    }

    /// The time of the earliest pending event, if any. Takes `&mut self`
    /// because peeking may open the next bucket (no event is lost).
    pub fn peek_time(&mut self) -> Option<f64> {
        if self.ready_pos >= self.ready.len() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        Some(self.ready[self.ready_pos].time)
    }

    /// Pops the next event if it occurs at or before `horizon`.
    pub fn pop_until(&mut self, horizon: f64) -> Option<(f64, Event)> {
        let t = self.peek_time()?;
        if t > horizon {
            return None;
        }
        let entry = self.ready[self.ready_pos].clone();
        self.ready_pos += 1;
        self.len -= 1;
        if self.ready_pos >= self.ready.len() {
            self.ready.clear();
            self.ready_pos = 0;
        }
        Some((entry.time, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cascades performed so far: coarse slots or the overflow list
    /// re-filed into finer buckets (the `sched.cascade` counter).
    pub fn cascades(&self) -> u64 {
        self.cascades
    }
}

/// The engine's event queue, dispatching on the configured
/// [`Scheduler`]. Both backends expose the identical contract: pops
/// ascend in `(time, push-order)` and are byte-identical between
/// backends.
#[derive(Debug)]
pub enum SimQueue {
    /// Binary-heap backend ([`EventQueue`]).
    Heap(EventQueue),
    /// Timer-wheel backend ([`TimerWheel`]).
    Wheel(TimerWheel),
}

impl SimQueue {
    /// An empty queue for the given scheduler.
    pub fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Heap => SimQueue::Heap(EventQueue::new()),
            Scheduler::Wheel => SimQueue::Wheel(TimerWheel::new()),
        }
    }

    /// Schedules `event` at absolute `time`.
    #[inline]
    pub fn push(&mut self, time: f64, event: Event) {
        match self {
            SimQueue::Heap(q) => q.push(time, event),
            SimQueue::Wheel(w) => w.push(time, event),
        }
    }

    /// Pops the next event if it occurs at or before `horizon`.
    #[inline]
    pub fn pop_until(&mut self, horizon: f64) -> Option<(f64, Event)> {
        match self {
            SimQueue::Heap(q) => q.pop_until(horizon),
            SimQueue::Wheel(w) => w.pop_until(horizon),
        }
    }

    /// The time of the earliest pending event, if any (`&mut` because
    /// the wheel may open its next bucket; no event is lost).
    #[inline]
    pub fn peek_time(&mut self) -> Option<f64> {
        match self {
            SimQueue::Heap(q) => q.peek_time(),
            SimQueue::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            SimQueue::Heap(q) => q.len(),
            SimQueue::Wheel(w) => w.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timer-wheel cascades so far (0 for the heap backend).
    pub fn cascades(&self) -> u64 {
        match self {
            SimQueue::Heap(_) => 0,
            SimQueue::Wheel(w) => w.cascades(),
        }
    }
}

/// Shared scheduler-contract check: events pushed at equal times must
/// pop in push (FIFO) order, interleaved correctly with other times.
///
/// Used by both the heap tests (`event.rs`) and the wheel tests so the
/// two backends are held to the same ordering contract by the same
/// code.
#[cfg(test)]
pub(crate) fn assert_fifo_within_tick(queue: &mut SimQueue) {
    assert!(queue.is_empty(), "helper expects an empty queue");
    // Pushes carry their global push index as the item id; times repeat
    // within ticks and arrive out of time order.
    let times = [5.0, 5.0, 2.0, 5.0, 2.0, 9.5, 2.0, 9.5, 5.0, 0.0];
    for (i, &t) in times.iter().enumerate() {
        queue.push(
            t,
            Event::RefreshArrive {
                item: i,
                value: 0.0,
            },
        );
    }
    let mut popped: Vec<(f64, usize)> = Vec::new();
    while let Some((t, e)) = queue.pop_until(f64::INFINITY) {
        match e {
            Event::RefreshArrive { item, .. } => popped.push((t, item)),
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(popped.len(), times.len());
    for w in popped.windows(2) {
        let ((t0, i0), (t1, i1)) = (w[0], w[1]);
        assert!(t0 <= t1, "time order violated: {t0} after {t1}");
        if t0 == t1 {
            assert!(i0 < i1, "FIFO violated within tick {t0}: {i0} before {i1}");
        }
    }
    // And the exact expected order, for good measure.
    let order: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
    assert_eq!(order, vec![9, 2, 4, 6, 0, 1, 3, 8, 5, 7]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(item: usize) -> Event {
        Event::RefreshArrive { item, value: 0.0 }
    }

    fn drain(w: &mut TimerWheel) -> Vec<(f64, usize)> {
        std::iter::from_fn(|| w.pop_until(f64::INFINITY))
            .map(|(t, e)| match e {
                Event::RefreshArrive { item, .. } => (t, item),
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.push(3.0, refresh(3));
        w.push(1.0, refresh(1));
        w.push(2.0, refresh(2));
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_is_fifo() {
        assert_fifo_within_tick(&mut SimQueue::new(Scheduler::Wheel));
    }

    #[test]
    fn sub_quantum_times_sort_exactly() {
        // Times closer together than the 1/64 s resolution share a
        // bucket; the sorted drain must still order them by time.
        let mut w = TimerWheel::new();
        w.push(1.010, refresh(2));
        w.push(1.002, refresh(1));
        w.push(1.013, refresh(3));
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn horizon_is_respected() {
        let mut w = TimerWheel::new();
        w.push(1.0, refresh(1));
        w.push(5.0, refresh(5));
        assert!(w.pop_until(2.0).is_some());
        assert!(w.pop_until(2.0).is_none());
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert!(w.pop_until(5.0).is_some());
    }

    #[test]
    fn peek_time_sees_the_earliest_event() {
        let mut w = TimerWheel::new();
        assert_eq!(w.peek_time(), None);
        w.push(5.0, refresh(5));
        w.push(1.0, refresh(1));
        assert_eq!(w.peek_time(), Some(1.0));
        w.pop_until(10.0);
        assert_eq!(w.peek_time(), Some(5.0));
    }

    #[test]
    fn push_into_currently_drained_bucket_keeps_order() {
        // Pop at t, then push more events at the same instant (what a
        // zero-delay recompute does): they must pop after the already
        // scheduled same-time events, in push order.
        let mut w = TimerWheel::new();
        w.push(1.0, refresh(0));
        w.push(1.0, refresh(1));
        assert_eq!(w.pop_until(1.0).map(|(_, e)| e), Some(refresh(0)));
        w.push(1.0, refresh(2));
        w.push(1.0001, refresh(3));
        let order: Vec<usize> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cascade_across_level_boundaries_is_lossless() {
        // Events spread far beyond one level-0 window (64 quanta = 1 s):
        // spanning minutes forces level-1/2 cascades.
        let mut w = TimerWheel::new();
        let times: Vec<f64> = (0..200).map(|k| (k as f64) * 37.21).collect();
        for (i, &t) in times.iter().enumerate().rev() {
            w.push(t, refresh(i));
        }
        let popped = drain(&mut w);
        assert_eq!(popped.len(), times.len());
        let items: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        assert_eq!(items, (0..200).collect::<Vec<_>>());
        assert!(w.cascades() > 0, "spanning minutes must cascade");
    }

    #[test]
    fn far_future_events_wait_in_overflow() {
        // Beyond the 4-level span (64^4 quanta = 262144 s) events sit in
        // the overflow bucket and are re-filed when the wheel arrives.
        let mut w = TimerWheel::new();
        w.push(300_000.0, refresh(9));
        w.push(1.0, refresh(0));
        w.push(300_000.5, refresh(10));
        let popped = drain(&mut w);
        assert_eq!(
            popped,
            vec![(1.0, 0), (300_000.0, 9), (300_000.5, 10)],
            "overflow events pop last, in time order"
        );
        assert!(w.cascades() > 0, "overflow re-file counts as a cascade");
    }

    #[test]
    fn matches_heap_order_on_adversarial_interleaving() {
        // Deterministic pseudo-random pushes and pops, mirrored against
        // the heap: the pop streams must be identical, including times.
        let mut heap = SimQueue::new(Scheduler::Heap);
        let mut wheel = SimQueue::new(Scheduler::Wheel);
        let mut state = 0x9E3779B97F4A7C15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0.0_f64;
        for i in 0..3000 {
            let r = next();
            if r % 5 < 3 {
                // Push at clock + pseudo-random delay; ~1/4 land on the
                // exact current instant to exercise same-bucket merges.
                let delay = if r % 4 == 0 {
                    0.0
                } else {
                    ((r >> 8) % 10_000) as f64 / 61.0
                };
                heap.push(clock + delay, refresh(i));
                wheel.push(clock + delay, refresh(i));
            } else {
                let h = heap.pop_until(f64::INFINITY);
                let w = wheel.pop_until(f64::INFINITY);
                assert_eq!(h, w, "pop #{i} diverged");
                if let Some((t, _)) = h {
                    clock = clock.max(t);
                }
            }
        }
        loop {
            let h = heap.pop_until(f64::INFINITY);
            let w = wheel.pop_until(f64::INFINITY);
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }
}
