//! Discrete-event queue with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events flowing through the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A data refresh from a source arrives at the coordinator.
    RefreshArrive {
        /// Refreshed item (dense id).
        item: usize,
        /// The item's value at the source when pushed.
        value: f64,
    },
    /// A DAB-change message from the coordinator arrives at a source.
    DabChangeArrive {
        /// Item whose filter changes.
        item: usize,
        /// The new filter width.
        dab: f64,
    },
}

#[derive(Debug)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert to pop the earliest event;
        // FIFO tiebreak on the sequence number keeps runs deterministic.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue (earliest first; FIFO among equal times).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `time`.
    pub fn push(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite() && time >= 0.0);
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event if it occurs at or before `horizon`.
    pub fn pop_until(&mut self, horizon: f64) -> Option<(f64, Event)> {
        if self.heap.peek().is_some_and(|s| s.time <= horizon) {
            self.heap.pop().map(|s| (s.time, s.event))
        } else {
            None
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(item: usize) -> Event {
        Event::RefreshArrive { item, value: 0.0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, refresh(3));
        q.push(1.0, refresh(1));
        q.push(2.0, refresh(2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_until(f64::INFINITY))
            .map(|(_, e)| match e {
                Event::RefreshArrive { item, .. } => item,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(1.0, refresh(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_until(2.0))
            .map(|(_, e)| match e {
                Event::RefreshArrive { item, .. } => item,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_tick_is_fifo() {
        use crate::wheel::{assert_fifo_within_tick, Scheduler, SimQueue};
        assert_fifo_within_tick(&mut SimQueue::new(Scheduler::Heap));
    }

    #[test]
    fn horizon_is_respected() {
        let mut q = EventQueue::new();
        q.push(1.0, refresh(1));
        q.push(5.0, refresh(5));
        assert!(q.pop_until(2.0).is_some());
        assert!(q.pop_until(2.0).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_sees_the_earliest_event() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(5.0, refresh(5));
        q.push(1.0, refresh(1));
        assert_eq!(q.peek_time(), Some(1.0));
        q.pop_until(10.0);
        assert_eq!(q.peek_time(), Some(5.0));
    }
}
