//! Metrics collected by a simulation run (§V-A, "Metrics"), including
//! the per-query/per-item attribution rollups that answer "which query
//! is eating the μ budget?" and "which item forces the recomputations?".

/// Counters and derived measures from one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Refresh messages arriving at the coordinator (metric 2).
    pub refreshes: u64,
    /// Total DAB recomputations across all queries (metric 3).
    pub recomputations: u64,
    /// DAB-change messages sent from the coordinator to sources after
    /// recomputations (informational; the paper folds these into `mu`).
    pub dab_change_messages: u64,
    /// Query values pushed to users after QAB-violating refreshes.
    pub user_notifications: u64,
    /// Per-query count of fidelity samples that violated the QAB.
    pub per_query_violations: Vec<u64>,
    /// Per-query DAB recomputation counts; sums to `recomputations`.
    pub per_query_recomputations: Vec<u64>,
    /// Per-item refresh arrivals; sums to `refreshes`. Empty when the
    /// run was constructed without item attribution (see
    /// [`SimMetrics::with_items`]).
    pub per_item_refreshes: Vec<u64>,
    /// Per-item count of refreshes whose arrival forced at least one
    /// DAB recomputation — the "who triggers the solver" attribution.
    pub per_item_recompute_triggers: Vec<u64>,
    /// Batched-ingestion drains: groups of same-instant refreshes
    /// applied through one fused delta sweep. Stays 0 whenever the delay
    /// model keeps the coordinator service busy (batching only engages
    /// under service-free delays; see DESIGN.md §12), and is identical
    /// across schedulers and eval modes.
    pub ingest_batches: u64,
    /// Number of fidelity samples taken (per query).
    pub fidelity_samples: u64,
    /// Messages dropped by failure injection (refreshes and DAB changes).
    pub lost_messages: u64,
    /// Wall-clock seconds spent inside DAB solvers (solver-cost proxy).
    pub solver_seconds: f64,
}

impl SimMetrics {
    /// Creates zeroed metrics for `n_queries` queries with no item
    /// attribution (the per-item vectors stay empty).
    pub fn new(n_queries: usize) -> Self {
        Self::with_items(n_queries, 0)
    }

    /// Creates zeroed metrics for `n_queries` queries and `n_items`
    /// attributed data items.
    pub fn with_items(n_queries: usize, n_items: usize) -> Self {
        SimMetrics {
            per_query_violations: vec![0; n_queries],
            per_query_recomputations: vec![0; n_queries],
            per_item_refreshes: vec![0; n_items],
            per_item_recompute_triggers: vec![0; n_items],
            ..Default::default()
        }
    }

    /// Total cost in messages: `refreshes + mu * recomputations`
    /// (metric 4).
    pub fn total_cost(&self, mu: f64) -> f64 {
        self.refreshes as f64 + mu * self.recomputations as f64
    }

    /// Mean loss in fidelity across queries, in percent (metric 1):
    /// the fraction of observed time a query's QAB was violated.
    ///
    /// Degenerate inputs are handled conservatively: with no samples or
    /// no queries the loss is 0, and a per-query violation count larger
    /// than the sample count (possible only if the struct was populated
    /// by hand or merged from disagreeing runs) is clamped so no query
    /// contributes more than 100%.
    pub fn loss_in_fidelity_percent(&self) -> f64 {
        if self.fidelity_samples == 0 || self.per_query_violations.is_empty() {
            return 0.0;
        }
        let mean_violation: f64 = self
            .per_query_violations
            .iter()
            .map(|&v| v.min(self.fidelity_samples) as f64 / self.fidelity_samples as f64)
            .sum::<f64>()
            / self.per_query_violations.len() as f64;
        100.0 * mean_violation
    }

    /// Lossless bridge from the telemetry registry: reconstructs the
    /// counters of a finished run from an [`pq_obs::Obs`] snapshot taken
    /// after [`crate::run_observed`] returned.
    ///
    /// Counter names follow [`pq_obs::names`]; per-query violations live
    /// under `sim.qab_violation.q<i>` for `i in 0..n_queries`, the
    /// attribution rollups come from the labeled families
    /// (`dab.recompute` by `query`, `sim.refresh` and
    /// `dab.recompute_trigger` by `item`), and `solver_seconds` is the
    /// (nanosecond-exact) sum of the `sim.solve_ns` histogram.
    ///
    /// Any `sim.`/`dab.` counter in the snapshot this bridge does not
    /// consume is reported as an [`pq_obs::names::OBS_UNKNOWN_METRIC`]
    /// event on `obs` — schema drift between writer and reader is made
    /// visible instead of silently dropped.
    pub fn from_snapshot(snapshot: &pq_obs::Snapshot, n_queries: usize, obs: &pq_obs::Obs) -> Self {
        use pq_obs::names;

        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let per_query_violations: Vec<u64> = (0..n_queries)
            .map(|qi| counter(&format!("{}.q{qi}", names::SIM_QAB_VIOLATION)))
            .collect();
        // Per-query/per-item rollups from the labeled families. The
        // engine pre-creates every label in 0..n, so the family size is
        // the item dimension.
        let per_query = |name: &str| {
            snapshot
                .labeled
                .get(name)
                .map(|f| f.dense(n_queries))
                .unwrap_or_else(|| vec![0; n_queries])
        };
        let per_item = |name: &str| {
            snapshot
                .labeled
                .get(name)
                .map(|f| f.dense(f.values.len()))
                .unwrap_or_default()
        };

        // Schema-drift guard: every `sim.`/`dab.` counter must be one
        // this bridge consumes.
        for (name, &value) in &snapshot.counters {
            let known = [
                names::SIM_REFRESH,
                names::DAB_RECOMPUTE,
                names::SIM_DAB_CHANGE,
                names::SIM_USER_NOTIFY,
                names::SIM_FIDELITY_SAMPLE,
                names::SIM_LOST_MESSAGE,
            ]
            .contains(&name.as_str())
                || name
                    .strip_prefix(&format!("{}.q", names::SIM_QAB_VIOLATION))
                    .is_some_and(|qi| qi.parse::<usize>().is_ok_and(|qi| qi < n_queries));
            if !known && (name.starts_with("sim.") || name.starts_with("dab.")) {
                let name = name.clone();
                obs.emit_with(names::OBS_UNKNOWN_METRIC, pq_obs::EventKind::Point, |e| {
                    e.with("name", name).with("value", value)
                });
            }
        }

        SimMetrics {
            refreshes: counter(names::SIM_REFRESH),
            recomputations: counter(names::DAB_RECOMPUTE),
            dab_change_messages: counter(names::SIM_DAB_CHANGE),
            user_notifications: counter(names::SIM_USER_NOTIFY),
            per_query_violations,
            per_query_recomputations: per_query(names::DAB_RECOMPUTE),
            per_item_refreshes: per_item(names::SIM_REFRESH),
            per_item_recompute_triggers: per_item(names::DAB_RECOMPUTE_TRIGGER),
            ingest_batches: counter(names::INGEST_BATCH),
            fidelity_samples: counter(names::SIM_FIDELITY_SAMPLE),
            lost_messages: counter(names::SIM_LOST_MESSAGE),
            solver_seconds: snapshot
                .histograms
                .get(names::SIM_SOLVE_NS)
                .map(|h| h.sum as f64 / 1e9)
                .unwrap_or(0.0),
        }
    }

    /// The `k` heaviest entries of an attribution vector as
    /// `(index, count)` pairs, heaviest first, zero entries skipped —
    /// e.g. `top_k(&m.per_item_recompute_triggers, 5)` is the paper-cost
    /// "which items force the solver" list.
    pub fn top_k(rollup: &[u64], k: usize) -> Vec<(usize, u64)> {
        let mut pairs: Vec<(usize, u64)> = rollup
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, v)| v > 0)
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_combines_refreshes_and_recomputations() {
        let mut m = SimMetrics::new(1);
        m.refreshes = 100;
        m.recomputations = 10;
        assert_eq!(m.total_cost(5.0), 150.0);
        assert_eq!(m.total_cost(0.0), 100.0);
    }

    #[test]
    fn fidelity_loss_is_mean_over_queries() {
        let mut m = SimMetrics::new(2);
        m.fidelity_samples = 100;
        m.per_query_violations = vec![10, 30];
        assert!((m.loss_in_fidelity_percent() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_loss_with_no_samples_is_zero() {
        let m = SimMetrics::new(3);
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn fidelity_loss_with_no_queries_is_zero() {
        let mut m = SimMetrics::new(0);
        m.fidelity_samples = 100;
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn fidelity_loss_clamps_violations_to_sample_count() {
        // A hand-merged struct can disagree; each query caps at 100%.
        let mut m = SimMetrics::new(1);
        m.fidelity_samples = 10;
        m.per_query_violations = vec![25];
        assert_eq!(m.loss_in_fidelity_percent(), 100.0);
    }

    #[test]
    fn fidelity_loss_mixes_violating_and_clean_queries() {
        let mut m = SimMetrics::new(3);
        m.fidelity_samples = 50;
        m.per_query_violations = vec![0, 50, 25];
        // (0% + 100% + 50%) / 3
        assert!((m.loss_in_fidelity_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn from_snapshot_of_empty_registry_is_zeroed() {
        let snap = pq_obs::Snapshot::default();
        let m = SimMetrics::from_snapshot(&snap, 2, &pq_obs::Obs::null());
        assert_eq!(m, SimMetrics::new(2));
    }

    #[test]
    fn from_snapshot_reads_counters_by_name() {
        let obs = pq_obs::Obs::null();
        obs.counter(pq_obs::names::SIM_REFRESH).add(7);
        obs.counter(pq_obs::names::DAB_RECOMPUTE).add(3);
        obs.counter(&format!("{}.q1", pq_obs::names::SIM_QAB_VIOLATION))
            .add(2);
        obs.counter(pq_obs::names::SIM_FIDELITY_SAMPLE).add(9);
        obs.histogram(pq_obs::names::SIM_SOLVE_NS)
            .record(1_500_000_000);
        let m = SimMetrics::from_snapshot(&obs.snapshot(), 2, &obs);
        assert_eq!(m.refreshes, 7);
        assert_eq!(m.recomputations, 3);
        assert_eq!(m.per_query_violations, vec![0, 2]);
        assert_eq!(m.fidelity_samples, 9);
        assert!((m.solver_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_snapshot_reconstructs_attribution_rollups() {
        let obs = pq_obs::Obs::null();
        use pq_obs::names;
        obs.counter(names::DAB_RECOMPUTE).add(5);
        obs.labeled_counter(names::DAB_RECOMPUTE, names::LABEL_QUERY, "0")
            .add(2);
        obs.labeled_counter(names::DAB_RECOMPUTE, names::LABEL_QUERY, "1")
            .add(3);
        for (item, n) in [("0", 4u64), ("1", 6)] {
            obs.labeled_counter(names::SIM_REFRESH, names::LABEL_ITEM, item)
                .add(n);
            obs.labeled_counter(names::DAB_RECOMPUTE_TRIGGER, names::LABEL_ITEM, item)
                .add(n / 2);
        }
        let m = SimMetrics::from_snapshot(&obs.snapshot(), 2, &obs);
        assert_eq!(m.per_query_recomputations, vec![2, 3]);
        assert_eq!(m.per_query_recomputations.iter().sum::<u64>(), 5);
        assert_eq!(m.per_item_refreshes, vec![4, 6]);
        assert_eq!(m.per_item_recompute_triggers, vec![2, 3]);
    }

    #[test]
    fn from_snapshot_reports_unknown_sim_counters() {
        let writer = pq_obs::Obs::null();
        writer.counter(pq_obs::names::SIM_REFRESH).add(1);
        writer.counter("sim.renamed_in_v3").add(9);
        writer.counter("dab.mystery").add(2);
        writer.counter("bench.run").inc(); // foreign namespace: ignored
        let snap = writer.snapshot();

        let (reader, ring) = pq_obs::Obs::ring(16);
        let m = SimMetrics::from_snapshot(&snap, 1, &reader);
        assert_eq!(m.refreshes, 1, "known counters still bridge");
        let events = ring.events();
        let unknown: Vec<&pq_obs::Event> = events
            .iter()
            .filter(|e| e.target == pq_obs::names::OBS_UNKNOWN_METRIC)
            .collect();
        let named = |n: &str| {
            unknown.iter().any(|e| {
                e.fields
                    .iter()
                    .any(|(_, v)| matches!(v, pq_obs::Value::Str(s) if s == n))
            })
        };
        assert_eq!(unknown.len(), 2, "events: {events:?}");
        assert!(named("sim.renamed_in_v3"));
        assert!(named("dab.mystery"));
    }

    #[test]
    fn top_k_ranks_heaviest_first_and_skips_zeros() {
        let rollup = [0, 7, 3, 0, 7, 1];
        assert_eq!(
            SimMetrics::top_k(&rollup, 3),
            vec![(1, 7), (4, 7), (2, 3)],
            "ties break toward the lower index"
        );
        assert_eq!(SimMetrics::top_k(&[0, 0], 5), vec![]);
    }
}
