//! Metrics collected by a simulation run (§V-A, "Metrics").

/// Counters and derived measures from one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Refresh messages arriving at the coordinator (metric 2).
    pub refreshes: u64,
    /// Total DAB recomputations across all queries (metric 3).
    pub recomputations: u64,
    /// DAB-change messages sent from the coordinator to sources after
    /// recomputations (informational; the paper folds these into `mu`).
    pub dab_change_messages: u64,
    /// Query values pushed to users after QAB-violating refreshes.
    pub user_notifications: u64,
    /// Per-query count of fidelity samples that violated the QAB.
    pub per_query_violations: Vec<u64>,
    /// Number of fidelity samples taken (per query).
    pub fidelity_samples: u64,
    /// Messages dropped by failure injection (refreshes and DAB changes).
    pub lost_messages: u64,
    /// Wall-clock seconds spent inside DAB solvers (solver-cost proxy).
    pub solver_seconds: f64,
}

impl SimMetrics {
    /// Creates zeroed metrics for `n_queries` queries.
    pub fn new(n_queries: usize) -> Self {
        SimMetrics {
            per_query_violations: vec![0; n_queries],
            ..Default::default()
        }
    }

    /// Total cost in messages: `refreshes + mu * recomputations`
    /// (metric 4).
    pub fn total_cost(&self, mu: f64) -> f64 {
        self.refreshes as f64 + mu * self.recomputations as f64
    }

    /// Mean loss in fidelity across queries, in percent (metric 1):
    /// the fraction of observed time a query's QAB was violated.
    ///
    /// Degenerate inputs are handled conservatively: with no samples or
    /// no queries the loss is 0, and a per-query violation count larger
    /// than the sample count (possible only if the struct was populated
    /// by hand or merged from disagreeing runs) is clamped so no query
    /// contributes more than 100%.
    pub fn loss_in_fidelity_percent(&self) -> f64 {
        if self.fidelity_samples == 0 || self.per_query_violations.is_empty() {
            return 0.0;
        }
        let mean_violation: f64 = self
            .per_query_violations
            .iter()
            .map(|&v| v.min(self.fidelity_samples) as f64 / self.fidelity_samples as f64)
            .sum::<f64>()
            / self.per_query_violations.len() as f64;
        100.0 * mean_violation
    }

    /// Lossless bridge from the telemetry registry: reconstructs the
    /// counters of a finished run from an [`pq_obs::Obs`] snapshot taken
    /// after [`crate::run_observed`] returned.
    ///
    /// Counter names follow [`pq_obs::names`]; per-query violations live
    /// under `sim.qab_violation.q<i>` for `i in 0..n_queries`, and
    /// `solver_seconds` is the (nanosecond-exact) sum of the
    /// `sim.solve_ns` histogram.
    pub fn from_snapshot(snapshot: &pq_obs::Snapshot, n_queries: usize) -> Self {
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let per_query_violations = (0..n_queries)
            .map(|qi| counter(&format!("{}.q{qi}", pq_obs::names::SIM_QAB_VIOLATION)))
            .collect();
        SimMetrics {
            refreshes: counter(pq_obs::names::SIM_REFRESH),
            recomputations: counter(pq_obs::names::DAB_RECOMPUTE),
            dab_change_messages: counter(pq_obs::names::SIM_DAB_CHANGE),
            user_notifications: counter(pq_obs::names::SIM_USER_NOTIFY),
            per_query_violations,
            fidelity_samples: counter(pq_obs::names::SIM_FIDELITY_SAMPLE),
            lost_messages: counter(pq_obs::names::SIM_LOST_MESSAGE),
            solver_seconds: snapshot
                .histograms
                .get(pq_obs::names::SIM_SOLVE_NS)
                .map(|h| h.sum as f64 / 1e9)
                .unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_combines_refreshes_and_recomputations() {
        let mut m = SimMetrics::new(1);
        m.refreshes = 100;
        m.recomputations = 10;
        assert_eq!(m.total_cost(5.0), 150.0);
        assert_eq!(m.total_cost(0.0), 100.0);
    }

    #[test]
    fn fidelity_loss_is_mean_over_queries() {
        let mut m = SimMetrics::new(2);
        m.fidelity_samples = 100;
        m.per_query_violations = vec![10, 30];
        assert!((m.loss_in_fidelity_percent() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_loss_with_no_samples_is_zero() {
        let m = SimMetrics::new(3);
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn fidelity_loss_with_no_queries_is_zero() {
        let mut m = SimMetrics::new(0);
        m.fidelity_samples = 100;
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn fidelity_loss_clamps_violations_to_sample_count() {
        // A hand-merged struct can disagree; each query caps at 100%.
        let mut m = SimMetrics::new(1);
        m.fidelity_samples = 10;
        m.per_query_violations = vec![25];
        assert_eq!(m.loss_in_fidelity_percent(), 100.0);
    }

    #[test]
    fn fidelity_loss_mixes_violating_and_clean_queries() {
        let mut m = SimMetrics::new(3);
        m.fidelity_samples = 50;
        m.per_query_violations = vec![0, 50, 25];
        // (0% + 100% + 50%) / 3
        assert!((m.loss_in_fidelity_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn from_snapshot_of_empty_registry_is_zeroed() {
        let snap = pq_obs::Snapshot::default();
        let m = SimMetrics::from_snapshot(&snap, 2);
        assert_eq!(m, SimMetrics::new(2));
    }

    #[test]
    fn from_snapshot_reads_counters_by_name() {
        let obs = pq_obs::Obs::null();
        obs.counter(pq_obs::names::SIM_REFRESH).add(7);
        obs.counter(pq_obs::names::DAB_RECOMPUTE).add(3);
        obs.counter(&format!("{}.q1", pq_obs::names::SIM_QAB_VIOLATION))
            .add(2);
        obs.counter(pq_obs::names::SIM_FIDELITY_SAMPLE).add(9);
        obs.histogram(pq_obs::names::SIM_SOLVE_NS)
            .record(1_500_000_000);
        let m = SimMetrics::from_snapshot(&obs.snapshot(), 2);
        assert_eq!(m.refreshes, 7);
        assert_eq!(m.recomputations, 3);
        assert_eq!(m.per_query_violations, vec![0, 2]);
        assert_eq!(m.fidelity_samples, 9);
        assert!((m.solver_seconds - 1.5).abs() < 1e-12);
    }
}
