//! Metrics collected by a simulation run (§V-A, "Metrics").

/// Counters and derived measures from one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Refresh messages arriving at the coordinator (metric 2).
    pub refreshes: u64,
    /// Total DAB recomputations across all queries (metric 3).
    pub recomputations: u64,
    /// DAB-change messages sent from the coordinator to sources after
    /// recomputations (informational; the paper folds these into `mu`).
    pub dab_change_messages: u64,
    /// Query values pushed to users after QAB-violating refreshes.
    pub user_notifications: u64,
    /// Per-query count of fidelity samples that violated the QAB.
    pub per_query_violations: Vec<u64>,
    /// Number of fidelity samples taken (per query).
    pub fidelity_samples: u64,
    /// Messages dropped by failure injection (refreshes and DAB changes).
    pub lost_messages: u64,
    /// Wall-clock seconds spent inside DAB solvers (solver-cost proxy).
    pub solver_seconds: f64,
}

impl SimMetrics {
    /// Creates zeroed metrics for `n_queries` queries.
    pub fn new(n_queries: usize) -> Self {
        SimMetrics {
            per_query_violations: vec![0; n_queries],
            ..Default::default()
        }
    }

    /// Total cost in messages: `refreshes + mu * recomputations`
    /// (metric 4).
    pub fn total_cost(&self, mu: f64) -> f64 {
        self.refreshes as f64 + mu * self.recomputations as f64
    }

    /// Mean loss in fidelity across queries, in percent (metric 1):
    /// the fraction of observed time a query's QAB was violated.
    pub fn loss_in_fidelity_percent(&self) -> f64 {
        if self.fidelity_samples == 0 || self.per_query_violations.is_empty() {
            return 0.0;
        }
        let mean_violation: f64 = self
            .per_query_violations
            .iter()
            .map(|&v| v as f64 / self.fidelity_samples as f64)
            .sum::<f64>()
            / self.per_query_violations.len() as f64;
        100.0 * mean_violation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_combines_refreshes_and_recomputations() {
        let mut m = SimMetrics::new(1);
        m.refreshes = 100;
        m.recomputations = 10;
        assert_eq!(m.total_cost(5.0), 150.0);
        assert_eq!(m.total_cost(0.0), 100.0);
    }

    #[test]
    fn fidelity_loss_is_mean_over_queries() {
        let mut m = SimMetrics::new(2);
        m.fidelity_samples = 100;
        m.per_query_violations = vec![10, 30];
        assert!((m.loss_in_fidelity_percent() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_loss_with_no_samples_is_zero() {
        let m = SimMetrics::new(3);
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }
}
