//! Continuous fidelity audit: shadow evaluation of the delta plane.
//!
//! [`crate::engine::EvalMode::Delta`] and
//! [`crate::engine::EvalMode::Shared`] replace per-use naive
//! re-evaluation with incrementally maintained query values
//! ([`crate::incremental::DeltaView`] /
//! [`crate::incremental::SharedView`]). The `evalbench` parity gate
//! proves the two paths agree on fixed benchmark seeds — but a live run
//! with new traces, new queries, or a new scheduler backend has no such
//! certificate. The `FidelityAuditor` closes that gap *in production*:
//! every `every` ticks it picks a rotating sample of queries,
//! re-evaluates them from scratch with [`pq_poly::PolynomialQuery::eval`]
//! at both the source and the coordinator view, and compares
//!
//! * the **values** against the delta-maintained ones, and
//! * the **QAB violation decision** the engine would take from each.
//!
//! Agreement is reported as live gauges; any divergence increments the
//! eagerly-registered `audit.divergence` counter (so `pq_audit_divergence_total 0`
//! is always scrapeable as a health check) and emits a structured
//! `audit.divergence` event carrying the query, tick, both values, the
//! drift, and whether the value or the decision diverged.
//!
//! The audit consumes no randomness and writes no engine state, so a run
//! produces byte-identical [`crate::SimMetrics`] whether it is on or
//! off; its only cost is the sampled naive evaluations, surfaced by the
//! `audit.cost_per_refresh` gauge (shadow-evaluation nanoseconds per
//! processed refresh). Sampling guidance lives in DESIGN.md §9.

use std::sync::Arc;
use std::time::Instant;

use pq_obs::{names, Counter, EventKind, Gauge, Obs};
use pq_poly::PolynomialQuery;

/// Configuration of the continuous fidelity audit (see module docs).
///
/// Only active under [`crate::engine::EvalMode::Delta`] and
/// [`crate::engine::EvalMode::Shared`] — in naive mode the engine
/// already evaluates from scratch everywhere, so there is no second
/// plane to audit.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run one audit pass every this many ticks (`0` disables the
    /// auditor entirely).
    pub every: usize,
    /// Queries shadow-evaluated per pass, taken round-robin so every
    /// query is eventually covered regardless of the sample size.
    /// Clamped to the query count.
    pub sample: usize,
    /// Relative drift tolerance: query `q` diverges when
    /// `|naive - delta| > tolerance * (1 + |naive|)`. The default is
    /// three orders of magnitude above the rebase-bounded rounding
    /// drift of [`crate::incremental::DeltaView`] and far below any
    /// meaningful QAB.
    pub tolerance: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            every: 16,
            sample: 4,
            tolerance: 1e-9,
        }
    }
}

impl AuditConfig {
    /// The per-shard slice of this audit budget: each of `shards`
    /// coordinators shadow-evaluates `ceil(sample / shards)` of its own
    /// queries per pass (at least one), so the total audit cost of a
    /// partitioned run stays `O(1/K)` per thread while the round-robin
    /// cursor still eventually covers every query.
    pub fn per_shard(&self, shards: usize) -> AuditConfig {
        let k = shards.max(1);
        AuditConfig {
            sample: self.sample.div_ceil(k).max(1),
            ..self.clone()
        }
    }
}

/// One injected [`crate::incremental::DeltaView::corrupt`] (or
/// [`crate::incremental::SharedView::corrupt`]) call, applied to the
/// coordinator view just before the audit pass of the given tick —
/// fault injection proving the auditor catches a wrong delta plane
/// within one interval.
#[derive(Debug, Clone, Copy)]
pub struct AuditFault {
    /// Tick at which the corruption is applied.
    pub tick: usize,
    /// Query whose maintained value is perturbed.
    pub query: usize,
    /// Amount added to the maintained value.
    pub perturb: f64,
}

/// The shadow evaluator the engine drives once per audit interval.
#[derive(Debug)]
pub(crate) struct FidelityAuditor {
    cfg: AuditConfig,
    /// Round-robin position over the query index space.
    cursor: usize,
    /// Audited samples / naive-truth violations among them, driving the
    /// `audit.fidelity_loss_pct` gauge (the live estimate of the
    /// paper's loss metric from the audited subset).
    samples: u64,
    violations: u64,
    /// Largest value drift observed so far (gauge `audit.drift_max`).
    drift_max: f64,
    /// Total shadow-evaluation wall clock, in nanoseconds.
    audit_ns: u64,
    c_sample: Arc<Counter>,
    c_divergence: Arc<Counter>,
    g_fidelity_loss: Arc<Gauge>,
    g_drift_max: Arc<Gauge>,
    g_cost_per_refresh: Arc<Gauge>,
}

impl FidelityAuditor {
    /// Builds the auditor, eagerly registering its counters and gauges
    /// so they are scrapeable (at zero) before the first pass runs.
    pub(crate) fn new(cfg: AuditConfig, obs: &Obs) -> Self {
        let auditor = FidelityAuditor {
            cfg,
            cursor: 0,
            samples: 0,
            violations: 0,
            drift_max: 0.0,
            audit_ns: 0,
            c_sample: obs.counter(names::AUDIT_SAMPLE),
            c_divergence: obs.counter(names::AUDIT_DIVERGENCE),
            g_fidelity_loss: obs.gauge(names::AUDIT_FIDELITY_LOSS_PCT),
            g_drift_max: obs.gauge(names::AUDIT_DRIFT_MAX),
            g_cost_per_refresh: obs.gauge(names::AUDIT_COST_PER_REFRESH),
        };
        auditor.g_fidelity_loss.set(0.0);
        auditor.g_drift_max.set(0.0);
        auditor.g_cost_per_refresh.set(0.0);
        auditor
    }

    /// Runs one audit pass if `tick` falls on the configured interval.
    ///
    /// `src_values` / `coord_values` are the per-item value columns of
    /// the two views; `src_qv` / `coord_qv` the maintained per-query
    /// values of the delta plane under audit (either view's `values()`
    /// slice); `refreshes` the engine's processed-refresh count (for the
    /// cost gauge). Pure with respect to the simulation: reads only.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_tick(
        &mut self,
        tick: usize,
        queries: &[PolynomialQuery],
        src_values: &[f64],
        coord_values: &[f64],
        src_qv: &[f64],
        coord_qv: &[f64],
        refreshes: u64,
        obs: &Obs,
    ) {
        if self.cfg.every == 0 || !tick.is_multiple_of(self.cfg.every) || queries.is_empty() {
            return;
        }
        let started = Instant::now();
        let take = self.cfg.sample.clamp(1, queries.len());
        for _ in 0..take {
            let qi = self.cursor;
            self.cursor = (self.cursor + 1) % queries.len();
            self.audit_query(
                qi,
                tick,
                &queries[qi],
                src_values,
                coord_values,
                src_qv,
                coord_qv,
                obs,
            );
        }
        self.g_fidelity_loss
            .set(100.0 * self.violations as f64 / self.samples as f64);
        self.g_drift_max.set(self.drift_max);
        self.audit_ns += started.elapsed().as_nanos() as u64;
        self.g_cost_per_refresh
            .set(self.audit_ns as f64 / refreshes.max(1) as f64);
    }

    /// Shadow-evaluates one query at both views and compares values and
    /// the QAB decision against the delta plane.
    #[allow(clippy::too_many_arguments)]
    fn audit_query(
        &mut self,
        qi: usize,
        tick: usize,
        query: &PolynomialQuery,
        src_values: &[f64],
        coord_values: &[f64],
        src_qv: &[f64],
        coord_qv: &[f64],
        obs: &Obs,
    ) {
        self.samples += 1;
        self.c_sample.inc();
        let naive_src = query.eval(src_values);
        let naive_coord = query.eval(coord_values);
        let delta_src = src_qv[qi];
        let delta_coord = coord_qv[qi];
        if naive_src.is_finite()
            && naive_coord.is_finite()
            && (naive_src - naive_coord).abs() > query.qab()
        {
            self.violations += 1;
        }
        for (view, naive, delta) in [
            ("source", naive_src, delta_src),
            ("coordinator", naive_coord, delta_coord),
        ] {
            let drift = (naive - delta).abs();
            if drift.is_finite() && drift > self.drift_max {
                self.drift_max = drift;
            }
            // NaN drift (e.g. a poisoned delta plane) must diverge too.
            if drift.is_nan() || drift > self.cfg.tolerance * (1.0 + naive.abs()) {
                self.divergence(qi, tick, view, naive, delta, drift, "value", obs);
            }
        }
        // Decision parity: would the engine's QAB check fire? Only
        // flagged when the naive gap is robustly away from the QAB
        // boundary — a knife-edge sample flipping on rounding drift is
        // tolerance, not divergence.
        let naive_gap = (naive_src - naive_coord).abs();
        let delta_gap = (delta_src - delta_coord).abs();
        let qab = query.qab();
        let robust = (naive_gap - qab).abs() > self.cfg.tolerance * (1.0 + naive_gap);
        if robust && (naive_gap > qab) != (delta_gap > qab) {
            self.divergence(
                qi,
                tick,
                "decision",
                naive_gap,
                delta_gap,
                (naive_gap - delta_gap).abs(),
                "decision",
                obs,
            );
        }
    }

    /// Records one divergence: counter bump plus a structured event.
    #[allow(clippy::too_many_arguments)]
    fn divergence(
        &mut self,
        qi: usize,
        tick: usize,
        view: &'static str,
        naive: f64,
        cached: f64,
        drift: f64,
        kind: &'static str,
        obs: &Obs,
    ) {
        self.c_divergence.inc();
        obs.emit_with(names::AUDIT_DIVERGENCE, EventKind::Point, |e| {
            e.with("query", qi)
                .with("tick", tick)
                .with("view", view)
                .with("naive", naive)
                .with("cached", cached)
                .with("drift", drift)
                .with("kind", kind)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayConfig;
    use crate::engine::{run, run_observed, EvalMode, SimConfig};
    use pq_ddm::{Trace, TraceSet};
    use pq_obs::Value;
    use pq_poly::ItemId;

    fn audited_config() -> SimConfig {
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, 3.0, 400.0, 800),
            Trace::sinusoid(10.0, 2.0, 300.0, 800),
            Trace::sinusoid(15.0, 2.5, 350.0, 800),
        ]);
        let queries = vec![
            PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 8.0).unwrap(),
            PolynomialQuery::portfolio([(1.0, ItemId(1), ItemId(2))], 8.0).unwrap(),
        ];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = DelayConfig::planetlab_like();
        cfg.eval = EvalMode::Delta { rebase_every: 256 };
        cfg.audit = Some(AuditConfig {
            every: 4,
            sample: 2,
            ..AuditConfig::default()
        });
        cfg
    }

    #[test]
    fn clean_run_reports_zero_divergences() {
        let obs = Obs::null();
        run_observed(&audited_config(), &obs).unwrap();
        let snap = obs.snapshot();
        assert!(snap.counters[names::AUDIT_SAMPLE] > 0, "auditor never ran");
        assert_eq!(
            snap.counters[names::AUDIT_DIVERGENCE],
            0,
            "delta plane diverged from naive truth"
        );
        assert_eq!(snap.gauges[names::AUDIT_FIDELITY_LOSS_PCT], 0.0);
        assert!(snap.gauges[names::AUDIT_DRIFT_MAX] < 1e-9);
        assert!(snap.gauges[names::AUDIT_COST_PER_REFRESH] > 0.0);
    }

    #[test]
    fn injected_fault_is_caught_within_one_audit_interval() {
        let mut cfg = audited_config();
        let fault_tick = 100;
        cfg.audit_fault = Some(AuditFault {
            tick: fault_tick,
            query: 1,
            perturb: 500.0,
        });
        let (obs, ring) = Obs::ring(4096);
        run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        assert!(snap.counters[names::AUDIT_DIVERGENCE] > 0, "fault missed");
        let every = cfg
            .audit
            .as_ref()
            .expect("audited_config always sets an audit interval")
            .every;
        let caught_at = ring
            .events()
            .iter()
            .filter(|e| e.target == names::AUDIT_DIVERGENCE)
            .filter_map(|e| match e.field("tick") {
                Some(Value::U64(t)) => Some(*t as usize),
                _ => None,
            })
            .min()
            .expect("no divergence event emitted");
        assert!(
            caught_at >= fault_tick && caught_at < fault_tick + every,
            "fault at tick {fault_tick} first flagged at {caught_at} (interval {every})"
        );
    }

    #[test]
    fn metrics_are_identical_with_audit_on_and_off() {
        let audited = audited_config();
        let mut plain = audited.clone();
        plain.audit = None;
        let mut with_audit = run(&audited).unwrap();
        let mut without = run(&plain).unwrap();
        with_audit.solver_seconds = 0.0;
        without.solver_seconds = 0.0;
        assert_eq!(with_audit, without, "audit perturbed the simulation");
    }

    #[test]
    fn shared_eval_audits_cleanly_and_catches_faults() {
        // Clean shared-plan run: the auditor samples but never diverges.
        let mut cfg = audited_config();
        cfg.eval = EvalMode::Shared { rebase_every: 256 };
        let obs = Obs::null();
        run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        assert!(snap.counters[names::AUDIT_SAMPLE] > 0, "auditor never ran");
        assert_eq!(snap.counters[names::AUDIT_DIVERGENCE], 0);

        // A corrupted SharedView is flagged like a corrupted DeltaView.
        cfg.audit_fault = Some(AuditFault {
            tick: 100,
            query: 1,
            perturb: 500.0,
        });
        let obs = Obs::null();
        run_observed(&cfg, &obs).unwrap();
        assert!(
            obs.snapshot().counters[names::AUDIT_DIVERGENCE] > 0,
            "fault missed under shared evaluation"
        );
    }

    #[test]
    fn naive_mode_disables_the_auditor() {
        let mut cfg = audited_config();
        cfg.eval = EvalMode::Naive;
        let obs = Obs::null();
        run_observed(&cfg, &obs).unwrap();
        assert!(!obs.snapshot().counters.contains_key(names::AUDIT_SAMPLE));
    }

    #[test]
    fn round_robin_covers_every_query() {
        let obs = Obs::null();
        let mut cfg = audited_config();
        // One query per pass: coverage must still rotate across both.
        cfg.audit
            .as_mut()
            .expect("audited_config always sets an audit interval")
            .sample = 1;
        let audit = cfg
            .audit
            .clone()
            .expect("audited_config always sets an audit interval");
        let mut auditor = FidelityAuditor::new(audit, &obs);
        let values = vec![3.0, 4.0, 5.0];
        let plans: Vec<_> = cfg
            .queries
            .iter()
            .map(|q| pq_poly::EvalPlan::compile(q.poly()))
            .collect();
        let view = crate::incremental::DeltaView::new(&plans, &values);
        let qv = view.values();
        auditor.on_tick(4, &cfg.queries, &values, &values, qv, qv, 1, &obs);
        assert_eq!(auditor.cursor, 1, "first pass audits q0, cursor advances");
        auditor.on_tick(8, &cfg.queries, &values, &values, qv, qv, 2, &obs);
        assert_eq!(auditor.cursor, 0, "second pass audits q1, wraps around");
        assert_eq!(auditor.samples, 2);
        assert_eq!(obs.snapshot().counters[names::AUDIT_DIVERGENCE], 0);
    }

    #[test]
    fn per_shard_divides_the_sample_budget() {
        let cfg = AuditConfig {
            every: 16,
            sample: 8,
            tolerance: 1e-9,
        };
        assert_eq!(cfg.per_shard(1).sample, 8);
        assert_eq!(cfg.per_shard(3).sample, 3, "ceiling division");
        assert_eq!(cfg.per_shard(4).sample, 2);
        assert_eq!(cfg.per_shard(64).sample, 1, "never below one query");
        assert_eq!(cfg.per_shard(0).sample, 8, "zero shards clamps to one");
        assert_eq!(cfg.per_shard(4).every, 16, "interval unchanged");
        assert_eq!(cfg.per_shard(4).tolerance, 1e-9);
    }
}
