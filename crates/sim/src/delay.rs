//! Communication and computation delay models.
//!
//! The paper derives node-to-node delays from a heavy-tailed Pareto
//! distribution with a mean of 100–120 ms, and coordinator computational
//! delays likewise (4 ms mean to check a query, 1 ms to push a value to
//! the user; §V-A). We implement Pareto sampling by inverse CDF — no
//! external distribution crate needed — with a cap to keep the tail from
//! producing pathological multi-minute delays.

use rand::rngs::StdRng;
use rand::Rng;

/// A bounded Pareto distribution sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale `x_m` (minimum value), in seconds.
    pub scale: f64,
    /// Shape `alpha`; smaller is heavier-tailed. Must be > 1 for a finite
    /// mean.
    pub shape: f64,
    /// Hard cap on samples, in seconds.
    pub cap: f64,
}

impl Pareto {
    /// A Pareto distribution with the given mean (seconds), using shape
    /// 2.5 (heavy-tailed, finite variance) and a cap at 20x the mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean >= 0.0 && mean.is_finite());
        // mean = scale * shape / (shape - 1)  =>  scale = mean (a-1)/a.
        let shape = 2.5;
        Pareto {
            scale: mean * (shape - 1.0) / shape,
            shape,
            cap: 20.0 * mean,
        }
    }

    /// The distribution mean (ignoring the cap).
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.scale * self.shape / (self.shape - 1.0)
        }
    }

    /// True if every sample is exactly 0 (and drawing one consumes no
    /// randomness) — the predicate batched ingestion relies on.
    pub fn is_zero(&self) -> bool {
        self.scale == 0.0
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.scale == 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (self.scale / u.powf(1.0 / self.shape)).min(self.cap)
    }

    /// Evaluates the inverse CDF at `u ∈ (0, 1]` — the deterministic
    /// core of [`Pareto::sample`], exposed so counter-based RNG streams
    /// (see `DelayRng::PerItem`) can draw without a [`StdRng`].
    pub fn sample_u(&self, u: f64) -> f64 {
        if self.scale == 0.0 {
            return 0.0;
        }
        let u = u.max(f64::MIN_POSITIVE);
        (self.scale / u.powf(1.0 / self.shape)).min(self.cap)
    }
}

/// All delays used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// Source <-> coordinator network delay.
    pub node_to_node: Pareto,
    /// Coordinator processing time per arriving refresh (query check).
    pub coordinator_check: Pareto,
    /// Delay to push a query value to the user.
    pub user_push: Pareto,
    /// Coordinator service time per DAB recomputation (the paper's CVXOPT
    /// solves cost 40-70 ms; §V-A). This is what turns recomputation
    /// *counts* into coordinator *load*: while the coordinator is busy
    /// solving, arriving refreshes queue and the cached values go stale.
    pub recompute_service: Pareto,
}

impl DelayConfig {
    /// The paper's PlanetLab-like conditions: ~110 ms node-to-node, 4 ms
    /// query-check, 1 ms user-push means.
    pub fn planetlab_like() -> Self {
        DelayConfig {
            node_to_node: Pareto::with_mean(0.110),
            coordinator_check: Pareto::with_mean(0.004),
            user_push: Pareto::with_mean(0.001),
            // ~1 ms per solve: a modern reimplementation's cost (our GP
            // solver measures ~0.1-0.3 ms; the paper's CVXOPT took
            // 40-70 ms on 2006 hardware). Chosen so coordinator
            // utilization lands in the same regime as the paper's
            // evaluation: loaded but not saturated under Optimal Refresh.
            recompute_service: Pareto::with_mean(0.001),
        }
    }

    /// An idealized zero-delay network: with it, Condition 1 guarantees
    /// that QABs are met at every instant (fidelity loss must be 0).
    pub fn zero() -> Self {
        let z = Pareto {
            scale: 0.0,
            shape: 2.5,
            cap: 0.0,
        };
        DelayConfig {
            node_to_node: z,
            coordinator_check: z,
            user_push: z,
            recompute_service: z,
        }
    }

    /// True when the coordinator's service times (`coordinator_check`
    /// and `recompute_service`) are identically zero, so `busy_until`
    /// can never advance past the current event time and same-instant
    /// refreshes may be ingested as one batch without changing any
    /// outcome (see DESIGN.md §12).
    pub fn is_service_free(&self) -> bool {
        self.coordinator_check.is_zero() && self.recompute_service.is_zero()
    }

    /// Same shape as [`DelayConfig::planetlab_like`] but with the given
    /// node-to-node mean (seconds) — used for the delay sweep (§V-B.1,
    /// "Effect of Varying Delays").
    pub fn with_node_mean(mean: f64) -> Self {
        DelayConfig {
            node_to_node: Pareto::with_mean(mean),
            ..DelayConfig::planetlab_like()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_approximates_target() {
        let p = Pareto::with_mean(0.110);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total / n as f64;
        // The cap trims the far tail, so allow ~10%.
        assert!(
            (mean - 0.110).abs() < 0.012,
            "empirical mean {mean} vs 0.110"
        );
    }

    #[test]
    fn samples_respect_scale_and_cap() {
        let p = Pareto::with_mean(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = p.sample(&mut rng);
            assert!(s >= p.scale && s <= p.cap);
        }
    }

    #[test]
    fn zero_config_produces_zero_delays() {
        let d = DelayConfig::zero();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.node_to_node.sample(&mut rng), 0.0);
        assert_eq!(d.coordinator_check.sample(&mut rng), 0.0);
        assert_eq!(d.user_push.sample(&mut rng), 0.0);
    }

    #[test]
    fn heavy_tail_is_present() {
        // A heavy-tailed distribution should produce samples well above
        // the mean with non-negligible frequency.
        let p = Pareto::with_mean(0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let big = (0..100_000).filter(|_| p.sample(&mut rng) > 0.3).count();
        assert!(big > 100, "only {big} samples above 3x mean");
    }

    #[test]
    fn with_node_mean_scales_only_network_delay() {
        let d = DelayConfig::with_node_mean(0.5);
        assert!((d.node_to_node.mean() - 0.5).abs() < 1e-12);
        assert!((d.coordinator_check.mean() - 0.004).abs() < 1e-12);
    }
}
