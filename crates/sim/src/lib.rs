//! # pq-sim — discrete-event simulation of accuracy-bounded dissemination
//!
//! Substrate replacing the paper's emulation / PlanetLab test-bed (§V-A):
//!
//! * [`audit`] — continuous fidelity audit: shadow naive evaluation of
//!   a rotating query sample, live divergence gauges and events;
//! * [`delay`] — heavy-tailed Pareto communication & computation delays;
//! * [`event`] — deterministic discrete-event queue;
//! * [`engine`] — the single-coordinator push-protocol simulation
//!   (sources with DAB filters, refresh delivery, user notification,
//!   validity-triggered DAB recomputation, fidelity sampling);
//! * [`incremental`] — delta-maintained per-query values
//!   ([`DeltaView`] per query, [`SharedView`] over a cross-query
//!   [`pq_poly::SharedPlan`]) powering the engine's `O(affected terms)`
//!   fidelity sampling and per-refresh checks (see [`EvalMode`]);
//! * [`network`] — a dissemination tree of cooperating coordinators for
//!   the Fig. 8(c) experiment;
//! * [`ring`] — bounded SPSC rings carrying cross-shard messages;
//! * [`shard`] — the partitioned multi-coordinator engine: one
//!   coordinator per shard of the query↔item graph
//!   ([`mod@pq_core::partition`]), conservative tick barriers over the
//!   rings, deterministic metric merge (set [`SimConfig::shards`]);
//! * [`metrics`] — the paper's four metrics (fidelity loss, refreshes,
//!   recomputations, total cost).
//!
//! Telemetry: set [`SimConfig::obs`] (re-exported [`ObsConfig`]) to get a
//! JSONL trace of every refresh, recomputation, and GP solve, or call
//! [`engine::run_observed`] with your own [`Obs`] handle to inspect the
//! counter/histogram registry after a run.

#![warn(missing_docs)]

pub mod audit;
pub mod delay;
pub mod engine;
pub mod event;
pub mod incremental;
pub mod metrics;
pub mod network;
pub mod ring;
pub mod shard;
pub mod table;
pub mod wheel;

pub use audit::{AuditConfig, AuditFault};
pub use delay::{DelayConfig, Pareto};
pub use engine::{run, run_observed, DelayRng, EvalMode, SimConfig, SimError, SimStrategy};
pub use event::{Event, EventQueue};
pub use incremental::{DeltaView, SharedView};
pub use metrics::SimMetrics;
pub use network::{run_network, run_network_observed, NetworkConfig, NetworkMetrics};
pub use pq_obs::{Obs, ObsConfig, RecorderConfig, SloConfig};
pub use ring::{RingConsumer, RingMsg, RingProducer};
pub use shard::{run_sharded, Execution, ShardReport, ShardStat};
pub use table::{Bitset, ItemTable};
pub use wheel::{Scheduler, SimQueue, TimerWheel};
