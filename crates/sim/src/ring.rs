//! Bounded single-producer/single-consumer rings for inter-shard
//! message passing.
//!
//! The sharded engine (see [`crate::shard`]) connects every pair of
//! shards that share at least one cross-partition item with two
//! directed rings. Each ring is written by exactly one shard thread and
//! read by exactly one other, so a classic lock-free SPSC queue over a
//! fixed slot array suffices: the producer owns `tail`, the consumer
//! owns `head`, and each slot is published with a release store /
//! consumed with an acquire load.
//!
//! Besides payload slots the ring carries a **watermark** — the
//! sender's progress marker, stored as `t + 1` once the sender has
//! fully completed simulated tick `t` (0 = nothing completed yet,
//! `u64::MAX` = the sender's run is over). The conservative
//! synchronization protocol (DESIGN.md §13) relies on it: a receiver
//! may start tick `T` only once every inbound watermark is `≥ T`
//! (sender completed `T - 1`), which guarantees all cross-shard
//! messages sent during ticks `≤ T - 1` are already in the ring. A
//! **backpressure counter** records how often the producer found the
//! ring full and had to spin.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use pq_obs::SpanId;

/// A message crossing a shard boundary. Item ids are **global** (the
/// pre-partition universe); each side translates to its dense local
/// ids. `span` restores cross-thread causality: it is the sender's
/// innermost open span at send time, re-entered via
/// [`pq_obs::SpanContext::with_parent`] on the receiving side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RingMsg {
    /// A source refresh accepted by the item's home shard, forwarded to
    /// a shard holding a replica. `time` already includes the remote
    /// leg's network delay draw.
    Refresh {
        /// Global item id.
        item: u32,
        /// The refreshed value.
        value: f64,
        /// Simulated arrival time at the remote coordinator.
        time: f64,
        /// Simulated tick the sender was executing when it sent this.
        /// The receiver's holdback buffer releases a message only once
        /// it passes the sender's tick — even when the sender's thread
        /// has raced several ticks ahead of the receiver's.
        sent_tick: u64,
        /// Sender's span at send time (0 = none).
        span: u64,
    },
    /// A remote shard's local minimum DAB over its replica of `item`,
    /// shipped home so the installed source filter stays the global
    /// minimum across shards.
    DabUpdate {
        /// Global item id.
        item: u32,
        /// The sending shard's minimum half-width over the item
        /// (`f64::INFINITY` when none of its queries currently
        /// constrain it).
        min_dab: f64,
        /// Simulated time of the change.
        time: f64,
        /// Simulated tick the sender was executing when it sent this
        /// (see [`RingMsg::Refresh::sent_tick`]).
        sent_tick: u64,
        /// Sender's span at send time (0 = none).
        span: u64,
    },
}

impl RingMsg {
    /// The message's simulated time (used for deterministic staging
    /// order diagnostics; processing order is FIFO per ring).
    pub fn time(&self) -> f64 {
        match self {
            RingMsg::Refresh { time, .. } | RingMsg::DabUpdate { time, .. } => *time,
        }
    }

    /// The simulated tick the sender was executing when it sent this.
    pub fn sent_tick(&self) -> u64 {
        match self {
            RingMsg::Refresh { sent_tick, .. } | RingMsg::DabUpdate { sent_tick, .. } => *sent_tick,
        }
    }

    /// The sender's span id, if any.
    pub fn span(&self) -> Option<SpanId> {
        let raw = match self {
            RingMsg::Refresh { span, .. } | RingMsg::DabUpdate { span, .. } => *span,
        };
        (raw != 0).then_some(SpanId(raw))
    }
}

struct Shared {
    slots: Box<[UnsafeCell<MaybeUninit<RingMsg>>]>,
    /// Next slot the consumer will read. Owned by the consumer; the
    /// producer only loads it to detect fullness.
    head: AtomicUsize,
    /// Next slot the producer will write. Owned by the producer.
    tail: AtomicUsize,
    /// Producer progress marker: `t + 1` once the producer has fully
    /// completed simulated tick `t`; 0 before initialization finishes;
    /// `u64::MAX` once the producer's run ends.
    watermark: AtomicU64,
    /// Times the producer found the ring full.
    backpressure: AtomicU64,
}

// SAFETY: the slot array is only mutated through the SPSC discipline —
// the producer writes slots in `head..head+capacity` bounds before
// publishing them via the release store on `tail`; the consumer reads
// them after the acquire load. `RingMsg` is `Copy`, so no drops race.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Builds a connected producer/consumer pair over a ring of `capacity`
/// message slots (rounded up to a power of two, minimum 2).
pub fn ring(capacity: usize) -> (RingProducer, RingConsumer) {
    let capacity = capacity.max(2).next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        watermark: AtomicU64::new(0),
        backpressure: AtomicU64::new(0),
    });
    (
        RingProducer {
            shared: shared.clone(),
        },
        RingConsumer { shared },
    )
}

/// The write half of a ring; exactly one shard thread holds it.
pub struct RingProducer {
    shared: Arc<Shared>,
}

impl RingProducer {
    /// Tries to enqueue `msg`; returns `false` (recording backpressure)
    /// when the ring is full. The caller must then make progress
    /// elsewhere — the sharded engine drains its own inbound rings —
    /// and retry, which is what keeps two mutually full shards from
    /// deadlocking.
    pub fn try_send(&self, msg: RingMsg) -> bool {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= s.slots.len() {
            s.backpressure.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = tail & (s.slots.len() - 1);
        // SAFETY: `tail - head < capacity`, so the consumer has not yet
        // been granted this slot; the producer is the only writer.
        unsafe { (*s.slots[idx].get()).write(msg) };
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Publishes the producer's progress marker (the sharded engine
    /// stores `completed_tick + 1`; see the module docs). Every message
    /// enqueued before this call is visible to a consumer that observes
    /// the new marker (release/acquire pairing on the watermark).
    pub fn publish_watermark(&self, mark: u64) {
        self.shared.watermark.store(mark, Ordering::Release);
    }

    /// Times [`RingProducer::try_send`] found the ring full.
    pub fn backpressure(&self) -> u64 {
        self.shared.backpressure.load(Ordering::Relaxed)
    }
}

/// The read half of a ring; exactly one shard thread holds it.
pub struct RingConsumer {
    shared: Arc<Shared>,
}

impl RingConsumer {
    /// Dequeues the oldest message, if any.
    pub fn try_recv(&self) -> Option<RingMsg> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = head & (s.slots.len() - 1);
        // SAFETY: `head < tail`, so the producer published this slot
        // (release/acquire on `tail`); the consumer is the only reader.
        let msg = unsafe { (*s.slots[idx].get()).assume_init_read() };
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(msg)
    }

    /// The producer's progress marker (see
    /// [`RingProducer::publish_watermark`]).
    pub fn watermark(&self) -> u64 {
        self.shared.watermark.load(Ordering::Acquire)
    }

    /// Times the producer found the ring full.
    pub fn backpressure(&self) -> u64 {
        self.shared.backpressure.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.shared.slots.len())
            .finish()
    }
}

impl std::fmt::Debug for RingConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("capacity", &self.shared.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(item: u32, value: f64) -> RingMsg {
        RingMsg::Refresh {
            item,
            value,
            time: value,
            sent_tick: 0,
            span: 0,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let (tx, rx) = ring(4);
        for i in 0..4 {
            assert!(tx.try_send(refresh(i, i as f64)));
        }
        assert!(!tx.try_send(refresh(9, 9.0)), "full ring must refuse");
        assert_eq!(tx.backpressure(), 1);
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(refresh(i, i as f64)));
        }
        assert_eq!(rx.try_recv(), None);
        // Space reclaimed after consumption.
        assert!(tx.try_send(refresh(9, 9.0)));
        assert_eq!(rx.try_recv(), Some(refresh(9, 9.0)));
    }

    #[test]
    fn watermark_propagates() {
        let (tx, rx) = ring(2);
        assert_eq!(rx.watermark(), 0);
        tx.publish_watermark(41);
        assert_eq!(rx.watermark(), 41);
        tx.publish_watermark(u64::MAX);
        assert_eq!(rx.watermark(), u64::MAX);
    }

    #[test]
    fn wraps_many_times_without_corruption() {
        let (tx, rx) = ring(8);
        for round in 0..1000u32 {
            assert!(tx.try_send(refresh(round, f64::from(round))));
            assert_eq!(rx.try_recv(), Some(refresh(round, f64::from(round))));
        }
    }

    #[test]
    fn cross_thread_stream_is_intact() {
        let (tx, rx) = ring(16);
        let n = 100_000u32;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                while !tx.try_send(refresh(i, f64::from(i))) {
                    std::hint::spin_loop();
                }
            }
            tx.backpressure()
        });
        let mut next = 0u32;
        while next < n {
            if let Some(RingMsg::Refresh { item, value, .. }) = rx.try_recv() {
                assert_eq!(item, next);
                assert_eq!(value, f64::from(next));
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(rx.try_recv(), None);
        let _bp = producer.join().unwrap();
    }

    #[test]
    fn span_ids_round_trip() {
        let msg = RingMsg::DabUpdate {
            item: 3,
            min_dab: 0.5,
            time: 1.0,
            sent_tick: 4,
            span: 7,
        };
        assert_eq!(msg.span(), Some(SpanId(7)));
        assert_eq!(refresh(0, 0.0).span(), None);
        assert_eq!(msg.time(), 1.0);
        assert_eq!(msg.sent_tick(), 4);
    }
}
