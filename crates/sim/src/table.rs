//! Structure-of-arrays per-item state.
//!
//! The engine used to hold five parallel `Vec<f64>` fields plus ad-hoc
//! flags scattered across `Engine`; [`ItemTable`] gathers them into one
//! struct of flat columns so the hot loop walks contiguous memory
//! (drift sweep, DAB filter, staleness checks) and so whole columns can
//! be handed to the evaluator as slices without re-assembling state.
//! [`Bitset`] is the companion flat bit column used for per-item dirty
//! bits and per-query membership marks during batched ingestion.

/// A flat bit column (one `u64` word per 64 bits).
#[derive(Debug, Clone, Default)]
pub struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// An all-clear bitset holding `n_bits` bits.
    pub fn new(n_bits: usize) -> Self {
        Bitset {
            words: vec![0; n_bits.div_ceil(64)],
        }
    }

    /// True if bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

/// Structure-of-arrays item state: one flat column per attribute,
/// indexed by item id.
///
/// Columns:
/// - `values`: true source value of each item (what the trace drifts);
/// - `last_pushed`: last value the source actually sent upstream;
/// - `installed_dab`: the DAB filter width currently installed at the
///   source (infinite until the coordinator's first DAB message lands);
/// - `coord_values`: the coordinator's view of each item (lags `values`
///   by the push filter and network delay);
/// - `coord_dabs`: the DAB the coordinator most recently computed;
/// - a dirty [`Bitset`] used transiently by batched ingestion.
#[derive(Debug, Clone)]
pub struct ItemTable {
    values: Vec<f64>,
    last_pushed: Vec<f64>,
    installed_dab: Vec<f64>,
    coord_values: Vec<f64>,
    coord_dabs: Vec<f64>,
    dirty: Bitset,
}

impl ItemTable {
    /// A table where every view of each item starts at its initial
    /// trace value and no DAB is installed yet.
    pub fn new(initial: &[f64]) -> Self {
        let n = initial.len();
        ItemTable {
            values: initial.to_vec(),
            last_pushed: initial.to_vec(),
            installed_dab: vec![f64::INFINITY; n],
            coord_values: initial.to_vec(),
            coord_dabs: vec![f64::INFINITY; n],
            dirty: Bitset::new(n),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The true source value column.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The true source value of `item`.
    #[inline]
    pub fn value(&self, item: usize) -> f64 {
        self.values[item]
    }

    /// Overwrites the true source value of `item`.
    #[inline]
    pub fn set_value(&mut self, item: usize, v: f64) {
        self.values[item] = v;
    }

    /// The last value pushed upstream by `item`'s source.
    #[inline]
    pub fn last_pushed(&self, item: usize) -> f64 {
        self.last_pushed[item]
    }

    /// Records that `item`'s source just pushed `v`.
    #[inline]
    pub fn set_last_pushed(&mut self, item: usize, v: f64) {
        self.last_pushed[item] = v;
    }

    /// The DAB currently installed at `item`'s source.
    #[inline]
    pub fn installed_dab(&self, item: usize) -> f64 {
        self.installed_dab[item]
    }

    /// Installs a new DAB at `item`'s source.
    #[inline]
    pub fn set_installed_dab(&mut self, item: usize, dab: f64) {
        self.installed_dab[item] = dab;
    }

    /// The coordinator-side value column (what queries are evaluated
    /// against).
    #[inline]
    pub fn coord_values(&self) -> &[f64] {
        &self.coord_values
    }

    /// Mutable coordinator-side value column (for fused batch applies).
    #[inline]
    pub fn coord_values_mut(&mut self) -> &mut [f64] {
        &mut self.coord_values
    }

    /// The coordinator's view of `item`.
    #[inline]
    pub fn coord_value(&self, item: usize) -> f64 {
        self.coord_values[item]
    }

    /// Overwrites the coordinator's view of `item`.
    #[inline]
    pub fn set_coord_value(&mut self, item: usize, v: f64) {
        self.coord_values[item] = v;
    }

    /// The coordinator-computed DAB for `item`.
    #[inline]
    pub fn coord_dab(&self, item: usize) -> f64 {
        self.coord_dabs[item]
    }

    /// Overwrites the coordinator-computed DAB for `item`.
    #[inline]
    pub fn set_coord_dab(&mut self, item: usize, dab: f64) {
        self.coord_dabs[item] = dab;
    }

    /// Resets every coordinator DAB to infinity (ahead of a full
    /// recomputation pass).
    pub fn reset_coord_dabs(&mut self) {
        self.coord_dabs.fill(f64::INFINITY);
    }

    /// Installs every coordinator DAB at its source at once (the
    /// zero-delay bootstrap before the run starts).
    pub fn install_all_dabs(&mut self) {
        self.installed_dab.copy_from_slice(&self.coord_dabs);
    }

    /// True if `item`'s dirty bit is set.
    #[inline]
    pub fn is_dirty(&self, item: usize) -> bool {
        self.dirty.get(item)
    }

    /// Sets `item`'s dirty bit.
    #[inline]
    pub fn mark_dirty(&mut self, item: usize) {
        self.dirty.set(item);
    }

    /// Clears `item`'s dirty bit.
    #[inline]
    pub fn clear_dirty(&mut self, item: usize) {
        self.dirty.clear(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_clear() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0) && !b.get(64) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(65) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64) && b.get(0) && b.get(129));
        b.clear_all();
        assert!(!b.get(0) && !b.get(129));
    }

    #[test]
    fn table_starts_consistent_and_updates_columns() {
        let mut t = ItemTable::new(&[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.coord_values(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.last_pushed(1), 2.0);
        assert!(t.installed_dab(0).is_infinite());
        assert!(t.coord_dab(2).is_infinite());

        t.set_value(0, 9.0);
        t.set_last_pushed(0, 9.0);
        t.set_coord_value(0, 9.0);
        t.set_coord_dab(0, 0.5);
        assert_eq!(t.value(0), 9.0);
        assert_eq!(t.coord_value(0), 9.0);
        assert_eq!(t.coord_dab(0), 0.5);
        assert!(t.installed_dab(0).is_infinite());
        t.install_all_dabs();
        assert_eq!(t.installed_dab(0), 0.5);
        assert!(t.installed_dab(1).is_infinite());
        t.reset_coord_dabs();
        assert!(t.coord_dab(0).is_infinite());

        assert!(!t.is_dirty(2));
        t.mark_dirty(2);
        assert!(t.is_dirty(2));
        t.clear_dirty(2);
        assert!(!t.is_dirty(2));
    }
}
