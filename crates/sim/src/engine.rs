//! The single-coordinator discrete-event simulation (§V-A methodology).
//!
//! Sources replay per-item traces at 1 s ticks and push a refresh whenever
//! their value drifts past the installed primary DAB. Refreshes reach the
//! coordinator after a heavy-tailed network + processing delay; the
//! coordinator updates its cached value, notifies users of QAB-violating
//! changes, and — when the arriving value invalidates a query's DAB
//! assignment — recomputes that query's DABs and sends DAB-change messages
//! back to the sources (which apply them after another network delay).
//!
//! Fidelity is sampled at tick instants: a query is in violation when the
//! coordinator's cached query value deviates from the true source value by
//! more than the QAB. With [`crate::delay::DelayConfig::zero`] delays,
//! Condition 1 guarantees zero loss; delayed modes reproduce the loss
//! trends of Fig. 5(c). Sub-second violation windows between ticks are
//! invisible to the sampler, so absolute loss numbers are conservative —
//! trends across strategies and delays are what this reproduces (the
//! paper makes the same caveat for its PlanetLab runs).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pq_core::{
    aao, assign_unit_cached, assignment_units, default_recompute_threads, filter_changed,
    recompute_parallel, AssignmentStrategy, AssignmentUnit, DabError, PqHeuristic, QueryAssignment,
    RecomputeJob, SolveCache, SolveContext,
};
use pq_ddm::{DataDynamicsModel, RateEstimator, TraceSet};
use pq_gp::SolverOptions;
use pq_obs::{
    names, Counter, EventKind, Histogram, Obs, ObsConfig, SloConfig, SloEngine, SpanContext, Timer,
    Watchdog, WindowPlane,
};
use pq_poly::{EvalPlan, PolynomialQuery, SharedPlan};

use crate::audit::{AuditConfig, AuditFault, FidelityAuditor};
use crate::delay::{DelayConfig, Pareto};
use crate::event::Event;
use crate::incremental::{DeltaView, SharedView};
use crate::metrics::SimMetrics;
use crate::ring::{RingConsumer, RingMsg, RingProducer};
use crate::table::{Bitset, ItemTable};
use crate::wheel::{Scheduler, SimQueue};

/// How the coordinator produces query values for per-refresh QAB checks
/// and fidelity samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Re-evaluate `P(x)` from scratch with [`pq_poly::Polynomial::eval`]
    /// at every use — `O(queries × terms)` per tick. Kept as the A/B
    /// baseline for the `evalbench` parity gate.
    Naive,
    /// Maintain per-query values incrementally from item deltas through
    /// a compiled [`EvalPlan`] (`O(affected terms)` per change, `O(1)`
    /// per query per sample), with a full compiled re-evaluation every
    /// `rebase_every` ticks to bound float drift. `0` disables the
    /// periodic rebase.
    Delta {
        /// Full-re-eval rebase period in ticks (`0` = never).
        rebase_every: usize,
    },
    /// Maintain the whole query book through one cross-query
    /// [`pq_poly::SharedPlan`]: distinct monomials are CSE-deduplicated
    /// at compile time, each item delta evaluates every affected
    /// monomial **once** and scatters `c_q · Δm` to all subscribing
    /// queries through a CSR term → query index
    /// (`O(distinct affected terms + fan-out)` per change). Rebase
    /// semantics match [`EvalMode::Delta`]; in sharded runs each
    /// coordinator compiles a `SharedPlan` over its own partition.
    Shared {
        /// Full-re-eval rebase period in ticks (`0` = never).
        rebase_every: usize,
    },
}

impl EvalMode {
    /// The default rebase period: drift after `K` ticks is at most about
    /// `K × affected-queries × ulp(|P|)` (see [`crate::incremental`]),
    /// which at `K = 512` stays ~9 orders of magnitude below the QAB
    /// margins of the paper's workloads.
    pub const DEFAULT_REBASE_EVERY: usize = 512;
}

impl Default for EvalMode {
    fn default() -> Self {
        EvalMode::Delta {
            rebase_every: EvalMode::DEFAULT_REBASE_EVERY,
        }
    }
}

/// How the coordinator manages DABs across its queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SimStrategy {
    /// EQI: per-query assignments with the given strategy; installed
    /// filters are per-item minima (§IV).
    PerQuery {
        /// Per-query assignment policy.
        strategy: AssignmentStrategy,
        /// Heuristic for mixed-sign queries.
        heuristic: PqHeuristic,
    },
    /// AAO-T: a joint AAO recomputation every `period_ticks`; between
    /// periods, secondary-DAB violations trigger per-query Dual-DAB
    /// recomputations (§V-B.1, curves AAO-30 .. AAO-1500).
    AaoPeriodic {
        /// Joint recomputation period in ticks.
        period_ticks: usize,
        /// Recomputation cost parameter.
        mu: f64,
    },
}

/// Where the engine's stochastic draws (network delays, service times,
/// message-loss coin flips) come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayRng {
    /// One sequential [`StdRng`] stream seeded from [`SimConfig::seed`]
    /// — the historical behavior, byte-identical to every prior run.
    /// Draw order depends on global event interleaving, so metrics are
    /// only reproducible at a fixed shard count.
    #[default]
    Global,
    /// Counter-based splitmix64 streams keyed by **global** item id:
    /// each item's draws are a private deterministic sequence,
    /// independent of which shard processes it or what other items do.
    /// This is what makes fixed-seed metrics invariant across shard
    /// counts (DESIGN.md §13); the marginal distributions match
    /// [`DelayRng::Global`] but the realized values differ.
    PerItem,
}

/// The engine's source of stochastic draws (see [`DelayRng`]).
#[derive(Debug)]
enum DelaySource {
    Global(StdRng),
    PerItem {
        seed: u64,
        /// One draw counter per global item id.
        counters: Vec<u64>,
    },
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of one `u64`.
fn splitmix64(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DelaySource {
    /// Next uniform draw in `[0, 1)` on `item`'s stream (the stream
    /// argument is ignored in [`DelayRng::Global`] mode).
    fn uniform(&mut self, item: usize) -> f64 {
        match self {
            DelaySource::Global(rng) => {
                use rand::Rng;
                rng.gen::<f64>()
            }
            DelaySource::PerItem { seed, counters } => {
                let c = counters[item];
                counters[item] = c + 1;
                let key = splitmix64(*seed ^ (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let x = splitmix64(key.wrapping_add(c));
                (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            }
        }
    }

    /// One Pareto draw on `item`'s stream. Zero-scale distributions
    /// consume no randomness in either mode (the batching predicate
    /// relies on that).
    fn pareto(&mut self, p: &Pareto, item: usize) -> f64 {
        if p.is_zero() {
            return 0.0;
        }
        match self {
            DelaySource::Global(rng) => p.sample(rng),
            DelaySource::PerItem { .. } => p.sample_u(1.0 - self.uniform(item)),
        }
    }
}

/// One outbound inter-shard link (write half of an SPSC ring).
pub(crate) struct ShardLink {
    /// Destination shard (diagnostics only; routing is by ring index).
    #[allow(dead_code)]
    pub(crate) dest: u32,
    pub(crate) tx: RingProducer,
}

/// One inbound inter-shard link: the read half plus the holdback buffer
/// of drained-but-not-yet-releasable messages (a sender may run several
/// ticks ahead; its messages wait here until this shard's clock passes
/// their `sent_tick`).
pub(crate) struct ShardInlet {
    /// Source shard; inlets are processed in ascending `src` order so
    /// staged cross-shard work is replayed deterministically.
    pub(crate) src: u32,
    pub(crate) rx: RingConsumer,
    pub(crate) held: VecDeque<RingMsg>,
}

/// Everything a shard engine needs to act as one coordinator of the
/// partitioned (multi-coordinator) engine: id translation between its
/// dense local space and the global universe, replica bookkeeping, and
/// the rings to its peers. Built by [`crate::shard::run_sharded`];
/// `None` in the classic single-coordinator engine.
pub(crate) struct ShardCtx {
    pub(crate) shard: u32,
    /// Items in the *global* (pre-partition) universe — sizes the
    /// per-item draw counters of [`DelayRng::PerItem`].
    pub(crate) n_global_items: usize,
    /// Local item id -> global item id (strictly ascending).
    pub(crate) item_gid: Vec<u32>,
    /// Local query id -> global query id (strictly ascending).
    pub(crate) query_gid: Vec<u32>,
    /// `true` for local items homed on another shard: their source
    /// lives there, so the local filter is pinned at `INFINITY` (no
    /// local pushes) and refreshes arrive over the ring instead.
    pub(crate) replica: Vec<bool>,
    /// Local item -> outbound ring indices to every shard holding a
    /// replica of it (home items only; empty elsewhere).
    pub(crate) exports: Vec<Vec<usize>>,
    /// Local item -> outbound ring index toward its home shard
    /// (replicas only).
    pub(crate) home_ring: Vec<Option<usize>>,
    /// Outbound links, ascending by destination shard.
    pub(crate) outbound: Vec<ShardLink>,
    /// Inbound links, ascending by source shard.
    pub(crate) inbound: Vec<ShardInlet>,
    /// Local item -> each remote shard's current minimum DAB over its
    /// replica (home items with subscribers only). Folded into
    /// `min_dab_for_item` so the installed source filter stays the
    /// global minimum.
    pub(crate) remote_dab_min: Vec<Vec<(u32, f64)>>,
}

impl ShardCtx {
    /// Translates a global item id to this shard's dense local id.
    fn local_item(&self, gid: u32) -> usize {
        self.item_gid
            .binary_search(&gid)
            .expect("ring message for an item this shard does not hold")
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-item data traces (item `i` follows trace `i`).
    pub traces: TraceSet,
    /// The continuous queries registered at the coordinator.
    pub queries: Vec<PolynomialQuery>,
    /// DAB management strategy.
    pub strategy: SimStrategy,
    /// Assumed data-dynamics model for the optimizers.
    pub ddm: DataDynamicsModel,
    /// Rate-of-change estimator (the paper samples at 60 s).
    pub rate_estimator: RateEstimator,
    /// Delay model.
    pub delays: DelayConfig,
    /// Event-queue backend. [`Scheduler::Heap`] (default) and
    /// [`Scheduler::Wheel`] produce byte-identical metrics on a fixed
    /// seed; the wheel trades the heap's `O(log n)` push/pop for `O(1)`
    /// amortized bucket filing.
    pub scheduler: Scheduler,
    /// Accounting cost of one recomputation, in messages (metric 4).
    pub mu_cost: f64,
    /// RNG seed for delays.
    pub seed: u64,
    /// Coordinator shards. `1` (default) runs the classic
    /// single-coordinator engine; `> 1` partitions the query↔item graph
    /// ([`mod@pq_core::partition`]) and runs one coordinator per shard on
    /// its own thread, exchanging cross-partition refreshes and DAB
    /// minima over bounded SPSC rings (see [`crate::shard`]).
    pub shards: usize,
    /// Where stochastic draws come from. Keep [`DelayRng::Global`] for
    /// byte-compatibility with single-coordinator runs; switch to
    /// [`DelayRng::PerItem`] to make fixed-seed metrics invariant
    /// across shard counts (see [`crate::shard`] for the full
    /// determinism contract).
    pub delay_rng: DelayRng,
    /// Sample fidelity every this many ticks (0 disables sampling).
    pub fidelity_sample_every: usize,
    /// Probability that any message (refresh or DAB-change) is silently
    /// dropped in transit — failure injection for resilience experiments.
    /// The push protocol has no acknowledgements (as in the paper), so a
    /// lost refresh stays lost until the source's value escapes its filter
    /// again.
    pub loss_probability: f64,
    /// GP solver options for all recomputations.
    pub gp: SolverOptions,
    /// Query-value evaluation strategy (delta-maintained by default;
    /// [`EvalMode::Naive`] re-evaluates from scratch at every use).
    pub eval: EvalMode,
    /// Max worker threads for the recompute fan-out (capped at the
    /// machine's available parallelism; `1` forces the serial path). The
    /// simulated metrics are byte-identical for any value — parallelism
    /// only changes wall-clock time.
    pub threads: usize,
    /// Telemetry configuration (fully off by default). [`run`] builds an
    /// [`Obs`] handle from this and threads it through the coordinator
    /// and the GP solver; use [`run_observed`] to supply a handle
    /// directly and inspect its registry afterwards.
    pub obs: ObsConfig,
    /// Continuous fidelity audit of the incrementally maintained query
    /// values (shadow naive evaluation; see [`crate::audit`]). `None`
    /// (default) disables it; only active under [`EvalMode::Delta`] and
    /// [`EvalMode::Shared`]. The audit is read-only and RNG-free:
    /// [`SimMetrics`] are byte-identical with it on or off.
    pub audit: Option<AuditConfig>,
    /// Fault injection for the audit path: corrupts the coordinator
    /// [`DeltaView`] (or [`SharedView`] under [`EvalMode::Shared`]) at a
    /// chosen tick so tests can prove the auditor flags a wrong delta
    /// plane within one interval.
    pub audit_fault: Option<AuditFault>,
    /// Fidelity SLO engine (`None`, the default, disables it). When set,
    /// the engine drives a sim-clock [`WindowPlane`], multi-window
    /// burn-rate alerting over the fidelity samples, a hot-loop
    /// [`Watchdog`], and — when `obs` configures a flight recorder —
    /// postmortem dumps on alerts and audit divergences. All of it is
    /// read-only over the simulation state: [`SimMetrics`] are
    /// byte-identical with the SLO engine on or off.
    pub slo: Option<SloConfig>,
}

impl SimConfig {
    /// A reasonable default configuration over the given traces and
    /// queries: Dual-DAB with `mu = 5`, monotonic ddm, 60-tick rate
    /// sampling, PlanetLab-like delays.
    pub fn new(traces: TraceSet, queries: Vec<PolynomialQuery>) -> Self {
        SimConfig {
            traces,
            queries,
            strategy: SimStrategy::PerQuery {
                strategy: AssignmentStrategy::DualDab { mu: 5.0 },
                heuristic: PqHeuristic::DifferentSum,
            },
            ddm: DataDynamicsModel::Monotonic,
            rate_estimator: RateEstimator::SampledAverage { interval_ticks: 60 },
            delays: DelayConfig::planetlab_like(),
            scheduler: Scheduler::Heap,
            mu_cost: 5.0,
            seed: 42,
            shards: 1,
            delay_rng: DelayRng::Global,
            fidelity_sample_every: 1,
            loss_probability: 0.0,
            gp: SolverOptions::default(),
            eval: EvalMode::default(),
            threads: default_recompute_threads(),
            obs: ObsConfig::default(),
            audit: None,
            audit_fault: None,
            slo: None,
        }
    }
}

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// A DAB solve failed for the given query index.
    Dab {
        /// Index into `SimConfig::queries`.
        query: usize,
        /// Underlying error.
        source: DabError,
    },
    /// A query references an item with no trace.
    MissingTrace {
        /// The missing item index.
        item: usize,
    },
    /// Opening a telemetry sink (e.g. the JSONL trace file) failed.
    Obs {
        /// Underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Dab { query, source } => {
                write!(f, "DAB assignment failed for query {query}: {source}")
            }
            SimError::MissingTrace { item } => {
                write!(f, "query references item x{item} with no trace")
            }
            SimError::Obs { source } => {
                write!(f, "failed to open telemetry sink: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs the simulation to completion and returns the collected metrics.
///
/// Telemetry follows `config.obs`; with the default (off) configuration
/// no events are constructed.
pub fn run(config: &SimConfig) -> Result<SimMetrics, SimError> {
    let obs = Obs::from_config(&config.obs).map_err(|source| SimError::Obs { source })?;
    run_observed(config, &obs)
}

/// Runs the simulation with a caller-supplied telemetry handle,
/// ignoring `config.obs`.
///
/// After the run, `obs.snapshot()` holds the counter/histogram mirror of
/// the returned metrics (see [`SimMetrics::from_snapshot`]), including
/// the GP-solver timings (`gp.solve_ns`) from every recomputation.
pub fn run_observed(config: &SimConfig, obs: &Obs) -> Result<SimMetrics, SimError> {
    if config.shards > 1 {
        return crate::shard::run_sharded(config, obs, crate::shard::Execution::Threaded)
            .map(|report| report.metrics);
    }
    Engine::new(config, obs.clone())?.run()
}

pub(crate) struct Engine<'a> {
    cfg: &'a SimConfig,
    n_items: usize,
    rates: Vec<f64>,
    /// Structure-of-arrays per-item state: source values, last-pushed
    /// values, installed DABs, coordinator values and DABs as flat
    /// columns (plus the dirty bits batched ingestion uses).
    items: ItemTable,
    /// Independently maintained assignment units per query (one for most
    /// strategies, two for Half-and-Half on mixed-sign queries).
    units: Vec<Vec<AssignmentUnit>>,
    assignments: Vec<Vec<QueryAssignment>>,
    /// Warm-start caches, one per (query, unit).
    cache: SolveCache,
    /// item -> indices of queries referencing it.
    item_queries: Vec<Vec<u32>>,
    /// Compiled evaluation plans, one per query (same index space).
    plans: Vec<EvalPlan>,
    /// Delta-maintained query values at the source view (updated every
    /// tick as the traces move). Only written in [`EvalMode::Delta`].
    src_view: DeltaView,
    /// Delta-maintained query values at the coordinator view (updated
    /// only on `RefreshArrive`). Only written in [`EvalMode::Delta`].
    coord_view: DeltaView,
    /// The cross-query compiled plan shared by the whole book; present
    /// only in [`EvalMode::Shared`] (in sharded runs, compiled over
    /// this shard's partition).
    shared_plan: Option<SharedPlan>,
    /// Shared-plan maintained query values at the source view. Present
    /// only in [`EvalMode::Shared`].
    src_sview: Option<SharedView>,
    /// Shared-plan maintained query values at the coordinator view.
    /// Present only in [`EvalMode::Shared`].
    coord_sview: Option<SharedView>,
    /// Last query value pushed to each user.
    last_user_value: Vec<f64>,
    queue: SimQueue,
    delay_rng: DelaySource,
    metrics: SimMetrics,
    /// Multi-coordinator state when this engine runs as one shard of a
    /// partitioned run (`None` in the classic engine; see
    /// [`crate::shard`]).
    shard: Option<ShardCtx>,
    /// The simulated tick currently executing (stamped on outbound ring
    /// messages so receivers release them conservatively).
    current_tick: u64,
    /// The coordinator is busy (checking queries / re-solving DABs) until
    /// this time; refreshes arriving earlier wait in its queue.
    coordinator_busy_until: f64,
    /// Refreshes that arrived while the coordinator was busy, held in
    /// FIFO order and drained at `coordinator_busy_until` (a side buffer
    /// instead of re-pushing into the heap, which churned the heap and
    /// subtly reordered same-time arrivals).
    deferred: VecDeque<(usize, f64)>,
    /// Reusable scratch: affected-query list of the refresh being
    /// processed (replaces a per-refresh `item_queries[item].clone()`).
    scratch_affected: Vec<u32>,
    /// Reusable scratch: stale `(query, unit)` pairs of one refresh.
    scratch_stale: Vec<(usize, usize)>,
    /// Reusable scratch: item lists for DAB propagation (replaces the
    /// per-call `(0..n_items).collect()` / `primary.keys().collect()`).
    scratch_items: Vec<usize>,
    /// The refresh batch being ingested (batched ingestion only).
    batch: Vec<(usize, f64)>,
    /// Per-query membership marks for the current batch: a batch only
    /// admits refreshes whose affected query sets are pairwise disjoint.
    query_mark: Bitset,
    /// Telemetry handle; also injected into every GP solve via
    /// [`Engine::solve_context`].
    obs: Obs,
    /// Registry counters mirroring the [`SimMetrics`] fields (the
    /// lossless bridge — see [`SimMetrics::from_snapshot`]).
    c_refreshes: Arc<Counter>,
    c_recomputations: Arc<Counter>,
    c_dab_changes: Arc<Counter>,
    c_notifications: Arc<Counter>,
    c_lost: Arc<Counter>,
    c_fidelity: Arc<Counter>,
    c_violations: Vec<Arc<Counter>>,
    /// Per-query `dab.recompute` attribution (labeled family, key
    /// `query`), pre-created so the hot path is one relaxed add.
    lc_recompute_by_query: Vec<Arc<Counter>>,
    /// Per-item `sim.refresh` attribution (labeled family, key `item`).
    lc_refresh_by_item: Vec<Arc<Counter>>,
    /// Per-item count of refreshes that forced at least one DAB
    /// recomputation (`dab.recompute_trigger`, key `item`).
    lc_trigger_by_item: Vec<Arc<Counter>>,
    /// Incremental-evaluation counters: per-query delta updates, full
    /// evaluations, and rebase passes (`eval.delta` / `eval.full` /
    /// `eval.rebase`).
    c_eval_delta: Arc<Counter>,
    c_eval_full: Arc<Counter>,
    c_eval_rebase: Arc<Counter>,
    /// Shared-plan scatter fan-out (`eval.scatter_fanout`): query values
    /// updated by CSR term → query scatters. Resolved only in
    /// [`EvalMode::Shared`].
    c_scatter_fanout: Option<Arc<Counter>>,
    /// Scheduler counters: events pushed into / popped from the queue.
    c_sched_push: Arc<Counter>,
    c_sched_pop: Arc<Counter>,
    /// Batched-ingestion telemetry: one count + one size sample per
    /// batch drained.
    c_ingest_batch: Arc<Counter>,
    h_ingest_batch_size: Arc<Histogram>,
    /// Pre-resolved `sim.solve_ns` handle for [`Engine::note_solver_time`]
    /// (one registry lookup at construction instead of one per batch).
    h_solve_ns: Arc<Histogram>,
    /// Timing span opened around each stale-set recomputation
    /// (`sim.recompute_batch_ns`); the fanned-out `gp.solve` spans
    /// resolve their causal parent to it via the [`pq_obs::SpanContext`]
    /// that [`recompute_parallel`] carries into its workers.
    t_recompute_batch: Timer,
    /// Pre-resolved `gp.solve` timer shared by every [`SolveContext`]
    /// this engine builds — solver spans skip per-solve registry lookups.
    t_gp_solve: Timer,
    /// Per-query `gp.solve` attribution handles (labeled family, key
    /// `query`), resolved once so the solver hot path is one relaxed add.
    lc_solve_by_query: Vec<Arc<Counter>>,
    /// Per-shard hot-path attribution (`shard.refresh` /
    /// `shard.recompute` labeled by `shard`) plus ring-traffic counters
    /// (`shard.ring_send` / `shard.ring_recv`); present only when
    /// running as a shard, so the classic engine pays nothing.
    lc_shard_refresh: Option<Arc<Counter>>,
    lc_shard_recompute: Option<Arc<Counter>>,
    lc_ring_send: Option<Arc<Counter>>,
    lc_ring_recv: Option<Arc<Counter>>,
    /// Continuous fidelity audit (shadow naive evaluation); present only
    /// when configured and evaluating in [`EvalMode::Delta`] or
    /// [`EvalMode::Shared`].
    auditor: Option<FidelityAuditor>,
    /// Live-health runtime (windowed plane + burn-rate engine +
    /// watchdog); present only when [`SimConfig::slo`] is set.
    slo: Option<SloRuntime>,
}

/// How long the hot loop may go without a heartbeat before the live
/// exporter's `/health` reports a stall. One beat per simulated tick
/// leaves orders of magnitude of headroom at any realistic tick cost —
/// a stall means the process is genuinely wedged.
const WATCHDOG_STALL_AFTER: std::time::Duration = std::time::Duration::from_secs(30);

/// Live-health state the engine drives once per simulated tick: the
/// sim-clock [`WindowPlane`] (windowed `*_rate_*` series), the
/// [`SloEngine`] (error budgets and multi-window burn-rate alerts over
/// the fidelity samples), and the wall-clock [`Watchdog`]. All three are
/// installed on the run's [`Obs`] handle so the live exporter
/// (`/metrics`, `/health`, `/alerts`) sees them.
struct SloRuntime {
    plane: Arc<WindowPlane>,
    engine: Arc<SloEngine>,
    watchdog: Arc<Watchdog>,
    /// Pre-resolved `audit.divergence` counter, diffed per tick to feed
    /// the zero-budget audit-integrity objective.
    c_divergence: Arc<Counter>,
    seen_divergences: u64,
    seen_violations: u64,
    /// The registry's `audit.divergence` counter is shared by every
    /// shard of a partitioned run, so only one runtime (shard 0) may
    /// diff it — concurrent diffing would double-count.
    track_divergences: bool,
}

impl SloRuntime {
    fn new(cfg: SloConfig, obs: &Obs, shard: Option<u32>) -> Self {
        // Install-or-fetch: the first runtime on this `Obs` handle (the
        // first run, or the first shard to get here) creates the plane
        // and the SLO engine; everyone else adopts the installed ones.
        // All shards feeding one shared engine is what makes the error
        // budget global — each shard contributes its own per-tick
        // sample/violation deltas, and `SloEngine::observe` locks
        // internally.
        let plane = match obs.window_plane() {
            Some(plane) => plane,
            None => {
                let plane = Arc::new(WindowPlane::new());
                for name in [
                    names::SIM_REFRESH,
                    names::DAB_RECOMPUTE,
                    names::SIM_USER_NOTIFY,
                    names::SIM_FIDELITY_SAMPLE,
                    names::AUDIT_SAMPLE,
                    names::AUDIT_DIVERGENCE,
                ] {
                    plane.track_source(name, obs.counter(name));
                }
                if obs.install_window_plane(plane.clone()) {
                    plane
                } else {
                    obs.window_plane().expect("a racing shard just installed")
                }
            }
        };
        let engine = match obs.slo_engine() {
            Some(engine) => engine,
            None => {
                let engine = Arc::new(SloEngine::new(cfg, obs));
                if obs.install_slo_engine(engine.clone()) {
                    engine
                } else {
                    obs.slo_engine().expect("a racing shard just installed")
                }
            }
        };
        // Watchdogs stay per-engine: each shard beats its own, so a
        // single wedged shard is attributable. The singleton slot keeps
        // its first-install-wins behavior for the classic engine;
        // shards additionally register under a `shard<i>` label, which
        // `/health` aggregates and reports per shard.
        let watchdog = Arc::new(Watchdog::new(WATCHDOG_STALL_AFTER));
        obs.install_watchdog(watchdog.clone());
        if let Some(s) = shard {
            obs.register_watchdog(&format!("shard{s}"), watchdog.clone());
        }
        SloRuntime {
            plane,
            engine,
            watchdog,
            c_divergence: obs.counter(names::AUDIT_DIVERGENCE),
            seen_divergences: 0,
            seen_violations: 0,
            track_divergences: shard.is_none_or(|s| s == 0),
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(cfg: &'a SimConfig, obs: Obs) -> Result<Self, SimError> {
        Engine::build(cfg, obs, None)
    }

    /// Builds one coordinator of a partitioned run: `cfg` is the
    /// shard's projected configuration (dense local ids), `ctx` the
    /// translation tables and rings (see [`crate::shard`]).
    pub(crate) fn new_sharded(
        cfg: &'a SimConfig,
        obs: Obs,
        ctx: ShardCtx,
    ) -> Result<Self, SimError> {
        Engine::build(cfg, obs, Some(ctx))
    }

    fn build(cfg: &'a SimConfig, obs: Obs, shard: Option<ShardCtx>) -> Result<Self, SimError> {
        let n_items = cfg.traces.n_items();
        for q in &cfg.queries {
            if let Some(mx) = q.poly().max_item() {
                if mx.index() >= n_items {
                    return Err(SimError::MissingTrace { item: mx.index() });
                }
            }
        }
        let rates = cfg.rate_estimator.estimate_all(&cfg.traces);
        let source_values = cfg.traces.initial_values();
        let mut item_queries = vec![Vec::new(); n_items];
        for (qi, q) in cfg.queries.iter().enumerate() {
            for item in q.items() {
                item_queries[item.index()].push(qi as u32);
            }
        }
        let shared_mode = matches!(cfg.eval, EvalMode::Shared { .. });
        // In shared mode the whole book compiles into one cross-query
        // plan — the per-query plans would be dead weight, so they are
        // skipped entirely (the memory win is real in-engine, not just
        // in the benchmark).
        let plans: Vec<EvalPlan> = if shared_mode {
            Vec::new()
        } else {
            cfg.queries
                .iter()
                .map(|q| EvalPlan::compile(q.poly()))
                .collect()
        };
        let shared_plan =
            shared_mode.then(|| SharedPlan::compile(cfg.queries.iter().map(|q| q.poly())));
        // Both views start at the initial snapshot (coordinator and
        // sources agree at t = 0); the compiled full evaluations here are
        // bit-identical to `Polynomial::eval`.
        let src_view = DeltaView::new(&plans, &source_values);
        let coord_view = src_view.clone();
        let src_sview = shared_plan
            .as_ref()
            .map(|plan| SharedView::new(plan, &source_values));
        let coord_sview = src_sview.clone();
        let last_user_value = match &src_sview {
            Some(view) => view.values().to_vec(),
            None => src_view.values().to_vec(),
        };
        let n_queries = cfg.queries.len();
        // All registry names carry *global* ids so a partitioned run's
        // shards write into one coherent attribution space (identity
        // maps in the classic engine).
        let gq_label = |qi: usize| {
            shard
                .as_ref()
                .map_or(qi, |c| c.query_gid[qi] as usize)
                .to_string()
        };
        let gi_label = |i: usize| {
            shard
                .as_ref()
                .map_or(i, |c| c.item_gid[i] as usize)
                .to_string()
        };
        let shard_label = shard.as_ref().map(|c| c.shard.to_string());
        let n_global_items = shard.as_ref().map_or(n_items, |c| c.n_global_items);
        let mut engine = Engine {
            cfg,
            n_items,
            rates,
            items: ItemTable::new(&source_values),
            plans,
            src_view,
            coord_view,
            shared_plan,
            src_sview,
            coord_sview,
            units: Vec::new(),
            assignments: Vec::new(),
            cache: SolveCache::new(),
            item_queries,
            last_user_value,
            queue: SimQueue::new(cfg.scheduler),
            delay_rng: match cfg.delay_rng {
                DelayRng::Global => DelaySource::Global(StdRng::seed_from_u64(cfg.seed)),
                DelayRng::PerItem => DelaySource::PerItem {
                    seed: cfg.seed,
                    counters: vec![0; n_global_items],
                },
            },
            current_tick: 0,
            metrics: SimMetrics::with_items(cfg.queries.len(), n_items),
            coordinator_busy_until: 0.0,
            deferred: VecDeque::new(),
            scratch_affected: Vec::new(),
            scratch_stale: Vec::new(),
            scratch_items: Vec::new(),
            batch: Vec::new(),
            query_mark: Bitset::new(n_queries),
            c_refreshes: obs.counter(names::SIM_REFRESH),
            c_recomputations: obs.counter(names::DAB_RECOMPUTE),
            c_dab_changes: obs.counter(names::SIM_DAB_CHANGE),
            c_notifications: obs.counter(names::SIM_USER_NOTIFY),
            c_lost: obs.counter(names::SIM_LOST_MESSAGE),
            c_fidelity: obs.counter(names::SIM_FIDELITY_SAMPLE),
            c_violations: (0..cfg.queries.len())
                .map(|qi| obs.counter(&format!("{}.q{}", names::SIM_QAB_VIOLATION, gq_label(qi))))
                .collect(),
            lc_recompute_by_query: (0..cfg.queries.len())
                .map(|qi| {
                    obs.labeled_counter(names::DAB_RECOMPUTE, names::LABEL_QUERY, &gq_label(qi))
                })
                .collect(),
            lc_refresh_by_item: (0..n_items)
                .map(|i| obs.labeled_counter(names::SIM_REFRESH, names::LABEL_ITEM, &gi_label(i)))
                .collect(),
            lc_trigger_by_item: (0..n_items)
                .map(|i| {
                    obs.labeled_counter(
                        names::DAB_RECOMPUTE_TRIGGER,
                        names::LABEL_ITEM,
                        &gi_label(i),
                    )
                })
                .collect(),
            c_eval_delta: obs.counter(names::EVAL_DELTA),
            c_eval_full: obs.counter(names::EVAL_FULL),
            c_eval_rebase: obs.counter(names::EVAL_REBASE),
            c_scatter_fanout: shared_mode.then(|| obs.counter(names::EVAL_SCATTER_FANOUT)),
            c_sched_push: obs.counter(names::SCHED_PUSH),
            c_sched_pop: obs.counter(names::SCHED_POP),
            c_ingest_batch: obs.counter(names::INGEST_BATCH),
            h_ingest_batch_size: obs.histogram(names::INGEST_BATCH_SIZE),
            h_solve_ns: obs.histogram(names::SIM_SOLVE_NS),
            t_recompute_batch: obs.timer(names::SIM_RECOMPUTE_BATCH),
            t_gp_solve: obs.timer(names::GP_SOLVE),
            lc_solve_by_query: (0..cfg.queries.len())
                .map(|qi| obs.labeled_counter(names::GP_SOLVE, names::LABEL_QUERY, &gq_label(qi)))
                .collect(),
            lc_shard_refresh: shard_label
                .as_ref()
                .map(|s| obs.labeled_counter(names::SHARD_REFRESH, names::LABEL_SHARD, s)),
            lc_shard_recompute: shard_label
                .as_ref()
                .map(|s| obs.labeled_counter(names::SHARD_RECOMPUTE, names::LABEL_SHARD, s)),
            lc_ring_send: shard_label
                .as_ref()
                .map(|s| obs.labeled_counter(names::SHARD_RING_SEND, names::LABEL_SHARD, s)),
            lc_ring_recv: shard_label
                .as_ref()
                .map(|s| obs.labeled_counter(names::SHARD_RING_RECV, names::LABEL_SHARD, s)),
            auditor: match (&cfg.audit, &cfg.eval) {
                (Some(audit), EvalMode::Delta { .. } | EvalMode::Shared { .. }) => {
                    Some(FidelityAuditor::new(audit.clone(), &obs))
                }
                _ => None,
            },
            slo: cfg
                .slo
                .clone()
                .map(|slo| SloRuntime::new(slo, &obs, shard.as_ref().map(|c| c.shard))),
            shard,
            obs,
        };
        // The two initial full evaluations per query that seeded the views.
        engine.c_eval_full.add(2 * engine.cfg.queries.len() as u64);
        if let Some(plan) = &engine.shared_plan {
            engine
                .obs
                .counter(names::EVAL_SHARED_TERMS)
                .add(plan.n_terms() as u64);
        }
        let shard_id = engine.shard.as_ref().map(|c| c.shard);
        engine
            .obs
            .emit_with(names::SIM_RUN_START, EventKind::Point, |e| {
                let e = e
                    .with("n_items", n_items)
                    .with("n_queries", engine.cfg.queries.len())
                    .with("n_ticks", engine.cfg.traces.n_ticks())
                    .with("seed", engine.cfg.seed)
                    .with("loss_probability", engine.cfg.loss_probability)
                    .with(
                        "strategy",
                        match &engine.cfg.strategy {
                            SimStrategy::PerQuery { .. } => "per-query",
                            SimStrategy::AaoPeriodic { .. } => "aao-periodic",
                        },
                    );
                match shard_id {
                    Some(s) => e.with("shard", s as u64),
                    None => e,
                }
            });
        engine.initial_assignments()?;
        Ok(engine)
    }

    /// Unattributed solve context (joint AAO solves span all queries).
    fn solve_context(&self) -> SolveContext<'_> {
        self.solve_context_for(None)
    }

    /// Solve context attributed to one query: GP solves under it carry
    /// `query=<qi>` on their `gp.solve` counters and timing spans.
    fn solve_context_for(&self, query: Option<u32>) -> SolveContext<'_> {
        let mut gp = self.cfg.gp.clone();
        gp.obs = self.obs.clone();
        gp.query = query;
        gp.query_counter = query.map(|q| self.lc_solve_by_query[q as usize].clone());
        gp.solve_timer = Some(self.t_gp_solve.clone());
        SolveContext {
            values: self.items.coord_values(),
            rates: &self.rates,
            ddm: self.cfg.ddm,
            gp,
        }
    }

    /// Accounts solver wall-clock into both the metrics field and the
    /// `sim.solve_ns` histogram, from the same nanosecond reading, so
    /// [`SimMetrics::from_snapshot`] stays a lossless mirror.
    fn note_solver_time(&mut self, started: Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        self.h_solve_ns.record(ns);
        self.metrics.solver_seconds += ns as f64 / 1e9;
    }

    fn initial_assignments(&mut self) -> Result<(), SimError> {
        let started = Instant::now();
        match &self.cfg.strategy {
            SimStrategy::PerQuery {
                strategy,
                heuristic,
            } => {
                self.units = self
                    .cfg
                    .queries
                    .iter()
                    .map(|q| assignment_units(q, *strategy, *heuristic))
                    .collect();
                let unit_counts: Vec<usize> = self.units.iter().map(Vec::len).collect();
                self.cache.resize(&unit_counts);
                let mut assignments = Vec::with_capacity(self.units.len());
                for (qi, units) in self.units.iter().enumerate() {
                    let mut per_unit = Vec::with_capacity(units.len());
                    for (ui, u) in units.iter().enumerate() {
                        let mut gp = self.cfg.gp.clone();
                        gp.obs = self.obs.clone();
                        gp.query = Some(qi as u32);
                        gp.query_counter = Some(self.lc_solve_by_query[qi].clone());
                        gp.solve_timer = Some(self.t_gp_solve.clone());
                        let ctx = SolveContext {
                            values: self.items.coord_values(),
                            rates: &self.rates,
                            ddm: self.cfg.ddm,
                            gp,
                        };
                        // Seed the warm-start caches at install time so the
                        // first in-run recompute already warm-starts.
                        per_unit.push(
                            assign_unit_cached(u, &ctx, *strategy, self.cache.unit_mut(qi, ui))
                                .map_err(|source| SimError::Dab { query: qi, source })?,
                        );
                    }
                    assignments.push(per_unit);
                }
                self.assignments = assignments;
            }
            SimStrategy::AaoPeriodic { mu, .. } => {
                self.units = self
                    .cfg
                    .queries
                    .iter()
                    .map(|q| {
                        assignment_units(
                            q,
                            AssignmentStrategy::DualDab { mu: *mu },
                            PqHeuristic::DifferentSum,
                        )
                    })
                    .collect();
                let unit_counts: Vec<usize> = self.units.iter().map(Vec::len).collect();
                self.cache.resize(&unit_counts);
                let ctx = self.solve_context();
                self.assignments = aao(&self.cfg.queries, &ctx, *mu)
                    .map_err(|source| SimError::Dab { query: 0, source })?
                    .per_query
                    .into_iter()
                    .map(|a| vec![a])
                    .collect();
            }
        }
        self.note_solver_time(started);
        // Synchronous installation at t = 0 (steady-state start, §V-A).
        self.recompute_coord_dabs_all();
        self.items.install_all_dabs();
        Ok(())
    }

    fn recompute_coord_dabs_all(&mut self) {
        self.items.reset_coord_dabs();
        for per_query in &self.assignments {
            for qa in per_query {
                for (&item, &b) in &qa.primary {
                    let i = item.index();
                    let d = self.items.coord_dab(i);
                    self.items.set_coord_dab(i, d.min(b));
                }
            }
        }
    }

    /// Recomputes the min filter for one item across all units of the
    /// queries referencing it — plus, on a home shard, the minima the
    /// remote shards reported over their replicas, so the installed
    /// source filter is the global minimum.
    fn min_dab_for_item(&self, item: usize) -> f64 {
        let mut m = f64::INFINITY;
        for &qi in &self.item_queries[item] {
            for qa in &self.assignments[qi as usize] {
                if let Some(b) = qa.primary_dab(pq_poly::ItemId(item as u32)) {
                    m = m.min(b);
                }
            }
        }
        if let Some(ctx) = &self.shard {
            for &(_, d) in &ctx.remote_dab_min[item] {
                m = m.min(d);
            }
        }
        m
    }

    /// Global item id for a local one (identity in the classic engine).
    #[inline]
    fn gi(&self, item: usize) -> usize {
        self.shard
            .as_ref()
            .map_or(item, |c| c.item_gid[item] as usize)
    }

    /// Global query id for a local one (identity in the classic engine).
    #[inline]
    fn gq(&self, qi: usize) -> usize {
        self.shard.as_ref().map_or(qi, |c| c.query_gid[qi] as usize)
    }

    pub(crate) fn run(mut self) -> Result<SimMetrics, SimError> {
        match self.run_inner() {
            Ok(()) => Ok(std::mem::take(&mut self.metrics)),
            Err(e) => {
                // A failed shard must not strand its peers mid-protocol:
                // publish the terminal watermark and keep draining until
                // every peer finishes, then surface the error.
                self.shard_finish();
                Err(e)
            }
        }
    }

    fn run_inner(&mut self) -> Result<(), SimError> {
        self.items.install_all_dabs();
        if self.shard.is_some() {
            // Replicas never push locally — their source lives on the
            // home shard — and the home must learn every remote's
            // initial minimum before the first tick's pushes.
            self.force_replica_filters();
            self.send_initial_dab_updates();
            self.publish_completed(0);
        }
        // Batched ingestion is only sound when the coordinator's service
        // times are identically zero: then `busy_until` never outruns
        // event time, nothing is ever deferred, and same-instant
        // refreshes with disjoint query sets can be fused (§DESIGN 12).
        let batching = self.cfg.delays.is_service_free();
        // A same-time event popped while collecting a batch but not
        // admissible into it; processed before touching the queue again.
        let mut pending: Option<(f64, Event)> = None;
        let n_ticks = self.cfg.traces.n_ticks();
        for tick in 1..n_ticks {
            let now = tick as f64;
            self.current_tick = tick as u64;
            // Conservative inter-shard barrier: wait for every peer to
            // complete tick-1, then replay the staged cross-shard
            // messages in deterministic (source-shard, FIFO) order.
            if self.shard.is_some() {
                self.shard_sync(tick);
            }
            // AAO-T periodic joint recomputation.
            if let SimStrategy::AaoPeriodic { period_ticks, mu } = &self.cfg.strategy {
                if *period_ticks > 0 && tick % period_ticks == 0 {
                    self.periodic_aao(now, *mu)?;
                }
            }
            // Sources observe the tick's values and push filtered changes;
            // under delta evaluation each item's move folds `ΔP` into the
            // source-view query values before the value lands.
            let delta_mode = matches!(self.cfg.eval, EvalMode::Delta { .. });
            let shared_mode = matches!(self.cfg.eval, EvalMode::Shared { .. });
            let mut delta_updates = 0u64;
            let mut scatter_updates = 0u64;
            for item in 0..self.n_items {
                let v = self.cfg.traces.trace(item).at(tick);
                let old = self.items.value(item);
                if delta_mode {
                    delta_updates += self.src_view.apply(
                        &self.plans,
                        &self.item_queries[item],
                        self.items.values(),
                        item,
                        old,
                        v,
                    );
                } else if shared_mode {
                    let (plan, view) = (
                        self.shared_plan.as_ref().expect("shared mode"),
                        self.src_sview.as_mut().expect("shared mode"),
                    );
                    scatter_updates += view.apply(plan, self.items.values(), item, old, v);
                }
                self.items.set_value(item, v);
                self.maybe_push(item, now);
            }
            if delta_updates > 0 {
                self.c_eval_delta.add(delta_updates);
            }
            if scatter_updates > 0 {
                if let Some(c) = &self.c_scatter_fanout {
                    c.add(scatter_updates);
                }
            }
            // Deliver everything due by this tick: heap events in time
            // order, interleaved with busy-deferred refreshes that start
            // the moment the coordinator frees up (heap events win ties,
            // matching the arrival order a re-push would have produced).
            loop {
                let next_time = pending
                    .as_ref()
                    .map(|&(t, _)| t)
                    .or_else(|| self.queue.peek_time());
                if !self.deferred.is_empty()
                    && self.coordinator_busy_until <= now
                    && next_time.is_none_or(|t| t > self.coordinator_busy_until)
                {
                    let (item, value) = self.deferred.pop_front().expect("non-empty");
                    let t = self.coordinator_busy_until;
                    self.on_refresh(item, value, t)?;
                    continue;
                }
                let next = match pending.take() {
                    Some(held) => Some(held),
                    None => {
                        let popped = self.queue.pop_until(now);
                        if popped.is_some() {
                            self.c_sched_pop.inc();
                        }
                        popped
                    }
                };
                let Some((t, event)) = next else {
                    break;
                };
                match event {
                    Event::RefreshArrive { item, value } => {
                        // Queueing at the coordinator: wait until it is
                        // free, then occupy it for the processing time.
                        if self.coordinator_busy_until > t {
                            self.deferred.push_back((item, value));
                            continue;
                        }
                        if batching {
                            pending = self.collect_and_ingest_batch(item, value, t, now)?;
                        } else {
                            self.on_refresh(item, value, t)?;
                        }
                    }
                    Event::DabChangeArrive { item, dab } => {
                        self.items.set_installed_dab(item, dab);
                        self.maybe_push(item, t);
                    }
                }
            }
            // Periodic full-re-eval rebase: discard the rounding drift
            // the running sums accumulated, right before the sample reads
            // them.
            if let EvalMode::Delta { rebase_every } | EvalMode::Shared { rebase_every } =
                self.cfg.eval
            {
                if rebase_every > 0 && tick % rebase_every == 0 {
                    if shared_mode {
                        let plan = self.shared_plan.as_ref().expect("shared mode");
                        self.src_sview
                            .as_mut()
                            .expect("shared mode")
                            .rebase(plan, self.items.values());
                        self.coord_sview
                            .as_mut()
                            .expect("shared mode")
                            .rebase(plan, self.items.coord_values());
                    } else {
                        self.src_view.rebase(&self.plans, self.items.values());
                        self.coord_view
                            .rebase(&self.plans, self.items.coord_values());
                    }
                    self.c_eval_rebase.inc();
                    self.c_eval_full.add(2 * self.cfg.queries.len() as u64);
                }
            }
            // Fidelity sample.
            if self.cfg.fidelity_sample_every > 0 && tick % self.cfg.fidelity_sample_every == 0 {
                self.metrics.fidelity_samples += 1;
                // Every shard samples the same ticks; only shard 0 feeds
                // the global counter so `/metrics` reports true samples,
                // not samples x shards.
                if self.shard.as_ref().is_none_or(|c| c.shard == 0) {
                    self.c_fidelity.inc();
                }
                for (qi, q) in self.cfg.queries.iter().enumerate() {
                    let (truth, cached) = match self.cfg.eval {
                        EvalMode::Naive => {
                            self.c_eval_full.add(2);
                            (
                                q.eval(self.items.values()),
                                q.eval(self.items.coord_values()),
                            )
                        }
                        EvalMode::Delta { .. } => {
                            (self.src_view.value(qi), self.coord_view.value(qi))
                        }
                        EvalMode::Shared { .. } => (
                            self.src_sview.as_ref().expect("shared mode").value(qi),
                            self.coord_sview.as_ref().expect("shared mode").value(qi),
                        ),
                    };
                    if (truth - cached).abs() > q.qab() {
                        self.metrics.per_query_violations[qi] += 1;
                        self.c_violations[qi].inc();
                        let gqi = self.gq(qi);
                        self.obs
                            .emit_with(names::SIM_QAB_VIOLATION, EventKind::Point, |e| {
                                e.with("query", gqi)
                                    .with("tick", tick)
                                    .with("truth", truth)
                                    .with("cached", cached)
                            });
                    }
                }
            }
            // Continuous fidelity audit: read-only shadow evaluation of
            // the delta plane (preceded by the test-only fault hook).
            if delta_mode || shared_mode {
                if let Some(fault) = &self.cfg.audit_fault {
                    if fault.tick == tick {
                        match self.coord_sview.as_mut() {
                            Some(view) => view.corrupt(fault.query, fault.perturb),
                            None => self.coord_view.corrupt(fault.query, fault.perturb),
                        }
                    }
                }
                if let Some(auditor) = self.auditor.as_mut() {
                    let (src_qv, coord_qv) = match (&self.src_sview, &self.coord_sview) {
                        (Some(src), Some(coord)) => (src.values(), coord.values()),
                        _ => (self.src_view.values(), self.coord_view.values()),
                    };
                    auditor.on_tick(
                        tick,
                        &self.cfg.queries,
                        self.items.values(),
                        self.items.coord_values(),
                        src_qv,
                        coord_qv,
                        self.metrics.refreshes,
                        &self.obs,
                    );
                }
            }
            // Live-health tick: heartbeat, windowed-plane advance, and
            // the burn-rate observation over this tick's fidelity
            // samples. Runs after the audit so a divergence flagged this
            // tick alerts this tick.
            self.slo_on_tick(tick);
            if self.shard.is_some() {
                self.publish_completed(tick as u64);
            }
        }
        if let Some(slo) = &self.slo {
            // A finished run is not a stall, however long ago its last
            // heartbeat was — post-run `/health` scrapes must stay green.
            slo.watchdog.disarm();
        }
        if self.shard.is_some() {
            self.shard_finish();
        }
        // The wheel only knows its cascade total at the end of the run
        // (0 for the heap backend).
        let cascades = self.queue.cascades();
        if cascades > 0 {
            self.obs.counter(names::SCHED_CASCADE).add(cascades);
        }
        self.obs
            .emit_with(names::SIM_RUN_END, EventKind::Point, |e| {
                e.with("refreshes", self.metrics.refreshes)
                    .with("recomputations", self.metrics.recomputations)
                    .with("dab_change_messages", self.metrics.dab_change_messages)
                    .with("lost_messages", self.metrics.lost_messages)
                    .with(
                        "loss_in_fidelity_percent",
                        self.metrics.loss_in_fidelity_percent(),
                    )
            });
        self.obs.flush();
        Ok(())
    }

    /// One live-health step at the end of tick `tick`: beat the
    /// watchdog, advance the windowed plane (which polls its tracked
    /// counter sources), and feed the SLO engine the tick's fidelity
    /// deltas. Newly raised alerts are emitted as `slo.alert` events;
    /// alerts and fresh audit divergences snapshot the flight recorder
    /// (at most one dump per tick).
    fn slo_on_tick(&mut self, tick: usize) {
        let Some(rt) = self.slo.as_mut() else { return };
        rt.watchdog.beat();
        let now = tick as u64;
        rt.plane.advance(now);
        let sampled = self.cfg.fidelity_sample_every > 0
            && tick.is_multiple_of(self.cfg.fidelity_sample_every);
        let samples = if sampled {
            self.cfg.queries.len() as u64
        } else {
            0
        };
        let total_violations: u64 = self.metrics.per_query_violations.iter().sum();
        let violations = total_violations - rt.seen_violations;
        rt.seen_violations = total_violations;
        // The audit divergence counter is process-global; in sharded
        // runs only shard 0 diffs it so the shared SLO engine doesn't
        // count each divergence once per shard.
        let divergences = if rt.track_divergences {
            let total_divergences = rt.c_divergence.get();
            let d = total_divergences - rt.seen_divergences;
            rt.seen_divergences = total_divergences;
            d
        } else {
            0
        };
        let raised = rt.engine.observe(now, samples, violations, divergences);
        for alert in &raised {
            self.obs.emit_with(names::SLO_ALERT, EventKind::Point, |e| {
                e.with("kind", alert.kind.as_str())
                    .with("id", alert.id)
                    .with("tick", tick)
                    .with("burn_short", alert.burn_short)
                    .with("burn_long", alert.burn_long)
            });
        }
        let dump_reason = if divergences > 0 {
            Some("audit.divergence")
        } else {
            raised.first().map(|a| a.kind.as_str())
        };
        if let (Some(reason), Some(recorder)) = (dump_reason, self.obs.recorder()) {
            let _ = recorder.trigger(reason);
        }
    }

    // ---- inter-shard protocol (multi-coordinator runs only; see
    // DESIGN.md §13) --------------------------------------------------

    /// Publishes `completed(tick)` on every outbound ring (stored as
    /// `tick + 1`; 0 means "initialization not finished").
    fn publish_completed(&self, tick: u64) {
        if let Some(ctx) = &self.shard {
            for link in &ctx.outbound {
                link.tx.publish_watermark(tick + 1);
            }
        }
    }

    /// Pins every replica's installed filter at `INFINITY`: replicas
    /// track the source trace for fidelity truth, but the push protocol
    /// runs only at the item's home shard — refreshes arrive over the
    /// ring instead.
    fn force_replica_filters(&mut self) {
        let Some(ctx) = &self.shard else { return };
        for item in 0..self.n_items {
            if ctx.replica[item] {
                self.items.set_installed_dab(item, f64::INFINITY);
            }
        }
    }

    /// Ships each replica's initial local DAB minimum to its home shard
    /// (processed there at the tick-1 barrier, so the installed source
    /// filter becomes the global minimum before pushes accumulate).
    fn send_initial_dab_updates(&mut self) {
        let mut msgs: Vec<(usize, RingMsg)> = Vec::new();
        if let Some(ctx) = &self.shard {
            for item in 0..self.n_items {
                if let Some(ring) = ctx.home_ring[item] {
                    let min_dab = self.items.coord_dab(item);
                    if min_dab.is_finite() {
                        msgs.push((
                            ring,
                            RingMsg::DabUpdate {
                                item: ctx.item_gid[item],
                                min_dab,
                                time: 0.0,
                                sent_tick: 0,
                                span: 0,
                            },
                        ));
                    }
                }
            }
        }
        for (ring, msg) in msgs {
            self.ring_send(ring, msg);
        }
    }

    /// Blocking ring send with deadlock avoidance: when the outbound
    /// ring is full, drain our own inbound rings into their holdback
    /// buffers (the peer may itself be blocked sending to us) and
    /// retry. The ring's backpressure counter records every full poll.
    fn ring_send(&mut self, ring: usize, msg: RingMsg) {
        loop {
            {
                let ctx = self.shard.as_ref().expect("ring_send without shard ctx");
                if ctx.outbound[ring].tx.try_send(msg) {
                    break;
                }
            }
            let ctx = self.shard.as_mut().expect("ring_send without shard ctx");
            for inlet in &mut ctx.inbound {
                while let Some(m) = inlet.rx.try_recv() {
                    inlet.held.push_back(m);
                }
            }
            std::hint::spin_loop();
        }
        if let Some(c) = &self.lc_ring_send {
            c.inc();
        }
    }

    /// The tick-start barrier: wait until every inbound peer completed
    /// `tick - 1`, then release and apply every held message sent
    /// during ticks `≤ tick - 1`, in (source shard, FIFO) order —
    /// deterministic regardless of thread interleaving. Shards with no
    /// inbound rings skip this entirely.
    fn shard_sync(&mut self, tick: usize) {
        let t = tick as u64;
        let mut staged: Vec<(u32, RingMsg)> = Vec::new();
        {
            let ctx = self.shard.as_mut().expect("shard_sync without ctx");
            for inlet in &mut ctx.inbound {
                loop {
                    while let Some(m) = inlet.rx.try_recv() {
                        inlet.held.push_back(m);
                    }
                    if inlet.rx.watermark() >= t {
                        break;
                    }
                    std::hint::spin_loop();
                }
                // One more drain after observing the watermark: its
                // acquire pairs with the sender's release, so every
                // message from ticks ≤ tick-1 is now visible. Later
                // messages (the sender may already be ticks ahead)
                // stay held until our clock passes their sent_tick.
                while let Some(m) = inlet.rx.try_recv() {
                    inlet.held.push_back(m);
                }
                while inlet.held.front().is_some_and(|m| m.sent_tick() < t) {
                    staged.push((inlet.src, inlet.held.pop_front().expect("non-empty")));
                }
            }
        }
        if !staged.is_empty() {
            if let Some(c) = &self.lc_ring_recv {
                c.add(staged.len() as u64);
            }
        }
        for (src, msg) in staged {
            self.apply_ring_msg(src, msg, tick);
        }
    }

    /// Applies one released cross-shard message at the start of `tick`,
    /// re-entering the sender's span so emitted events stay causally
    /// parented across the thread hop.
    fn apply_ring_msg(&mut self, src: u32, msg: RingMsg, tick: usize) {
        let _causal = SpanContext::with_parent(msg.span()).enter();
        match msg {
            RingMsg::Refresh {
                item, value, time, ..
            } => {
                let local = self.shard.as_ref().expect("sharded").local_item(item);
                // Cross-shard arrivals quantize to at least the current
                // tick — the ring hop is only observed at barriers.
                let at = time.max(tick as f64);
                self.c_sched_push.inc();
                self.queue
                    .push(at, Event::RefreshArrive { item: local, value });
            }
            RingMsg::DabUpdate { item, min_dab, .. } => {
                let local = {
                    let ctx = self.shard.as_mut().expect("sharded");
                    let local = ctx.local_item(item);
                    match ctx.remote_dab_min[local]
                        .iter_mut()
                        .find(|(shard, _)| *shard == src)
                    {
                        Some(entry) => entry.1 = min_dab,
                        None => ctx.remote_dab_min[local].push((src, min_dab)),
                    }
                    local
                };
                // Fold the remote minimum into the global filter and
                // ship the change to the local source if it moved.
                self.propagate_dab_changes(&[local], tick as f64);
            }
        }
    }

    /// End-of-run teardown (called once per run, also on the error
    /// path): publish the terminal watermark, then keep draining
    /// inbound rings until every peer has published its own — no
    /// sender is ever left spinning on a full ring to a finished
    /// shard. Messages drained here are beyond the simulated horizon
    /// and are discarded.
    fn shard_finish(&mut self) {
        let (backpressure, shard) = {
            let Some(ctx) = self.shard.as_mut() else {
                return;
            };
            for link in &ctx.outbound {
                link.tx.publish_watermark(u64::MAX);
            }
            loop {
                let mut all_done = true;
                for inlet in &mut ctx.inbound {
                    while inlet.rx.try_recv().is_some() {}
                    if inlet.rx.watermark() != u64::MAX {
                        all_done = false;
                    }
                }
                if !all_done {
                    std::hint::spin_loop();
                    continue;
                }
                // Final sweep after the last peer's terminal watermark.
                for inlet in &mut ctx.inbound {
                    while inlet.rx.try_recv().is_some() {}
                }
                break;
            }
            let bp: u64 = ctx.outbound.iter().map(|l| l.tx.backpressure()).sum();
            (bp, ctx.shard)
        };
        if backpressure > 0 {
            self.obs
                .labeled_counter(
                    names::SHARD_RING_BACKPRESSURE,
                    names::LABEL_SHARD,
                    &shard.to_string(),
                )
                .add(backpressure);
        }
    }

    /// Fans an accepted push out to every shard holding a replica of
    /// `item` — one independent simulated link per destination (its own
    /// loss coin flip and delay draw), stamped with the current tick
    /// for conservative release on the remote side.
    fn forward_exports(&mut self, item: usize, value: f64, now: f64) {
        let n = self.shard.as_ref().map_or(0, |c| c.exports[item].len());
        if n == 0 {
            return;
        }
        let gid = self.gi(item);
        let span = SpanContext::current().parent().map_or(0, |s| s.0);
        for k in 0..n {
            if self.drop_message(item) {
                continue;
            }
            let delay = self.delay_rng.pareto(&self.cfg.delays.node_to_node, gid);
            let ring = self.shard.as_ref().expect("sharded").exports[item][k];
            self.ring_send(
                ring,
                RingMsg::Refresh {
                    item: gid as u32,
                    value,
                    time: now + delay,
                    sent_tick: self.current_tick,
                    span,
                },
            );
        }
    }

    /// Source-side filter: push when the value escapes the installed DAB.
    fn maybe_push(&mut self, item: usize, now: f64) {
        let v = self.items.value(item);
        let dab = self.items.installed_dab(item);
        if dab.is_finite() && (v - self.items.last_pushed(item)).abs() > dab {
            self.items.set_last_pushed(item, v);
            if !self.drop_message(item) {
                let gid = self.gi(item);
                let delay = self.delay_rng.pareto(&self.cfg.delays.node_to_node, gid);
                self.c_sched_push.inc();
                self.queue
                    .push(now + delay, Event::RefreshArrive { item, value: v });
            }
            // An accepted push also feeds every remote replica (no-op
            // in the classic engine and for unexported items).
            self.forward_exports(item, v, now);
        }
    }

    /// Failure injection: true if this message is lost in transit. The
    /// draw runs on `item`'s stream under [`DelayRng::PerItem`].
    fn drop_message(&mut self, item: usize) -> bool {
        if self.cfg.loss_probability > 0.0 {
            let gid = self.gi(item);
            if self.delay_rng.uniform(gid) < self.cfg.loss_probability {
                self.metrics.lost_messages += 1;
                self.c_lost.inc();
                self.obs
                    .emit_with(names::SIM_LOST_MESSAGE, EventKind::Count, |e| e);
                return true;
            }
        }
        false
    }

    /// Arrival bookkeeping for one refresh (metrics, attribution, trace
    /// event) — everything that happens before the value is applied.
    fn note_refresh_arrival(&mut self, item: usize, value: f64, now: f64) {
        self.metrics.refreshes += 1;
        self.metrics.per_item_refreshes[item] += 1;
        self.c_refreshes.inc();
        self.lc_refresh_by_item[item].inc();
        if let Some(c) = &self.lc_shard_refresh {
            c.inc();
        }
        let gid = self.gi(item);
        self.obs
            .emit_with(names::SIM_REFRESH, EventKind::Count, |e| {
                e.with("item", gid).with("value", value).with("t", now)
            });
    }

    /// The per-event refresh path: apply the value, then check/notify/
    /// recompute.
    fn on_refresh(&mut self, item: usize, value: f64, now: f64) -> Result<(), SimError> {
        self.note_refresh_arrival(item, value, now);
        match self.cfg.eval {
            EvalMode::Delta { .. } => {
                let old = self.items.coord_value(item);
                let n = self.coord_view.apply(
                    &self.plans,
                    &self.item_queries[item],
                    self.items.coord_values(),
                    item,
                    old,
                    value,
                );
                if n > 0 {
                    self.c_eval_delta.add(n);
                }
            }
            EvalMode::Shared { .. } => {
                let old = self.items.coord_value(item);
                let (plan, view) = (
                    self.shared_plan.as_ref().expect("shared mode"),
                    self.coord_sview.as_mut().expect("shared mode"),
                );
                let n = view.apply(plan, self.items.coord_values(), item, old, value);
                if n > 0 {
                    if let Some(c) = &self.c_scatter_fanout {
                        c.add(n);
                    }
                }
            }
            EvalMode::Naive => {}
        }
        self.items.set_coord_value(item, value);
        self.process_refresh(item, now)
    }

    /// Collects every queued `RefreshArrive` at the same instant `t`
    /// whose affected query sets are pairwise disjoint from the batch so
    /// far, then ingests the batch through one fused sweep. The first
    /// event not admitted (different time/type, duplicate item, or
    /// overlapping queries) is returned so the caller processes it next
    /// — pop order is never reordered.
    fn collect_and_ingest_batch(
        &mut self,
        item: usize,
        value: f64,
        t: f64,
        now: f64,
    ) -> Result<Option<(f64, Event)>, SimError> {
        let mut batch = std::mem::take(&mut self.batch);
        debug_assert!(batch.is_empty());
        batch.push((item, value));
        self.items.mark_dirty(item);
        for &qi in &self.item_queries[item] {
            self.query_mark.set(qi as usize);
        }
        let mut held = None;
        while self.queue.peek_time() == Some(t) {
            let Some((t2, event)) = self.queue.pop_until(now) else {
                break;
            };
            self.c_sched_pop.inc();
            match event {
                Event::RefreshArrive {
                    item: item2,
                    value: value2,
                } if !self.items.is_dirty(item2)
                    && self.item_queries[item2]
                        .iter()
                        .all(|&qi| !self.query_mark.get(qi as usize)) =>
                {
                    batch.push((item2, value2));
                    self.items.mark_dirty(item2);
                    for &qi in &self.item_queries[item2] {
                        self.query_mark.set(qi as usize);
                    }
                }
                other => {
                    held = Some((t2, other));
                    break;
                }
            }
        }
        for &(i, _) in &batch {
            self.items.clear_dirty(i);
            for &qi in &self.item_queries[i] {
                self.query_mark.clear(qi as usize);
            }
        }
        let result = self.ingest_batch(&batch, t);
        batch.clear();
        self.batch = batch;
        result?;
        Ok(held)
    }

    /// Ingests a batch of same-instant refreshes: phase A applies every
    /// value through one fused delta sweep (in arrival order), phase B
    /// runs the per-refresh check/notify/recompute pipeline in the same
    /// arrival order. Because admitted refreshes touch pairwise-disjoint
    /// query sets and the delay model is service-free, this is
    /// outcome-identical to the per-event path (DESIGN.md §12).
    fn ingest_batch(&mut self, batch: &[(usize, f64)], now: f64) -> Result<(), SimError> {
        self.metrics.ingest_batches += 1;
        self.c_ingest_batch.inc();
        self.h_ingest_batch_size.record(batch.len() as u64);
        for &(item, value) in batch {
            self.note_refresh_arrival(item, value, now);
        }
        match self.cfg.eval {
            EvalMode::Delta { .. } => {
                let n = self.coord_view.apply_batch(
                    &self.plans,
                    &self.item_queries,
                    self.items.coord_values_mut(),
                    batch,
                );
                if n > 0 {
                    self.c_eval_delta.add(n);
                }
            }
            EvalMode::Shared { .. } => {
                let (plan, view) = (
                    self.shared_plan.as_ref().expect("shared mode"),
                    self.coord_sview.as_mut().expect("shared mode"),
                );
                let n = view.apply_batch(plan, self.items.coord_values_mut(), batch);
                if n > 0 {
                    if let Some(c) = &self.c_scatter_fanout {
                        c.add(n);
                    }
                }
            }
            EvalMode::Naive => {
                for &(item, value) in batch {
                    self.items.set_coord_value(item, value);
                }
            }
        }
        for &(item, _) in batch {
            self.process_refresh(item, now)?;
        }
        Ok(())
    }

    /// Post-apply half of a refresh: QAB notification, staleness
    /// collection, DAB recomputation, trigger attribution, and the
    /// coordinator-occupancy accounting.
    fn process_refresh(&mut self, item: usize, now: f64) -> Result<(), SimError> {
        // One query-check service charge per refresh (the paper's 4 ms
        // mean covers processing an arriving refresh, §V-A).
        let item_gid = self.gi(item);
        let mut service = self
            .delay_rng
            .pareto(&self.cfg.delays.coordinator_check, item_gid);
        let recomputes_before = self.metrics.recomputations;

        let mut affected = std::mem::take(&mut self.scratch_affected);
        affected.clear();
        affected.extend_from_slice(&self.item_queries[item]);
        let mut stale = std::mem::take(&mut self.scratch_stale);
        stale.clear();
        for &qi in &affected {
            let qi = qi as usize;
            let q = &self.cfg.queries[qi];
            // Notify the user if the cached query value moved past the QAB.
            let qv = match self.cfg.eval {
                EvalMode::Naive => {
                    self.c_eval_full.inc();
                    q.eval(self.items.coord_values())
                }
                EvalMode::Delta { .. } => self.coord_view.value(qi),
                EvalMode::Shared { .. } => {
                    self.coord_sview.as_ref().expect("shared mode").value(qi)
                }
            };
            if (qv - self.last_user_value[qi]).abs() > q.qab() {
                self.last_user_value[qi] = qv;
                self.metrics.user_notifications += 1;
                self.c_notifications.inc();
                let gqi = self.gq(qi);
                self.obs
                    .emit_with(names::SIM_USER_NOTIFY, EventKind::Count, |e| {
                        e.with("query", gqi).with("value", qv).with("t", now)
                    });
            }
            // Collect every unit the refresh invalidated. Staleness only
            // depends on each unit's own assignment and the updated
            // coordinator values, so collecting first and solving as a
            // batch is equivalent to solving inline.
            for (ui, a) in self.assignments[qi].iter().enumerate() {
                if !a.is_valid_at(self.items.coord_values()) {
                    stale.push((qi, ui));
                }
            }
        }
        self.scratch_affected = affected;
        let result = if stale.is_empty() {
            Ok(())
        } else {
            self.recompute_stale(&stale, item, now)
        };
        stale.clear();
        self.scratch_stale = stale;
        result?;
        // Occupy the coordinator: per-query checks plus one solver run per
        // recomputation. (DAB-change messages were scheduled from the
        // processing start — a slight idealization.)
        let recomputes = self.metrics.recomputations - recomputes_before;
        if recomputes > 0 {
            // Attribution: this item's refresh forced recomputations.
            self.metrics.per_item_recompute_triggers[item] += 1;
            self.lc_trigger_by_item[item].inc();
            self.obs
                .emit_with(names::DAB_RECOMPUTE_TRIGGER, EventKind::Count, |e| {
                    e.with("item", item_gid)
                        .with("recomputes", recomputes)
                        .with("t", now)
                });
        }
        for _ in 0..recomputes {
            service += self
                .delay_rng
                .pareto(&self.cfg.delays.recompute_service, item_gid);
        }
        self.coordinator_busy_until = now + service;
        Ok(())
    }

    /// Recomputes a batch of stale assignment units, fanning the
    /// independent GP solves out over up to `cfg.threads` worker threads.
    /// `item` is the data item whose refresh invalidated them — carried on
    /// the `dab.recompute` events so traces attribute recomputation cost
    /// to its trigger.
    ///
    /// Results merge back in batch order: counters, assignment installs
    /// and DAB-change propagation (including its RNG draws) happen
    /// serially in the same order the old solve-as-you-scan loop used, so
    /// metrics are byte-identical for any thread count.
    fn recompute_stale(
        &mut self,
        stale: &[(usize, usize)],
        item: usize,
        now: f64,
    ) -> Result<(), SimError> {
        let strategy = match &self.cfg.strategy {
            SimStrategy::PerQuery { strategy, .. } => *strategy,
            // Between AAO periods, stale queries are re-solved individually
            // with Dual-DAB (§V-B.1).
            SimStrategy::AaoPeriodic { mu, .. } => AssignmentStrategy::DualDab { mu: *mu },
        };
        let started = Instant::now();
        let mut jobs: Vec<RecomputeJob<'_>> = Vec::with_capacity(stale.len());
        for &(qi, ui) in stale {
            let mut gp = self.cfg.gp.clone();
            gp.obs = self.obs.clone();
            gp.query = Some(qi as u32);
            gp.query_counter = Some(self.lc_solve_by_query[qi].clone());
            gp.solve_timer = Some(self.t_gp_solve.clone());
            let cache = self.cache.take(qi, ui);
            jobs.push(RecomputeJob {
                qi,
                ui,
                unit: &self.units[qi][ui],
                ctx: SolveContext {
                    values: self.items.coord_values(),
                    rates: &self.rates,
                    ddm: self.cfg.ddm,
                    gp,
                },
                cache,
            });
        }
        // The batch span is the causal parent of every fanned-out
        // `gp.solve` span: workers enter the [`pq_obs::SpanContext`]
        // captured while this guard is on the stack.
        let batch_span = self.t_recompute_batch.start(&self.obs);
        let done = recompute_parallel(jobs, strategy, self.cfg.threads);
        drop(batch_span);
        self.note_solver_time(started);
        let mut failure: Option<SimError> = None;
        for d in done {
            self.cache.put_back(d.qi, d.ui, d.cache);
            match d.result {
                Ok(new_assignment) if failure.is_none() => {
                    self.metrics.recomputations += 1;
                    self.metrics.per_query_recomputations[d.qi] += 1;
                    self.c_recomputations.inc();
                    self.lc_recompute_by_query[d.qi].inc();
                    if let Some(c) = &self.lc_shard_recompute {
                        c.inc();
                    }
                    let (gqi, gii) = (self.gq(d.qi), self.gi(item));
                    self.obs
                        .emit_with(names::DAB_RECOMPUTE, EventKind::Count, |e| {
                            e.with("query", gqi)
                                .with("unit", d.ui)
                                .with("item", gii)
                                .with("reason", "validity")
                                .with("t", now)
                        });
                    let mut changed = std::mem::take(&mut self.scratch_items);
                    changed.clear();
                    changed.extend(new_assignment.primary.keys().map(|i| i.index()));
                    self.assignments[d.qi][d.ui] = new_assignment;
                    self.propagate_dab_changes(&changed, now);
                    self.scratch_items = changed;
                }
                Ok(_) => {}
                Err(source) => {
                    if failure.is_none() {
                        failure = Some(SimError::Dab {
                            query: d.qi,
                            source,
                        });
                    }
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Re-derives installed filters for `items` and ships changes to the
    /// sources.
    fn propagate_dab_changes(&mut self, items: &[usize], now: f64) {
        for &item in items {
            let new_min = self.min_dab_for_item(item);
            let old = self.items.coord_dab(item);
            let changed = if old.is_finite() && new_min.is_finite() {
                filter_changed(old, new_min)
            } else {
                old.is_finite() != new_min.is_finite()
            };
            if changed {
                self.items.set_coord_dab(item, new_min);
                self.metrics.dab_change_messages += 1;
                self.c_dab_changes.inc();
                let gid = self.gi(item);
                self.obs
                    .emit_with(names::SIM_DAB_CHANGE, EventKind::Count, |e| {
                        e.with("item", gid).with("dab", new_min).with("t", now)
                    });
                // A replica has no local source to re-filter: ship the
                // new local minimum to the item's home shard instead
                // (coordinator-to-coordinator link — reliable, released
                // at the next tick barrier).
                if let Some(ring) = self.shard.as_ref().and_then(|c| c.home_ring[item]) {
                    // For a replica `new_min` is purely local (remote
                    // folds only accumulate at the home shard).
                    let msg = RingMsg::DabUpdate {
                        item: gid as u32,
                        min_dab: new_min,
                        time: now,
                        sent_tick: self.current_tick,
                        span: SpanContext::current().parent().map_or(0, |s| s.0),
                    };
                    self.ring_send(ring, msg);
                    continue;
                }
                if self.drop_message(item) {
                    continue;
                }
                let delay = self.delay_rng.pareto(&self.cfg.delays.node_to_node, gid);
                self.c_sched_push.inc();
                self.queue
                    .push(now + delay, Event::DabChangeArrive { item, dab: new_min });
            }
        }
    }

    fn periodic_aao(&mut self, now: f64, mu: f64) -> Result<(), SimError> {
        let started = Instant::now();
        let ca = aao(&self.cfg.queries, &self.solve_context(), mu)
            .map_err(|source| SimError::Dab { query: 0, source })?;
        self.note_solver_time(started);
        // Every query's DABs were recomputed (counted per query, as the
        // paper does for the AAO-T curves).
        self.metrics.recomputations += self.cfg.queries.len() as u64;
        self.c_recomputations.add(self.cfg.queries.len() as u64);
        if let Some(c) = &self.lc_shard_recompute {
            c.add(self.cfg.queries.len() as u64);
        }
        for qi in 0..self.cfg.queries.len() {
            self.metrics.per_query_recomputations[qi] += 1;
            self.lc_recompute_by_query[qi].inc();
            let gqi = self.gq(qi);
            self.obs
                .emit_with(names::DAB_RECOMPUTE, EventKind::Count, |e| {
                    e.with("query", gqi)
                        .with("reason", "aao-periodic")
                        .with("t", now)
                });
        }
        self.assignments = ca.per_query.into_iter().map(|a| vec![a]).collect();
        let mut all_items = std::mem::take(&mut self.scratch_items);
        all_items.clear();
        all_items.extend(0..self.n_items);
        self.propagate_dab_changes(&all_items, now);
        self.scratch_items = all_items;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::Pareto;
    use pq_ddm::Trace;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    /// Two items moving as slow sinusoids, one product query.
    fn small_config(delays: DelayConfig, strategy: SimStrategy) -> SimConfig {
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, 3.0, 400.0, 1200),
            Trace::sinusoid(10.0, 2.0, 300.0, 1200),
        ]);
        let queries = vec![PolynomialQuery::portfolio([(1.0, x(0), x(1))], 8.0).unwrap()];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = delays;
        cfg.strategy = strategy;
        cfg
    }

    fn dual(mu: f64) -> SimStrategy {
        SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu },
            heuristic: PqHeuristic::DifferentSum,
        }
    }

    fn optimal() -> SimStrategy {
        SimStrategy::PerQuery {
            strategy: AssignmentStrategy::OptimalRefresh,
            heuristic: PqHeuristic::DifferentSum,
        }
    }

    #[test]
    fn zero_delay_never_violates_qab() {
        // Condition 1 + zero delays => fidelity loss must be exactly 0.
        for strategy in [dual(5.0), optimal()] {
            let cfg = small_config(DelayConfig::zero(), strategy.clone());
            let m = run(&cfg).unwrap();
            assert_eq!(
                m.loss_in_fidelity_percent(),
                0.0,
                "{strategy:?}: violations {:?}",
                m.per_query_violations
            );
            assert!(m.refreshes > 0, "the traces do move");
        }
    }

    #[test]
    fn optimal_refresh_recomputes_on_every_refresh() {
        let cfg = small_config(DelayConfig::zero(), optimal());
        let m = run(&cfg).unwrap();
        // Single query referencing both items: every arriving refresh
        // invalidates the anchor-only assignment.
        assert_eq!(m.recomputations, m.refreshes);
    }

    #[test]
    fn dual_dab_recomputes_less_but_refreshes_more() {
        let opt = run(&small_config(DelayConfig::zero(), optimal())).unwrap();
        let dd = run(&small_config(DelayConfig::zero(), dual(5.0))).unwrap();
        assert!(
            dd.recomputations * 2 < opt.recomputations,
            "dual {} vs optimal {}",
            dd.recomputations,
            opt.recomputations
        );
        assert!(
            dd.refreshes >= opt.refreshes,
            "{} vs {}",
            dd.refreshes,
            opt.refreshes
        );
        // And the total cost with mu = 5 favours Dual-DAB.
        assert!(dd.total_cost(5.0) < opt.total_cost(5.0));
    }

    #[test]
    fn larger_mu_means_fewer_recomputations() {
        let m1 = run(&small_config(DelayConfig::zero(), dual(1.0))).unwrap();
        let m10 = run(&small_config(DelayConfig::zero(), dual(10.0))).unwrap();
        assert!(
            m10.recomputations <= m1.recomputations,
            "mu=10 {} vs mu=1 {}",
            m10.recomputations,
            m1.recomputations
        );
    }

    #[test]
    fn delays_cause_some_fidelity_loss() {
        let cfg = small_config(DelayConfig::with_node_mean(2.0), dual(5.0));
        let m = run(&cfg).unwrap();
        // With 2 s mean network delay, some violation windows must be
        // visible at 1 s sampling.
        assert!(
            m.loss_in_fidelity_percent() > 0.0,
            "violations {:?}",
            m.per_query_violations
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_config(DelayConfig::planetlab_like(), dual(5.0));
        let mut a = run(&cfg).unwrap();
        let mut b = run(&cfg).unwrap();
        // Wall-clock solver time is the only nondeterministic field.
        a.solver_seconds = 0.0;
        b.solver_seconds = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_recompute_fanout_matches_serial() {
        // Two queries sharing item x1: a refresh of x1 can invalidate both
        // at once, exercising the multi-job fan-out. The simulated metrics
        // (messages, recomputations, filter changes, fidelity) must be
        // byte-identical no matter how many workers run the solves.
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, 4.0, 400.0, 1200),
            Trace::sinusoid(10.0, 3.0, 300.0, 1200),
            Trace::sinusoid(15.0, 3.0, 350.0, 1200),
        ]);
        let queries = vec![
            PolynomialQuery::portfolio([(1.0, x(0), x(1))], 6.0).unwrap(),
            PolynomialQuery::portfolio([(1.0, x(1), x(2))], 6.0).unwrap(),
        ];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = DelayConfig::planetlab_like();
        let mut serial_cfg = cfg.clone();
        serial_cfg.threads = 1;
        let mut parallel_cfg = cfg;
        parallel_cfg.threads = 8;
        let mut serial = run(&serial_cfg).unwrap();
        let mut parallel = run(&parallel_cfg).unwrap();
        assert!(serial.recomputations > 0);
        // Wall-clock solver time is the only nondeterministic field.
        serial.solver_seconds = 0.0;
        parallel.solver_seconds = 0.0;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn aao_periodic_runs_and_counts_recomputations() {
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, 3.0, 400.0, 600),
            Trace::sinusoid(10.0, 2.0, 300.0, 600),
            Trace::sinusoid(15.0, 2.0, 350.0, 600),
        ]);
        let queries = vec![
            PolynomialQuery::portfolio([(1.0, x(0), x(1))], 8.0).unwrap(),
            PolynomialQuery::portfolio([(1.0, x(1), x(2))], 8.0).unwrap(),
        ];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = DelayConfig::zero();
        cfg.strategy = SimStrategy::AaoPeriodic {
            period_ticks: 100,
            mu: 5.0,
        };
        let m = run(&cfg).unwrap();
        // 5 periodic runs (ticks 100..500) x 2 queries at minimum.
        assert!(
            m.recomputations >= 10,
            "recomputations {}",
            m.recomputations
        );
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn delta_eval_matches_naive_metrics_exactly() {
        // The delta-maintained query values must not change a single
        // simulated decision: full metric equality (violations included)
        // across evaluation modes, for delayed, lossy, and AAO configs.
        let mut configs = vec![
            small_config(DelayConfig::planetlab_like(), dual(5.0)),
            small_config(DelayConfig::with_node_mean(2.0), optimal()),
        ];
        let mut lossy = small_config(DelayConfig::planetlab_like(), dual(1.0));
        lossy.loss_probability = 0.3;
        configs.push(lossy);
        let mut aao = small_config(DelayConfig::planetlab_like(), dual(5.0));
        aao.strategy = SimStrategy::AaoPeriodic {
            period_ticks: 200,
            mu: 5.0,
        };
        configs.push(aao);
        for cfg in configs {
            let mut naive_cfg = cfg.clone();
            naive_cfg.eval = EvalMode::Naive;
            let mut delta_cfg = cfg;
            delta_cfg.eval = EvalMode::Delta { rebase_every: 256 };
            let mut naive = run(&naive_cfg).unwrap();
            let mut delta = run(&delta_cfg).unwrap();
            // Wall-clock solver time is the only nondeterministic field.
            naive.solver_seconds = 0.0;
            delta.solver_seconds = 0.0;
            assert_eq!(naive, delta);
        }
    }

    #[test]
    fn delta_mode_counts_deltas_and_rebases() {
        let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
        cfg.eval = EvalMode::Delta { rebase_every: 100 };
        let obs = Obs::null();
        run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        let count = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        assert!(count(names::EVAL_DELTA) > 0, "source moves fold deltas");
        // 1199 post-zero ticks / 100 → 11 rebases, each re-evaluating
        // both views; plus the two seeding evaluations per query.
        assert_eq!(count(names::EVAL_REBASE), 11);
        assert_eq!(count(names::EVAL_FULL), 2 + 11 * 2);
    }

    #[test]
    fn shared_eval_matches_naive_metrics_exactly() {
        // The cross-query shared plan must not change a single simulated
        // decision either: full metric equality (violations included)
        // against both the naive and per-query delta paths. The QAB
        // margins sit ~13 orders of magnitude above the float drift
        // between the evaluation orders, so decision parity is exact.
        let mut configs = vec![
            small_config(DelayConfig::zero(), dual(5.0)),
            small_config(DelayConfig::planetlab_like(), dual(5.0)),
            small_config(DelayConfig::with_node_mean(2.0), optimal()),
        ];
        let mut lossy = small_config(DelayConfig::planetlab_like(), dual(1.0));
        lossy.loss_probability = 0.3;
        configs.push(lossy);
        for cfg in configs {
            let mut naive_cfg = cfg.clone();
            naive_cfg.eval = EvalMode::Naive;
            let mut delta_cfg = cfg.clone();
            delta_cfg.eval = EvalMode::Delta { rebase_every: 256 };
            let mut shared_cfg = cfg;
            shared_cfg.eval = EvalMode::Shared { rebase_every: 256 };
            let mut naive = run(&naive_cfg).unwrap();
            let mut delta = run(&delta_cfg).unwrap();
            let mut shared = run(&shared_cfg).unwrap();
            // Wall-clock solver time is the only nondeterministic field.
            naive.solver_seconds = 0.0;
            delta.solver_seconds = 0.0;
            shared.solver_seconds = 0.0;
            assert_eq!(naive, shared);
            assert_eq!(delta, shared);
        }
    }

    #[test]
    fn shared_mode_counts_terms_scatters_and_rebases() {
        let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
        cfg.eval = EvalMode::Shared { rebase_every: 100 };
        let obs = Obs::null();
        run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        let count = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        // One portfolio leg compiles to one distinct monomial.
        assert_eq!(count(names::EVAL_SHARED_TERMS), 1);
        assert!(
            count(names::EVAL_SCATTER_FANOUT) > 0,
            "source moves scatter"
        );
        assert_eq!(count(names::EVAL_DELTA), 0, "no per-query delta path");
        // Same rebase cadence as delta mode: 1199 post-zero ticks / 100
        // → 11 rebases re-evaluating both views, plus the two seedings.
        assert_eq!(count(names::EVAL_REBASE), 11);
        assert_eq!(count(names::EVAL_FULL), 2 + 11 * 2);
    }

    #[test]
    fn naive_mode_counts_full_evaluations() {
        let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
        cfg.eval = EvalMode::Naive;
        let obs = Obs::null();
        let m = run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        let count = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        assert_eq!(count(names::EVAL_REBASE), 0);
        // Two per fidelity sample, one per refresh-affected query, plus
        // the two per-query view seedings.
        assert!(count(names::EVAL_FULL) >= 2 * m.fidelity_samples);
        assert_eq!(count(names::EVAL_DELTA), 0);
    }

    #[test]
    fn queries_over_missing_items_are_rejected() {
        let traces = TraceSet::new(vec![Trace::constant(1.0, 10)]);
        let queries = vec![PolynomialQuery::portfolio([(1.0, x(0), x(5))], 1.0).unwrap()];
        let cfg = SimConfig::new(traces, queries);
        assert!(matches!(run(&cfg), Err(SimError::MissingTrace { item: 5 })));
    }

    #[test]
    fn constant_traces_generate_no_traffic() {
        let traces = TraceSet::new(vec![Trace::constant(5.0, 300), Trace::constant(7.0, 300)]);
        let queries = vec![PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap()];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = DelayConfig::zero();
        let m = run(&cfg).unwrap();
        assert_eq!(m.refreshes, 0);
        assert_eq!(m.recomputations, 0);
        assert_eq!(m.loss_in_fidelity_percent(), 0.0);
    }

    #[test]
    fn busy_coordinator_queues_refreshes() {
        // A large recompute service under Optimal Refresh (which
        // recomputes per refresh) must visibly degrade fidelity compared
        // to a free coordinator, with identical message counts at the
        // sources.
        let mut slow = small_config(DelayConfig::zero(), optimal());
        slow.delays.recompute_service = Pareto::with_mean(3.0);
        let m_slow = run(&slow).unwrap();
        let m_fast = run(&small_config(DelayConfig::zero(), optimal())).unwrap();
        assert!(
            m_slow.loss_in_fidelity_percent() > m_fast.loss_in_fidelity_percent(),
            "slow {} vs fast {}",
            m_slow.loss_in_fidelity_percent(),
            m_fast.loss_in_fidelity_percent()
        );
        assert!(m_slow.loss_in_fidelity_percent() > 0.0);
    }

    #[test]
    fn dual_dab_suffers_less_under_coordinator_load() {
        // The motivation for minimizing recomputations: with a costly
        // solver in the loop, Dual-DAB's rare recomputations keep the
        // coordinator responsive while Optimal Refresh backs up.
        let mut o = small_config(DelayConfig::zero(), optimal());
        o.delays.recompute_service = Pareto::with_mean(3.0);
        let mut d = small_config(DelayConfig::zero(), dual(5.0));
        d.delays.recompute_service = Pareto::with_mean(3.0);
        let mo = run(&o).unwrap();
        let md = run(&d).unwrap();
        assert!(
            md.loss_in_fidelity_percent() < mo.loss_in_fidelity_percent(),
            "dual {} vs optimal {}",
            md.loss_in_fidelity_percent(),
            mo.loss_in_fidelity_percent()
        );
    }

    #[test]
    fn message_loss_degrades_fidelity() {
        let lossless = run(&small_config(DelayConfig::zero(), dual(5.0))).unwrap();
        assert_eq!(lossless.lost_messages, 0);
        assert_eq!(lossless.loss_in_fidelity_percent(), 0.0);

        let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
        cfg.loss_probability = 0.4;
        let lossy = run(&cfg).unwrap();
        assert!(lossy.lost_messages > 0);
        assert!(
            lossy.loss_in_fidelity_percent() > 0.0,
            "dropped refreshes must show up as staleness"
        );
        // Fewer refreshes arrive than were pushed.
        assert!(lossy.refreshes < lossless.refreshes + lossy.lost_messages);
    }

    #[test]
    fn snapshot_bridge_matches_direct_metrics() {
        let mut cfg = small_config(DelayConfig::planetlab_like(), dual(5.0));
        cfg.loss_probability = 0.1;
        let obs = Obs::null();
        let m = run_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        // The GP solver ran under this handle's registry.
        assert!(snap.histograms.contains_key("gp.solve_ns"));
        let mut bridged = SimMetrics::from_snapshot(&snap, cfg.queries.len(), &obs);
        // solver_seconds: f64 running sum vs exact u64 ns sum.
        assert!((bridged.solver_seconds - m.solver_seconds).abs() < 1e-6);
        let mut direct = m;
        direct.solver_seconds = 0.0;
        bridged.solver_seconds = 0.0;
        assert_eq!(direct, bridged);
    }

    #[test]
    fn jsonl_trace_mirrors_recomputation_count() {
        let path = std::env::temp_dir().join(format!("pq_sim_trace_{}.jsonl", std::process::id()));
        let mut cfg = small_config(DelayConfig::zero(), optimal());
        cfg.obs = ObsConfig {
            jsonl: Some(path.clone()),
            ..Default::default()
        };
        let m = run(&cfg).unwrap();
        assert!(m.recomputations > 0);

        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<pq_obs::Event> = text
            .lines()
            .map(|l| pq_obs::jsonl::parse(l).expect("every trace line is valid JSON"))
            .collect();
        let count = |target: &str| events.iter().filter(|e| e.target == target).count() as u64;
        assert_eq!(count(names::DAB_RECOMPUTE), m.recomputations);
        assert_eq!(count(names::SIM_REFRESH), m.refreshes);
        assert!(count("gp.solve_ns") > 0, "GP solve timings reach the trace");
        assert_eq!(count(names::SIM_RUN_START), 1);
        assert_eq!(count(names::SIM_RUN_END), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wheel_scheduler_matches_heap_exactly() {
        // The tentpole contract: the timer wheel must not change a
        // single metric, under zero and heavy-tailed delays alike.
        for delays in [DelayConfig::zero(), DelayConfig::planetlab_like()] {
            for strategy in [dual(5.0), optimal()] {
                let mut heap_cfg = small_config(delays, strategy.clone());
                heap_cfg.scheduler = Scheduler::Heap;
                let mut wheel_cfg = heap_cfg.clone();
                wheel_cfg.scheduler = Scheduler::Wheel;
                let mut h = run(&heap_cfg).unwrap();
                let mut w = run(&wheel_cfg).unwrap();
                // Wall-clock solver time is the only nondeterministic
                // field.
                h.solver_seconds = 0.0;
                w.solver_seconds = 0.0;
                assert_eq!(h, w, "{strategy:?}");
            }
        }
    }

    #[test]
    fn batching_engages_only_under_service_free_delays() {
        let free = run(&small_config(DelayConfig::zero(), dual(5.0))).unwrap();
        assert!(free.ingest_batches > 0, "zero delays must batch");
        assert!(free.ingest_batches <= free.refreshes);
        let busy = run(&small_config(DelayConfig::planetlab_like(), dual(5.0))).unwrap();
        assert_eq!(
            busy.ingest_batches, 0,
            "nonzero service times must fall back to per-event ingestion"
        );
    }

    #[test]
    fn disjoint_queries_fuse_same_tick_refreshes() {
        // Two queries over disjoint item sets: same-tick refreshes of
        // items belonging to different queries are admitted into one
        // batch, so there are strictly fewer batches than refreshes.
        let traces = TraceSet::new(vec![
            Trace::sinusoid(20.0, 3.0, 400.0, 1200),
            Trace::sinusoid(10.0, 2.0, 300.0, 1200),
            Trace::sinusoid(15.0, 2.5, 350.0, 1200),
            Trace::sinusoid(12.0, 2.0, 320.0, 1200),
        ]);
        let queries = vec![
            PolynomialQuery::portfolio([(1.0, x(0), x(1))], 8.0).unwrap(),
            PolynomialQuery::portfolio([(1.0, x(2), x(3))], 8.0).unwrap(),
        ];
        let mut cfg = SimConfig::new(traces, queries);
        cfg.delays = DelayConfig::zero();
        let obs = Obs::null();
        let m = run_observed(&cfg, &obs).unwrap();
        assert!(m.ingest_batches > 0);
        assert!(
            m.ingest_batches < m.refreshes,
            "disjoint queries must fuse: {} batches for {} refreshes",
            m.ingest_batches,
            m.refreshes
        );
        let snap = obs.snapshot();
        let count = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
        // Zero delays: every scheduled event is delivered the same tick.
        assert_eq!(count(names::SCHED_PUSH), count(names::SCHED_POP));
        assert!(count(names::SCHED_PUSH) > 0);
        // Every refresh flows through exactly one batch.
        let h = snap
            .histograms
            .get(names::INGEST_BATCH_SIZE)
            .expect("batch size histogram recorded");
        assert_eq!(h.count, m.ingest_batches);
        assert_eq!(h.sum, m.refreshes);
    }

    #[test]
    fn slo_engine_is_metrics_invariant_and_stays_green_on_a_clean_run() {
        let base = small_config(DelayConfig::zero(), dual(5.0));
        let mut with_slo = base.clone();
        with_slo.slo = Some(SloConfig::default());
        let plain = run(&base).unwrap();
        let obs = Obs::null();
        let mut observed = run_observed(&with_slo, &obs).unwrap();
        observed.solver_seconds = plain.solver_seconds;
        assert_eq!(plain, observed, "the SLO engine must be read-only");
        let slo = obs.slo_engine().expect("engine installed on the handle");
        assert_eq!(slo.health(), (pq_obs::Health::Ok, 0));
        assert!(slo.alerts().is_empty(), "clean run must not page");
        assert_eq!(
            obs.watchdog().expect("watchdog installed").status(),
            pq_obs::slo::WatchdogStatus::Disarmed,
            "a finished run is not a stall"
        );
        let plane = obs.window_plane().expect("plane installed");
        assert_eq!(plane.now(), (with_slo.traces.n_ticks() - 1) as u64);
        assert!(
            plane
                .sum(names::SIM_REFRESH, pq_obs::window::WINDOW_1H)
                .unwrap()
                > 0,
            "refresh source polled into the windowed plane"
        );
    }

    #[test]
    fn injected_audit_fault_pages_and_dumps_within_one_interval() {
        let dir = std::env::temp_dir().join(format!(
            "pq-sim-slo-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dump_path = dir.join("flight.jsonl");
        let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
        cfg.audit = Some(AuditConfig::default());
        cfg.audit_fault = Some(AuditFault {
            tick: 200,
            query: 0,
            perturb: 1.0e6,
        });
        cfg.slo = Some(SloConfig::default());
        let recorder = pq_obs::Recorder::new(pq_obs::RecorderConfig::new(dump_path.clone()));
        let obs = Obs::with_subscriber(Arc::new(recorder.clone()));
        assert!(obs.install_recorder(recorder));
        run_observed(&cfg, &obs).unwrap();
        let slo = obs.slo_engine().unwrap();
        let alerts = slo.alerts();
        let divergence_alert = alerts
            .iter()
            .find(|a| a.kind == pq_obs::AlertKind::AuditDivergence)
            .expect("injected fault must page the audit-integrity objective");
        let every = AuditConfig::default().every as u64;
        assert!(
            divergence_alert.raised_at <= 200 + every,
            "paged at {} — more than one audit interval after the fault",
            divergence_alert.raised_at
        );
        let dump = std::fs::read_to_string(&dump_path).expect("flight recorder dumped");
        assert!(dump.lines().next().unwrap().contains("recorder.dump"));
        assert!(dump.contains("audit.divergence"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loss_probability_scales_monotonically() {
        let mut last = -1.0;
        for p in [0.0, 0.2, 0.6] {
            let mut cfg = small_config(DelayConfig::zero(), dual(5.0));
            cfg.loss_probability = p;
            let m = run(&cfg).unwrap();
            let loss = m.loss_in_fidelity_percent();
            assert!(
                loss >= last,
                "fidelity loss should not improve with more message loss: \
                 p={p} gave {loss} after {last}"
            );
            last = loss;
        }
    }
}
