//! Multi-coordinator execution: partition the query↔item graph, run one
//! coordinator per shard, merge the metrics deterministically.
//!
//! The AAO decomposition (§III) solves independently per connected unit
//! of the query↔item graph, so [`mod@pq_core::partition`] packs whole
//! connected components onto `k` shards by estimated refresh/recompute
//! load and only splits a component when it alone exceeds a shard's
//! fair share. Each shard then runs the full single-coordinator engine
//! — its own timer wheel, SoA item table, delta views (or, under
//! `EvalMode::Shared`, its own cross-query [`pq_poly::SharedPlan`]
//! compiled over just its partition) and solve caches — over a dense
//! projection of its items and queries, on its own thread. Shards sharing a split component exchange messages over
//! bounded SPSC rings ([`crate::ring`]):
//!
//! * **home → remote**: accepted source refreshes of a shared item,
//!   forwarded with an independent per-destination loss/delay draw;
//! * **remote → home**: the remote's minimum DAB over its replica, so
//!   the home's installed source filter stays the global minimum.
//!
//! Synchronization is conservative (classic PDES): a shard starts tick
//! `T` only after every inbound peer has published completion of tick
//! `T - 1`, and releases only messages stamped with `sent_tick < T`, so
//! the replay order is deterministic regardless of thread interleaving.
//!
//! # Determinism contract (DESIGN.md §13)
//!
//! * `shards = 1` is **byte-identical** to the classic engine — same
//!   struct, same draw sequence, same metrics and event log.
//! * With [`DelayRng::PerItem`](crate::engine::DelayRng) and a **clean**
//!   partition (no split components), fixed-seed [`SimMetrics`] are
//!   invariant across shard counts except `ingest_batches` (batching is
//!   per-coordinator) and `solver_seconds` (wall clock).
//! * Split components add real protocol work (forwarded refreshes draw
//!   extra delays, replicas quantize arrivals to tick barriers), so
//!   their metrics are shard-count-dependent by design — exactly like
//!   the paper's multiple-coordinator configuration (Fig. 8c).

use std::collections::BTreeSet;
use std::time::Instant;

use pq_core::{partition_with_slack, PartitionInput, PartitionPlan};
use pq_obs::Obs;
use pq_poly::ItemId;

use crate::engine::{Engine, ShardCtx, ShardInlet, ShardLink, SimConfig, SimError};
use crate::metrics::SimMetrics;
use crate::ring::ring;

/// Slots per inter-shard ring. Senders block (draining their own
/// inbound) when a ring fills, so capacity only trades memory against
/// backpressure stalls.
const RING_CAPACITY: usize = 8192;

/// How a sharded run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// One OS thread per shard — the production mode; wall-clock speedup
    /// tracks the number of physical cores.
    Threaded,
    /// Shards run one after another on the calling thread, each timed in
    /// isolation. Only valid for **clean** partitions (a split component
    /// would deadlock on its ring barrier), so unclean plans silently
    /// fall back to [`Execution::Threaded`]. This measures each shard's
    /// busy time without core-count contention — on a single-core host,
    /// `max(busy)` is the critical path a multi-core run would execute.
    Sequential,
}

/// Per-shard outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardStat {
    /// Shard id.
    pub shard: u32,
    /// Queries assigned to this shard.
    pub n_queries: usize,
    /// Items held (home + replicas).
    pub n_items: usize,
    /// Replicated items among them (home on another shard).
    pub n_replicas: usize,
    /// Estimated load packed by the partitioner.
    pub load: f64,
    /// Wall-clock seconds the shard's engine ran. Under
    /// [`Execution::Threaded`] this includes barrier waits; under
    /// [`Execution::Sequential`] it is pure busy time.
    pub busy_seconds: f64,
}

/// The result of [`run_sharded`]: merged metrics plus the partition and
/// per-shard execution statistics.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Metrics merged over all shards, indexed by **global** query/item
    /// ids (scalars summed; `fidelity_samples` is the per-shard maximum
    /// since every shard samples the same ticks).
    pub metrics: SimMetrics,
    /// One entry per shard, ascending by shard id.
    pub shards: Vec<ShardStat>,
    /// Cross-shard item references (0 for a clean partition).
    pub cross_edges: usize,
    /// Connected components of the query↔item graph.
    pub n_components: usize,
    /// How the run actually executed (a [`Execution::Sequential`]
    /// request over an unclean plan reports
    /// [`Execution::Threaded`]).
    pub execution: Execution,
}

impl ShardReport {
    /// True when no component had to be split.
    pub fn clean(&self) -> bool {
        self.cross_edges == 0
    }

    /// The longest per-shard busy time — under [`Execution::Sequential`]
    /// this is the critical path of an ideally parallel run.
    pub fn max_busy_seconds(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.busy_seconds)
            .fold(0.0, f64::max)
    }
}

/// Runs `cfg` as a partitioned multi-coordinator simulation on
/// `cfg.shards` shards and merges the per-shard metrics.
///
/// `cfg.shards <= 1` runs the classic engine unchanged (byte-identical
/// metrics and draw sequence) and reports it as a single shard.
pub fn run_sharded(cfg: &SimConfig, obs: &Obs, exec: Execution) -> Result<ShardReport, SimError> {
    let k = cfg.shards.max(1);
    let n_items = cfg.traces.n_items();
    let n_queries = cfg.queries.len();
    if k == 1 {
        // Time only `run()`, matching the k > 1 path where engines are
        // constructed (solver setup included) before the clock starts.
        let engine = Engine::new(cfg, obs.clone())?;
        let t0 = Instant::now();
        let metrics = engine.run()?;
        return Ok(ShardReport {
            metrics,
            shards: vec![ShardStat {
                shard: 0,
                n_queries,
                n_items,
                n_replicas: 0,
                load: 0.0,
                busy_seconds: t0.elapsed().as_secs_f64(),
            }],
            cross_edges: 0,
            n_components: 0,
            execution: Execution::Sequential,
        });
    }

    // Partition on the same load signals the optimizers use: estimated
    // per-item refresh rates, and per-query size as a recompute proxy.
    let query_items: Vec<Vec<u32>> = cfg
        .queries
        .iter()
        .map(|q| q.items().iter().map(|i| i.0).collect())
        .collect();
    let item_load: Vec<f64> = cfg
        .rate_estimator
        .estimate_all(&cfg.traces)
        .into_iter()
        .map(|r| r.abs().max(1e-9))
        .collect();
    let query_load = query_load_for(cfg, &query_items);
    let plan = partition_with_slack(
        &PartitionInput {
            query_items: &query_items,
            n_items,
            item_load: &item_load,
            query_load: &query_load,
        },
        k,
        split_slack_for(cfg),
    );
    let execution = match exec {
        // A split component needs live peers on both sides of its
        // barrier; sequential execution would deadlock on the first
        // watermark wait.
        Execution::Sequential if !plan.is_clean() => Execution::Threaded,
        e => e,
    };

    // Membership: home items per shard, then replicas from cross edges.
    let mut shard_queries: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (qi, &s) in plan.query_shard.iter().enumerate() {
        shard_queries[s as usize].push(qi as u32);
    }
    let mut shard_items: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, &s) in plan.item_home.iter().enumerate() {
        shard_items[s as usize].push(i as u32);
    }
    for e in &plan.cross_edges {
        shard_items[e.remote as usize].push(e.item);
    }
    for items in &mut shard_items {
        items.sort_unstable();
        items.dedup();
    }

    // Rings: one SPSC pair per direction of every home↔remote relation.
    let mut directed: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in &plan.cross_edges {
        directed.insert((e.home, e.remote));
        directed.insert((e.remote, e.home));
    }
    let mut producers = std::collections::BTreeMap::new();
    let mut consumers = std::collections::BTreeMap::new();
    for &(from, to) in &directed {
        let (tx, rx) = ring(RING_CAPACITY);
        producers.insert((from, to), tx);
        consumers.insert((from, to), rx);
    }

    // Project each shard's configuration into its dense local id space
    // and assemble its context. `local_of` is a reused scratch table.
    let mut local_of = vec![u32::MAX; n_items];
    let mut shard_cfgs: Vec<Option<SimConfig>> = Vec::with_capacity(k);
    let mut shard_ctxs: Vec<Option<ShardCtx>> = Vec::with_capacity(k);
    let subscribers = plan.subscribers();
    for s in 0..k {
        let items = &shard_items[s];
        if items.is_empty() {
            // Nothing to simulate: any queries here are constants
            // (itemless), which never refresh, recompute, or violate.
            shard_cfgs.push(None);
            shard_ctxs.push(None);
            continue;
        }
        for (li, &g) in items.iter().enumerate() {
            local_of[g as usize] = li as u32;
        }
        let queries: Vec<_> = shard_queries[s]
            .iter()
            .map(|&qi| cfg.queries[qi as usize].map_items(|i| ItemId(local_of[i.index()])))
            .collect();
        let mut sc = cfg.clone();
        sc.traces = cfg.traces.subset(items);
        sc.queries = queries;
        sc.shards = 1;
        // Recompute fan-out workers divide across shard threads so a
        // partitioned run doesn't oversubscribe the machine.
        sc.threads = (cfg.threads / k).max(1);
        // The audit budget divides too: K shards each shadow-evaluating
        // 1/K of the sample keep the global audit cost constant.
        sc.audit = cfg.audit.as_ref().map(|a| a.per_shard(k));
        sc.audit_fault = cfg.audit_fault.and_then(|f| {
            shard_queries[s]
                .binary_search(&(f.query as u32))
                .ok()
                .map(|lqi| crate::audit::AuditFault { query: lqi, ..f })
        });

        let outbound_dests: Vec<u32> = directed
            .iter()
            .filter(|&&(from, _)| from == s as u32)
            .map(|&(_, to)| to)
            .collect();
        let inbound_srcs: Vec<u32> = directed
            .iter()
            .filter(|&&(_, to)| to == s as u32)
            .map(|&(from, _)| from)
            .collect();
        let ring_index = |dest: u32| -> usize {
            outbound_dests
                .binary_search(&dest)
                .expect("ring to a shard without a link")
        };
        let n_local = items.len();
        let mut exports: Vec<Vec<usize>> = vec![Vec::new(); n_local];
        for (item, remotes) in &subscribers {
            if plan.item_home[*item as usize] == s as u32 {
                let li = local_of[*item as usize] as usize;
                exports[li] = remotes.iter().map(|&r| ring_index(r)).collect();
            }
        }
        let mut replica = vec![false; n_local];
        let mut home_ring = vec![None; n_local];
        for (li, &g) in items.iter().enumerate() {
            let home = plan.item_home[g as usize];
            if home != s as u32 {
                replica[li] = true;
                home_ring[li] = Some(ring_index(home));
            }
        }
        let outbound = outbound_dests
            .iter()
            .map(|&to| ShardLink {
                dest: to,
                tx: producers
                    .remove(&(s as u32, to))
                    .expect("producer created for every directed pair"),
            })
            .collect();
        let inbound = inbound_srcs
            .iter()
            .map(|&from| ShardInlet {
                src: from,
                rx: consumers
                    .remove(&(from, s as u32))
                    .expect("consumer created for every directed pair"),
                held: std::collections::VecDeque::new(),
            })
            .collect();
        shard_ctxs.push(Some(ShardCtx {
            shard: s as u32,
            n_global_items: n_items,
            item_gid: items.clone(),
            query_gid: shard_queries[s].clone(),
            replica,
            exports,
            home_ring,
            outbound,
            inbound,
            remote_dab_min: vec![Vec::new(); n_local],
        }));
        shard_cfgs.push(Some(sc));
        for &g in items {
            local_of[g as usize] = u32::MAX;
        }
    }

    // Construct every engine on this thread *before* any shard runs: a
    // solver failure here returns cleanly, whereas a failure after
    // peers started would strand them at a ring barrier.
    let mut engines: Vec<(usize, Engine<'_>)> = Vec::new();
    for (s, (sc, ctx)) in shard_cfgs.iter().zip(shard_ctxs.iter_mut()).enumerate() {
        if let (Some(sc), Some(ctx)) = (sc, ctx.take()) {
            engines.push((s, Engine::new_sharded(sc, obs.clone(), ctx)?));
        }
    }

    let runs: Vec<(usize, Result<SimMetrics, SimError>, f64)> = match execution {
        Execution::Threaded => std::thread::scope(|scope| {
            let handles: Vec<_> = engines
                .into_iter()
                .map(|(s, engine)| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let result = engine.run();
                        (s, result, t0.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        }),
        Execution::Sequential => engines
            .into_iter()
            .map(|(s, engine)| {
                let t0 = Instant::now();
                let result = engine.run();
                (s, result, t0.elapsed().as_secs_f64())
            })
            .collect(),
    };

    // Deterministic merge, in shard order (the vec already is): scalars
    // sum; fidelity_samples is a max (every shard samples the same
    // ticks); per-query/per-item vectors scatter through the gid maps.
    let mut merged = SimMetrics::with_items(n_queries, n_items);
    let mut busy = vec![0.0f64; k];
    for (s, result, secs) in runs {
        busy[s] = secs;
        let m = result?;
        merged.refreshes += m.refreshes;
        merged.recomputations += m.recomputations;
        merged.dab_change_messages += m.dab_change_messages;
        merged.user_notifications += m.user_notifications;
        merged.ingest_batches += m.ingest_batches;
        merged.lost_messages += m.lost_messages;
        merged.solver_seconds += m.solver_seconds;
        merged.fidelity_samples = merged.fidelity_samples.max(m.fidelity_samples);
        for (lq, &gq) in shard_queries[s].iter().enumerate() {
            merged.per_query_violations[gq as usize] += m.per_query_violations[lq];
            merged.per_query_recomputations[gq as usize] += m.per_query_recomputations[lq];
        }
        for (li, &gi) in shard_items[s].iter().enumerate() {
            merged.per_item_refreshes[gi as usize] += m.per_item_refreshes[li];
            merged.per_item_recompute_triggers[gi as usize] += m.per_item_recompute_triggers[li];
        }
    }
    let shards = (0..k)
        .map(|s| ShardStat {
            shard: s as u32,
            n_queries: shard_queries[s].len(),
            n_items: shard_items[s].len(),
            n_replicas: shard_items[s]
                .iter()
                .filter(|&&g| plan.item_home[g as usize] != s as u32)
                .count(),
            load: plan.shard_loads[s],
            busy_seconds: busy[s],
        })
        .collect();
    Ok(ShardReport {
        metrics: merged,
        shards,
        cross_edges: plan.cross_edges.len(),
        n_components: plan.n_components,
        execution,
    })
}

/// The partition a sharded run of `cfg` would use — exposed so tools
/// (e.g. `shardbench`) can report cleanliness and balance without
/// running the simulation.
pub fn plan_for(cfg: &SimConfig) -> PartitionPlan {
    let query_items: Vec<Vec<u32>> = cfg
        .queries
        .iter()
        .map(|q| q.items().iter().map(|i| i.0).collect())
        .collect();
    let item_load: Vec<f64> = cfg
        .rate_estimator
        .estimate_all(&cfg.traces)
        .into_iter()
        .map(|r| r.abs().max(1e-9))
        .collect();
    let query_load = query_load_for(cfg, &query_items);
    partition_with_slack(
        &PartitionInput {
            query_items: &query_items,
            n_items: cfg.traces.n_items(),
            item_load: &item_load,
            query_load: &query_load,
        },
        cfg.shards.max(1),
        split_slack_for(cfg),
    )
}

/// Split slack for this configuration. Only an *explicit*
/// [`pq_gp::KktMode::Sparse`] opts into the widened
/// [`pq_core::SPARSE_SPLIT_SLACK`] — larger units are then near-linear
/// to solve, so keeping components whole (no ring traffic) beats
/// balance. `Auto` keeps the dense default: the partitioner would have
/// to guess whether the resulting units clear the sparse backend's
/// size floor, and fixed-seed shard metrics must not shift under a
/// heuristic.
fn split_slack_for(cfg: &SimConfig) -> f64 {
    match cfg.gp.kkt {
        pq_gp::KktMode::Sparse => pq_core::SPARSE_SPLIT_SLACK,
        pq_gp::KktMode::Auto | pq_gp::KktMode::Dense => pq_core::DEFAULT_SPLIT_SLACK,
    }
}

/// Per-query recompute/eval cost proxy the partitioner packs by. Under
/// [`EvalMode::Shared`] each shard compiles one cross-query
/// [`pq_poly::SharedPlan`] over its partition, so a query's marginal
/// eval cost is dominated by the distinct monomials it *introduces* —
/// already-shared monomials only add a scatter subscription. The
/// per-query plans' proxy (item-set size) stays in place for the other
/// modes.
fn query_load_for(cfg: &SimConfig, query_items: &[Vec<u32>]) -> Vec<f64> {
    if matches!(cfg.eval, crate::engine::EvalMode::Shared { .. }) {
        pq_poly::shared_query_loads(cfg.queries.iter().map(|q| q.poly()))
    } else {
        query_items.iter().map(|items| items.len() as f64).collect()
    }
}
