//! A dissemination network of cooperating coordinators (Fig. 8(c)).
//!
//! The paper's §V-B.3 experiment runs PPQs over a content-dissemination
//! network built with the repeater framework of Shah et al. (TKDE'04,
//! reference \[6\]): sources feed a tree of coordinators, each serving a
//! share of the queries; a refresh travels down an edge only when it
//! exceeds the subtree's tightest filter need.
//!
//! This module implements a tick-synchronous tree simulator: values
//! propagate from the sources through a balanced binary tree of
//! coordinators, with per-edge filters equal to the receiving subtree's
//! minimum DAB need. Each coordinator independently recomputes the DABs of
//! its own queries when arriving values invalidate them, exactly as the
//! single-coordinator engine does. Per-hop delays are not modelled — the
//! experiment's metric is message and recomputation *counts*, which are
//! delay-independent in the push model.

use std::sync::Arc;
use std::time::Instant;

use pq_core::{assign_query, AssignmentStrategy, PqHeuristic, QueryAssignment, SolveContext};
use pq_ddm::{DataDynamicsModel, RateEstimator, TraceSet};
use pq_gp::SolverOptions;
use pq_obs::{names, Counter, EventKind, Obs};
use pq_poly::PolynomialQuery;

use crate::engine::SimError;

/// Configuration of a dissemination-network run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Per-item data traces.
    pub traces: TraceSet,
    /// Queries served by each coordinator (`queries[c]` lives on node `c`).
    pub queries_per_coordinator: Vec<Vec<PolynomialQuery>>,
    /// Per-query assignment policy.
    pub strategy: AssignmentStrategy,
    /// Heuristic for mixed-sign queries.
    pub heuristic: PqHeuristic,
    /// Assumed data-dynamics model.
    pub ddm: DataDynamicsModel,
    /// Rate estimator.
    pub rate_estimator: RateEstimator,
    /// GP solver options.
    pub gp: SolverOptions,
}

impl NetworkConfig {
    /// Splits `queries` round-robin over `n_coordinators` nodes with
    /// default knobs (Dual-DAB callers set `strategy`).
    pub fn round_robin(
        traces: TraceSet,
        queries: Vec<PolynomialQuery>,
        n_coordinators: usize,
        strategy: AssignmentStrategy,
    ) -> Self {
        assert!(n_coordinators > 0);
        let mut per = vec![Vec::new(); n_coordinators];
        for (i, q) in queries.into_iter().enumerate() {
            per[i % n_coordinators].push(q);
        }
        NetworkConfig {
            traces,
            queries_per_coordinator: per,
            strategy,
            heuristic: PqHeuristic::DifferentSum,
            ddm: DataDynamicsModel::Monotonic,
            rate_estimator: RateEstimator::SampledAverage { interval_ticks: 60 },
            gp: SolverOptions::default(),
        }
    }
}

/// Counters from a network run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkMetrics {
    /// Refresh messages received, per coordinator.
    pub refreshes_per_node: Vec<u64>,
    /// DAB recomputations, per coordinator.
    pub recomputations_per_node: Vec<u64>,
    /// DAB-change messages sent to sources / parents.
    pub dab_change_messages: u64,
    /// Wall-clock seconds in DAB solvers.
    pub solver_seconds: f64,
}

impl NetworkMetrics {
    /// Total refreshes across the network.
    pub fn refreshes(&self) -> u64 {
        self.refreshes_per_node.iter().sum()
    }

    /// Total recomputations across the network.
    pub fn recomputations(&self) -> u64 {
        self.recomputations_per_node.iter().sum()
    }

    /// Total cost in messages (metric 4).
    pub fn total_cost(&self, mu: f64) -> f64 {
        self.refreshes() as f64 + mu * self.recomputations() as f64
    }
}

struct Node {
    /// Own queries and their assignments.
    queries: Vec<PolynomialQuery>,
    assignments: Vec<QueryAssignment>,
    /// item -> own-query indices.
    item_queries: Vec<Vec<u32>>,
}

/// Flat structure-of-arrays per-(node, item) state: one shared
/// allocation per column (row-major by node, stride `n_items`) instead
/// of three Vecs per node, so the delivery recursion and the bottom-up
/// need sweeps walk contiguous rows.
struct NodeState {
    n_items: usize,
    /// Cached values at each coordinator.
    values: Vec<f64>,
    /// Value last forwarded to each node by its parent, per item.
    last_delivered: Vec<f64>,
    /// Each subtree's tightest filter need per item (min over the node's
    /// own queries and all descendants).
    subtree_need: Vec<f64>,
}

impl NodeState {
    fn new(n_nodes: usize, initial: &[f64]) -> Self {
        let n_items = initial.len();
        let mut values = Vec::with_capacity(n_nodes * n_items);
        for _ in 0..n_nodes {
            values.extend_from_slice(initial);
        }
        NodeState {
            n_items,
            last_delivered: values.clone(),
            subtree_need: vec![f64::INFINITY; n_nodes * n_items],
            values,
        }
    }

    #[inline]
    fn values(&self, c: usize) -> &[f64] {
        &self.values[c * self.n_items..(c + 1) * self.n_items]
    }

    #[inline]
    fn set_value(&mut self, c: usize, item: usize, v: f64) {
        self.values[c * self.n_items + item] = v;
    }

    #[inline]
    fn last_delivered(&self, c: usize, item: usize) -> f64 {
        self.last_delivered[c * self.n_items + item]
    }

    #[inline]
    fn set_last_delivered(&mut self, c: usize, item: usize, v: f64) {
        self.last_delivered[c * self.n_items + item] = v;
    }

    #[inline]
    fn need(&self, c: usize, item: usize) -> f64 {
        self.subtree_need[c * self.n_items + item]
    }

    #[inline]
    fn set_need(&mut self, c: usize, item: usize, v: f64) {
        self.subtree_need[c * self.n_items + item] = v;
    }

    fn copy_needs(&mut self, c: usize, need: &[f64]) {
        self.subtree_need[c * self.n_items..(c + 1) * self.n_items].copy_from_slice(need);
    }
}

/// Pre-created telemetry handles for the network run: the delivery
/// recursion touches only relaxed atomic adds, mirroring the
/// single-coordinator engine's labeled-counter pattern.
struct NetObs {
    obs: Obs,
    c_refreshes: Arc<Counter>,
    c_recomputations: Arc<Counter>,
    c_dab_changes: Arc<Counter>,
    /// Per-item `sim.refresh` attribution (one arrival per receiving
    /// node counts once, as in [`NetworkMetrics::refreshes`]).
    lc_refresh_by_item: Vec<Arc<Counter>>,
    /// Per-query `dab.recompute` attribution; network queries are
    /// labeled `c<node>.q<local>` since ids are coordinator-local.
    lc_recompute_by_query: Vec<Vec<Arc<Counter>>>,
}

impl NetObs {
    fn new(obs: &Obs, cfg: &NetworkConfig, n_items: usize) -> Self {
        NetObs {
            obs: obs.clone(),
            c_refreshes: obs.counter(names::SIM_REFRESH),
            c_recomputations: obs.counter(names::DAB_RECOMPUTE),
            c_dab_changes: obs.counter(names::SIM_DAB_CHANGE),
            lc_refresh_by_item: (0..n_items)
                .map(|i| obs.labeled_counter(names::SIM_REFRESH, names::LABEL_ITEM, &i.to_string()))
                .collect(),
            lc_recompute_by_query: cfg
                .queries_per_coordinator
                .iter()
                .enumerate()
                .map(|(c, queries)| {
                    (0..queries.len())
                        .map(|qi| {
                            obs.labeled_counter(
                                names::DAB_RECOMPUTE,
                                names::LABEL_QUERY,
                                &format!("c{c}.q{qi}"),
                            )
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

/// Runs the dissemination-network simulation without telemetry.
pub fn run_network(cfg: &NetworkConfig) -> Result<NetworkMetrics, SimError> {
    run_network_observed(cfg, &Obs::null())
}

/// Runs the dissemination-network simulation with a caller-supplied
/// telemetry handle: `sim.refresh`/`dab.recompute` events and counters
/// (with per-item / per-query labels) and GP-solver spans are reported
/// through it, matching what [`crate::run_observed`] records for the
/// single-coordinator engine.
pub fn run_network_observed(cfg: &NetworkConfig, obs: &Obs) -> Result<NetworkMetrics, SimError> {
    let n_items = cfg.traces.n_items();
    let n_nodes = cfg.queries_per_coordinator.len();
    let rates = cfg.rate_estimator.estimate_all(&cfg.traces);
    let initial = cfg.traces.initial_values();
    let net_obs = NetObs::new(obs, cfg, n_items);

    let mut metrics = NetworkMetrics {
        refreshes_per_node: vec![0; n_nodes],
        recomputations_per_node: vec![0; n_nodes],
        ..Default::default()
    };

    // Build nodes with initial assignments.
    let mut nodes = Vec::with_capacity(n_nodes);
    for (c, queries) in cfg.queries_per_coordinator.iter().enumerate() {
        for q in queries {
            if let Some(mx) = q.poly().max_item() {
                if mx.index() >= n_items {
                    return Err(SimError::MissingTrace { item: mx.index() });
                }
            }
        }
        let mut gp = cfg.gp.clone();
        gp.obs = obs.clone();
        let ctx = SolveContext {
            values: &initial,
            rates: &rates,
            ddm: cfg.ddm,
            gp,
        };
        let started = Instant::now();
        let assignments = queries
            .iter()
            .map(|q| {
                assign_query(q, &ctx, cfg.strategy, cfg.heuristic)
                    .map_err(|source| SimError::Dab { query: c, source })
            })
            .collect::<Result<Vec<_>, _>>()?;
        metrics.solver_seconds += started.elapsed().as_secs_f64();
        let mut item_queries = vec![Vec::new(); n_items];
        for (qi, q) in queries.iter().enumerate() {
            for item in q.items() {
                item_queries[item.index()].push(qi as u32);
            }
        }
        nodes.push(Node {
            queries: queries.clone(),
            assignments,
            item_queries,
        });
    }
    let mut state = NodeState::new(n_nodes, &initial);
    refresh_subtree_needs(&nodes, &mut state);

    // Tick loop: values propagate root-down through per-edge filters.
    let n_ticks = cfg.traces.n_ticks();
    let mut source_pushed = initial.clone();
    for tick in 1..n_ticks {
        let values = cfg.traces.values_at(tick);
        for item in 0..n_items {
            let v = values[item];
            // Source -> root edge uses the whole network's need.
            let need = state.need(0, item);
            if need.is_finite() && (v - source_pushed[item]).abs() > need {
                source_pushed[item] = v;
                deliver(
                    &mut nodes,
                    &mut state,
                    0,
                    item,
                    v,
                    cfg,
                    &rates,
                    &mut metrics,
                    &net_obs,
                )?;
            }
        }
    }
    Ok(metrics)
}

/// Delivers a refreshed value to node `c`, recomputing stale queries and
/// forwarding down edges whose child-subtree filters it exceeds.
#[allow(clippy::too_many_arguments)]
fn deliver(
    nodes: &mut [Node],
    state: &mut NodeState,
    c: usize,
    item: usize,
    value: f64,
    cfg: &NetworkConfig,
    rates: &[f64],
    metrics: &mut NetworkMetrics,
    net_obs: &NetObs,
) -> Result<(), SimError> {
    metrics.refreshes_per_node[c] += 1;
    net_obs.c_refreshes.inc();
    net_obs.lc_refresh_by_item[item].inc();
    net_obs
        .obs
        .emit_with(names::SIM_REFRESH, EventKind::Count, |e| {
            e.with("node", c).with("item", item).with("value", value)
        });
    state.set_value(c, item, value);
    state.set_last_delivered(c, item, value);

    // Recompute own stale queries.
    let stale: Vec<u32> = nodes[c].item_queries[item]
        .iter()
        .copied()
        .filter(|&qi| !nodes[c].assignments[qi as usize].is_valid_at(state.values(c)))
        .collect();
    for qi in stale {
        let qi = qi as usize;
        let mut gp = cfg.gp.clone();
        gp.obs = net_obs.obs.clone();
        let ctx = SolveContext {
            values: state.values(c),
            rates,
            ddm: cfg.ddm,
            gp,
        };
        let started = Instant::now();
        let na = assign_query(&nodes[c].queries[qi], &ctx, cfg.strategy, cfg.heuristic)
            .map_err(|source| SimError::Dab { query: c, source })?;
        metrics.solver_seconds += started.elapsed().as_secs_f64();
        metrics.recomputations_per_node[c] += 1;
        net_obs.c_recomputations.inc();
        net_obs.lc_recompute_by_query[c][qi].inc();
        net_obs
            .obs
            .emit_with(names::DAB_RECOMPUTE, EventKind::Count, |e| {
                e.with("node", c)
                    .with("query", qi)
                    .with("item", item)
                    .with("reason", "validity")
            });
        let changed_items: Vec<usize> = na.primary.keys().map(|i| i.index()).collect();
        nodes[c].assignments[qi] = na;
        // Changed needs ripple up to the source as DAB-change messages
        // (one per edge on the path whose need changed).
        metrics.dab_change_messages += changed_items.len() as u64;
        net_obs.c_dab_changes.add(changed_items.len() as u64);
        update_needs_for_items(nodes, state, &changed_items);
    }

    // Forward down the binary tree.
    for child in [2 * c + 1, 2 * c + 2] {
        if child >= nodes.len() {
            continue;
        }
        let need = state.need(child, item);
        if need.is_finite() && (value - state.last_delivered(child, item)).abs() > need {
            deliver(
                nodes, state, child, item, value, cfg, rates, metrics, net_obs,
            )?;
        }
    }
    Ok(())
}

/// Recomputes `subtree_need` bottom-up for every node and item.
fn refresh_subtree_needs(nodes: &[Node], state: &mut NodeState) {
    let mut need = vec![f64::INFINITY; state.n_items];
    for c in (0..nodes.len()).rev() {
        need.fill(f64::INFINITY);
        for qa in &nodes[c].assignments {
            for (&it, &b) in &qa.primary {
                let d = &mut need[it.index()];
                *d = d.min(b);
            }
        }
        for child in [2 * c + 1, 2 * c + 2] {
            if child < nodes.len() {
                for (i, n) in need.iter_mut().enumerate() {
                    *n = n.min(state.need(child, i));
                }
            }
        }
        state.copy_needs(c, &need);
    }
}

/// Cheap partial update after one query's DABs changed: only the queries
/// referencing each item (via the node's prebuilt `item_queries` index)
/// can contribute to its need, so the scan skips the rest of the node's
/// assignments entirely.
fn update_needs_for_items(nodes: &[Node], state: &mut NodeState, items: &[usize]) {
    for c in (0..nodes.len()).rev() {
        for &i in items {
            let mut need = f64::INFINITY;
            for &qi in &nodes[c].item_queries[i] {
                if let Some(b) =
                    nodes[c].assignments[qi as usize].primary_dab(pq_poly::ItemId(i as u32))
                {
                    need = need.min(b);
                }
            }
            for child in [2 * c + 1, 2 * c + 2] {
                if child < nodes.len() {
                    need = need.min(state.need(child, i));
                }
            }
            state.set_need(c, i, need);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_ddm::Trace;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn traces() -> TraceSet {
        TraceSet::new(vec![
            Trace::sinusoid(20.0, 3.0, 400.0, 800),
            Trace::sinusoid(10.0, 2.0, 300.0, 800),
            Trace::sinusoid(15.0, 2.5, 350.0, 800),
        ])
    }

    fn queries(n: usize) -> Vec<PolynomialQuery> {
        (0..n)
            .map(|k| {
                let (a, b) = ([(0, 1), (1, 2), (0, 2)])[k % 3];
                PolynomialQuery::portfolio([(1.0 + k as f64, x(a), x(b))], 20.0 + k as f64).unwrap()
            })
            .collect()
    }

    #[test]
    fn network_counts_refreshes_on_every_active_node() {
        let cfg = NetworkConfig::round_robin(
            traces(),
            queries(6),
            3,
            AssignmentStrategy::DualDab { mu: 5.0 },
        );
        let m = run_network(&cfg).unwrap();
        assert_eq!(m.refreshes_per_node.len(), 3);
        assert!(m.refreshes() > 0);
        // Root sees at least as many refreshes as any descendant (filters
        // only get looser going down... tighter going up).
        assert!(m.refreshes_per_node[0] >= m.refreshes_per_node[1]);
        assert!(m.refreshes_per_node[0] >= m.refreshes_per_node[2]);
    }

    #[test]
    fn dual_dab_beats_optimal_refresh_on_network_recomputations() {
        let base =
            NetworkConfig::round_robin(traces(), queries(6), 3, AssignmentStrategy::OptimalRefresh);
        let dual = NetworkConfig::round_robin(
            traces(),
            queries(6),
            3,
            AssignmentStrategy::DualDab { mu: 5.0 },
        );
        let mb = run_network(&base).unwrap();
        let md = run_network(&dual).unwrap();
        assert!(
            md.recomputations() < mb.recomputations(),
            "dual {} vs optimal-refresh {}",
            md.recomputations(),
            mb.recomputations()
        );
    }

    #[test]
    fn single_node_network_matches_structure() {
        let cfg = NetworkConfig::round_robin(
            traces(),
            queries(2),
            1,
            AssignmentStrategy::DualDab { mu: 5.0 },
        );
        let m = run_network(&cfg).unwrap();
        assert_eq!(m.refreshes_per_node.len(), 1);
        assert!(m.refreshes() > 0);
    }

    #[test]
    fn observed_network_mirrors_metrics_into_registry() {
        let cfg = NetworkConfig::round_robin(
            traces(),
            queries(6),
            3,
            AssignmentStrategy::DualDab { mu: 5.0 },
        );
        let obs = Obs::null();
        let m = run_network_observed(&cfg, &obs).unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counters[names::SIM_REFRESH], m.refreshes());
        assert_eq!(snap.counters[names::DAB_RECOMPUTE], m.recomputations());
        assert_eq!(snap.counters[names::SIM_DAB_CHANGE], m.dab_change_messages);
        // Attribution families cover every item and node-local query, and
        // their sums equal the plain totals.
        let refresh_fam = &snap.labeled[names::SIM_REFRESH];
        assert_eq!(refresh_fam.key, names::LABEL_ITEM);
        assert_eq!(refresh_fam.total(), m.refreshes());
        let rec_fam = &snap.labeled[names::DAB_RECOMPUTE];
        assert_eq!(rec_fam.key, names::LABEL_QUERY);
        assert_eq!(rec_fam.total(), m.recomputations());
        assert!(rec_fam.values.contains_key("c0.q0"));
        // GP solves ran under the same registry.
        assert!(snap.histograms["gp.solve_ns"].count > 0);
    }

    #[test]
    fn missing_trace_is_reported() {
        let cfg = NetworkConfig::round_robin(
            traces(),
            vec![PolynomialQuery::portfolio([(1.0, x(0), x(9))], 1.0).unwrap()],
            2,
            AssignmentStrategy::DualDab { mu: 5.0 },
        );
        assert!(matches!(
            run_network(&cfg),
            Err(SimError::MissingTrace { item: 9 })
        ));
    }
}
