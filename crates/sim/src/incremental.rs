//! Delta-maintained query values (the DBToaster idea, §PAPERS.md).
//!
//! The coordinator needs every query's value at two views of the data:
//! the **source view** (true values, which move every tick) and the
//! **coordinator view** (cached values, which move only when a refresh
//! arrives). Re-evaluating `P(x)` from scratch at both views for every
//! fidelity sample costs `O(queries × terms)` per tick even when almost
//! nothing changed. A [`DeltaView`] instead keeps one maintained value
//! per query and folds in `ΔP` from [`pq_poly::EvalPlan::delta_eval`]
//! whenever an item moves — `O(terms containing the item)` per change,
//! and `O(1)` per query per sample.
//!
//! Floating-point drift: each applied delta adds one rounding of the
//! running sum (the per-term old/new contributions themselves round
//! exactly as a full evaluation would). The drift is therefore bounded
//! by roughly `n_applied × ulp(|P|)` since the last [`DeltaView::rebase`],
//! which recomputes every value with the compiled full evaluation
//! (bit-identical to the naive [`pq_poly::Polynomial::eval`]). The
//! engine rebases every `rebase_every` ticks (see
//! [`crate::engine::EvalMode`]), keeping the maintained values well
//! inside the margins of any QAB comparison.

//! A [`SharedView`] is the same idea over a whole query book compiled
//! into one [`pq_poly::SharedPlan`]: each distinct monomial's delta is
//! computed once and scattered to every subscribing query through the
//! plan's CSR term → query index, so the per-change cost is
//! `O(distinct terms containing the item + scatter fan-out)` instead of
//! `O(Σ per-query affected terms)`. Its drift bound and rebase story
//! are identical to [`DeltaView`]'s, with the shared plan's own
//! deterministic full evaluation as the rebase anchor (see
//! [`pq_poly::SharedPlan::full_eval_into`]).

use pq_poly::{EvalPlan, ItemId, SharedPlan};

/// Per-query values of one view, maintained incrementally.
#[derive(Debug, Clone)]
pub struct DeltaView {
    qv: Vec<f64>,
    /// Item-delta applications folded in since the last rebase (drives
    /// the `eval.delta` counter and the drift bound).
    deltas_since_rebase: u64,
}

impl DeltaView {
    /// Builds a view over `plans`, fully evaluating each at `values`.
    pub fn new(plans: &[EvalPlan], values: &[f64]) -> Self {
        DeltaView {
            qv: plans.iter().map(|p| p.eval(values)).collect(),
            deltas_since_rebase: 0,
        }
    }

    /// The maintained value of query `qi`.
    #[inline]
    pub fn value(&self, qi: usize) -> f64 {
        self.qv[qi]
    }

    /// All maintained values, indexed by query.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.qv
    }

    /// Item-delta applications folded in since the last rebase.
    #[inline]
    pub fn deltas_since_rebase(&self) -> u64 {
        self.deltas_since_rebase
    }

    /// Folds the move `old -> new` of `item` into every query in
    /// `queries` (the prebuilt item → query index; each entry indexes
    /// both `plans` and this view). `values` is the view's value array;
    /// its `item` slot may hold either the old or the new value — the
    /// delta uses the explicit `old`/`new` arguments.
    ///
    /// Returns the number of query values updated.
    #[inline]
    pub fn apply(
        &mut self,
        plans: &[EvalPlan],
        queries: &[u32],
        values: &[f64],
        item: usize,
        old: f64,
        new: f64,
    ) -> u64 {
        if old == new {
            return 0;
        }
        let id = ItemId(item as u32);
        for &qi in queries {
            let qi = qi as usize;
            self.qv[qi] += plans[qi].delta_eval(values, id, old, new);
        }
        self.deltas_since_rebase += queries.len() as u64;
        queries.len() as u64
    }

    /// Folds a batch of moves `(item, new_value)` into the view in
    /// order, writing each new value into `values` as it is applied so
    /// later moves in the batch see earlier ones — bit-identical to the
    /// equivalent sequence of [`DeltaView::apply`] calls followed by
    /// per-item stores. `item_queries` is the full item → query index
    /// (one entry per item). Returns the total number of query values
    /// updated, matching the sum of the per-move `apply` returns.
    pub fn apply_batch(
        &mut self,
        plans: &[EvalPlan],
        item_queries: &[Vec<u32>],
        values: &mut [f64],
        moves: &[(usize, f64)],
    ) -> u64 {
        let mut updated = 0;
        for &(item, new) in moves {
            let old = values[item];
            updated += self.apply(plans, &item_queries[item], values, item, old, new);
            values[item] = new;
        }
        updated
    }

    /// Fault injection: perturbs the maintained value of query `qi` by
    /// `amount` without touching the underlying item values. The view is
    /// now wrong by construction — exactly the failure mode (a missed or
    /// double-applied delta) the fidelity auditor ([`crate::audit`]) exists
    /// to catch, which is also its only intended use.
    pub fn corrupt(&mut self, qi: usize, amount: f64) {
        self.qv[qi] += amount;
    }

    /// Recomputes every value with a full compiled evaluation at
    /// `values`, discarding accumulated rounding drift.
    pub fn rebase(&mut self, plans: &[EvalPlan], values: &[f64]) {
        for (qv, plan) in self.qv.iter_mut().zip(plans) {
            *qv = plan.eval(values);
        }
        self.deltas_since_rebase = 0;
    }
}

/// Per-query values of one view, maintained incrementally through a
/// cross-query [`SharedPlan`] (`EvalMode::Shared`). The API mirrors
/// [`DeltaView`], but no item → query index is needed — the shared plan
/// carries its own CSR item → term dispatch and term → query scatter.
#[derive(Debug, Clone)]
pub struct SharedView {
    qv: Vec<f64>,
    /// Monomial-evaluation scratch reused across rebases/seeds.
    scratch: Vec<f64>,
    /// Query-value scatter updates folded in since the last rebase
    /// (drives the `eval.scatter_fanout` counter and the drift bound).
    deltas_since_rebase: u64,
}

impl SharedView {
    /// Builds a view over `plan`, fully evaluating the book at `values`.
    pub fn new(plan: &SharedPlan, values: &[f64]) -> Self {
        let mut view = SharedView {
            qv: Vec::new(),
            scratch: Vec::new(),
            deltas_since_rebase: 0,
        };
        plan.full_eval_into(values, &mut view.scratch, &mut view.qv);
        view
    }

    /// The maintained value of query `qi`.
    #[inline]
    pub fn value(&self, qi: usize) -> f64 {
        self.qv[qi]
    }

    /// All maintained values, indexed by query slot.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.qv
    }

    /// Scatter updates folded in since the last rebase.
    #[inline]
    pub fn deltas_since_rebase(&self) -> u64 {
        self.deltas_since_rebase
    }

    /// Folds the move `old -> new` of `item` into every subscribing
    /// query through the shared plan's scatter. `values` is the view's
    /// value array; its `item` slot may hold either the old or the new
    /// value — the delta uses the explicit `old`/`new` arguments.
    ///
    /// Returns the scatter fan-out (query values updated).
    #[inline]
    pub fn apply(
        &mut self,
        plan: &SharedPlan,
        values: &[f64],
        item: usize,
        old: f64,
        new: f64,
    ) -> u64 {
        let fanout = plan.delta_scatter(values, ItemId(item as u32), old, new, &mut self.qv);
        self.deltas_since_rebase += fanout;
        fanout
    }

    /// Folds a batch of moves `(item, new_value)` into the view in
    /// order, writing each new value into `values` as it is applied so
    /// later moves in the batch see earlier ones — bit-identical to the
    /// equivalent sequence of [`SharedView::apply`] calls followed by
    /// per-item stores. Returns the total scatter fan-out.
    pub fn apply_batch(
        &mut self,
        plan: &SharedPlan,
        values: &mut [f64],
        moves: &[(usize, f64)],
    ) -> u64 {
        let mut updated = 0;
        for &(item, new) in moves {
            let old = values[item];
            updated += self.apply(plan, values, item, old, new);
            values[item] = new;
        }
        updated
    }

    /// Fault injection: perturbs the maintained value of query `qi` by
    /// `amount` without touching the underlying item values (see
    /// [`DeltaView::corrupt`]; the fidelity auditor's test hook).
    pub fn corrupt(&mut self, qi: usize, amount: f64) {
        self.qv[qi] += amount;
    }

    /// Recomputes every value with the shared plan's full evaluation at
    /// `values`, discarding accumulated rounding drift.
    pub fn rebase(&mut self, plan: &SharedPlan, values: &[f64]) {
        plan.full_eval_into(values, &mut self.scratch, &mut self.qv);
        self.deltas_since_rebase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_poly::{PTerm, Polynomial};

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn plans() -> Vec<EvalPlan> {
        // q0 = 2 x0 x1, q1 = x1^2 - 3 x2, q2 = 4 (no items).
        [
            Polynomial::term(PTerm::new(2.0, [(x(0), 1), (x(1), 1)]).unwrap()),
            Polynomial::from_terms([
                PTerm::new(1.0, [(x(1), 2)]).unwrap(),
                PTerm::new(-3.0, [(x(2), 1)]).unwrap(),
            ]),
            Polynomial::term(PTerm::constant(4.0).unwrap()),
        ]
        .iter()
        .map(EvalPlan::compile)
        .collect()
    }

    fn item_queries(plans: &[EvalPlan], n_items: usize) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); n_items];
        for (qi, p) in plans.iter().enumerate() {
            for (item, iq) in idx.iter_mut().enumerate() {
                if !p.terms_for(ItemId(item as u32)).is_empty() {
                    iq.push(qi as u32);
                }
            }
        }
        idx
    }

    #[test]
    fn apply_tracks_full_reevaluation() {
        let plans = plans();
        let idx = item_queries(&plans, 3);
        let mut values = vec![3.0, 4.0, 5.0];
        let mut view = DeltaView::new(&plans, &values);
        assert_eq!(view.values(), &[24.0, 1.0, 4.0]);

        for (item, new) in [(0usize, 3.5), (1, -2.0), (2, 0.25), (1, 10.0)] {
            let old = values[item];
            view.apply(&plans, &idx[item], &values, item, old, new);
            values[item] = new;
            for (qi, plan) in plans.iter().enumerate() {
                let full = plan.eval(&values);
                assert!(
                    (view.value(qi) - full).abs() <= 1e-9 * (1.0 + full.abs()),
                    "q{qi}: {} vs {full}",
                    view.value(qi)
                );
            }
        }
        assert!(view.deltas_since_rebase() > 0);
    }

    #[test]
    fn noop_moves_cost_nothing() {
        let plans = plans();
        let idx = item_queries(&plans, 3);
        let values = vec![3.0, 4.0, 5.0];
        let mut view = DeltaView::new(&plans, &values);
        assert_eq!(view.apply(&plans, &idx[0], &values, 0, 3.0, 3.0), 0);
        assert_eq!(view.deltas_since_rebase(), 0);
    }

    #[test]
    fn apply_batch_matches_sequential_applies() {
        let plans = plans();
        let idx = item_queries(&plans, 3);
        let moves = [(0usize, 3.5), (1, -2.0), (2, 0.25), (1, 10.0)];

        let mut seq_values = vec![3.0, 4.0, 5.0];
        let mut seq_view = DeltaView::new(&plans, &seq_values);
        let mut seq_updated = 0;
        for &(item, new) in &moves {
            let old = seq_values[item];
            seq_updated += seq_view.apply(&plans, &idx[item], &seq_values, item, old, new);
            seq_values[item] = new;
        }

        let mut batch_values = vec![3.0, 4.0, 5.0];
        let mut batch_view = DeltaView::new(&plans, &batch_values);
        let batch_updated = batch_view.apply_batch(&plans, &idx, &mut batch_values, &moves);

        assert_eq!(batch_updated, seq_updated);
        assert_eq!(batch_values, seq_values);
        assert_eq!(batch_view.values(), seq_view.values());
        assert_eq!(
            batch_view.deltas_since_rebase(),
            seq_view.deltas_since_rebase()
        );
    }

    #[test]
    fn rebase_restores_bit_exact_values() {
        let plans = plans();
        let idx = item_queries(&plans, 3);
        let mut values = vec![3.0, 4.0, 5.0];
        let mut view = DeltaView::new(&plans, &values);
        // A long drifting walk...
        for k in 0..1000 {
            let item = k % 3;
            let old = values[item];
            let new = old + 0.001 * (k as f64 % 7.0 - 3.0);
            view.apply(&plans, &idx[item], &values, item, old, new);
            values[item] = new;
        }
        view.rebase(&plans, &values);
        assert_eq!(view.deltas_since_rebase(), 0);
        for (qi, plan) in plans.iter().enumerate() {
            assert_eq!(view.value(qi), plan.eval(&values), "q{qi} after rebase");
        }
    }

    fn book() -> Vec<Polynomial> {
        // Overlapping monomials: x0*x1 appears in q0 and q1.
        vec![
            Polynomial::from_terms([
                PTerm::new(2.0, [(x(0), 1), (x(1), 1)]).unwrap(),
                PTerm::new(1.0, [(x(2), 1)]).unwrap(),
            ]),
            Polynomial::from_terms([
                PTerm::new(-3.0, [(x(0), 1), (x(1), 1)]).unwrap(),
                PTerm::new(1.0, [(x(1), 2)]).unwrap(),
            ]),
            Polynomial::term(PTerm::constant(4.0).unwrap()),
        ]
    }

    #[test]
    fn shared_view_tracks_full_reevaluation() {
        let book = book();
        let plan = SharedPlan::compile(&book);
        let mut values = vec![3.0, 4.0, 5.0];
        let mut view = SharedView::new(&plan, &values);
        assert_eq!(view.values(), &[29.0, -20.0, 4.0]);

        for (item, new) in [(0usize, 3.5), (1, -2.0), (2, 0.25), (1, 10.0)] {
            let old = values[item];
            view.apply(&plan, &values, item, old, new);
            values[item] = new;
            for (qi, poly) in book.iter().enumerate() {
                let full = poly.eval(&values);
                assert!(
                    (view.value(qi) - full).abs() <= 1e-9 * (1.0 + full.abs()),
                    "q{qi}: {} vs {full}",
                    view.value(qi)
                );
            }
        }
        assert!(view.deltas_since_rebase() > 0);
    }

    #[test]
    fn shared_apply_batch_matches_sequential_applies() {
        let book = book();
        let plan = SharedPlan::compile(&book);
        let moves = [(0usize, 3.5), (1, -2.0), (2, 0.25), (1, 10.0)];

        let mut seq_values = vec![3.0, 4.0, 5.0];
        let mut seq_view = SharedView::new(&plan, &seq_values);
        let mut seq_updated = 0;
        for &(item, new) in &moves {
            let old = seq_values[item];
            seq_updated += seq_view.apply(&plan, &seq_values, item, old, new);
            seq_values[item] = new;
        }

        let mut batch_values = vec![3.0, 4.0, 5.0];
        let mut batch_view = SharedView::new(&plan, &batch_values);
        let batch_updated = batch_view.apply_batch(&plan, &mut batch_values, &moves);

        assert_eq!(batch_updated, seq_updated);
        assert_eq!(batch_values, seq_values);
        assert_eq!(batch_view.values(), seq_view.values());
    }

    #[test]
    fn shared_rebase_restores_plan_exact_values() {
        let book = book();
        let plan = SharedPlan::compile(&book);
        let mut values = vec![3.0, 4.0, 5.0];
        let mut view = SharedView::new(&plan, &values);
        for k in 0..1000 {
            let item = k % 3;
            let old = values[item];
            let new = old + 0.001 * (k as f64 % 7.0 - 3.0);
            view.apply(&plan, &values, item, old, new);
            values[item] = new;
        }
        view.rebase(&plan, &values);
        assert_eq!(view.deltas_since_rebase(), 0);
        let (mut scratch, mut qv) = (Vec::new(), Vec::new());
        plan.full_eval_into(&values, &mut scratch, &mut qv);
        assert_eq!(view.values(), qv.as_slice());
    }

    #[test]
    fn shared_noop_moves_cost_nothing() {
        let book = book();
        let plan = SharedPlan::compile(&book);
        let values = vec![3.0, 4.0, 5.0];
        let mut view = SharedView::new(&plan, &values);
        assert_eq!(view.apply(&plan, &values, 0, 3.0, 3.0), 0);
        assert_eq!(view.deltas_since_rebase(), 0);
    }
}
