//! Optimal DAB assignment for positive-coefficient polynomial queries.
//!
//! Two formulations from §III-A, both geometric programs:
//!
//! * [`optimal_refresh`] — Conditions 1 + 2 only (§III-A.1): minimize the
//!   estimated refresh rate subject to the necessary-and-sufficient QAB
//!   condition `P(V+b) − P(V) ≤ B`. Optimal in refreshes, but the
//!   assignment is valid only at the anchor values, so *every* refresh
//!   triggers a recomputation.
//!
//! * [`dual_dab`] — the paper's novel Dual-DAB approach (§III-A.2): assign
//!   a smaller primary DAB `b` (the source filter) and a larger secondary
//!   DAB `c` (the validity range at the coordinator), minimizing
//!   `sum_i lambda_i/b_i + mu * R` subject to
//!   `P(V+c+b) − P(V+c) ≤ B`, `b ≤ c`, and `rate(lambda_i, c_i) ≤ R`.
//!   Slightly more refreshes, far fewer recomputations.

use std::collections::BTreeMap;

use pq_gp::{GpProblem, Monomial, Posynomial};
use pq_poly::{deviation_posynomial, DabVarMap, PartialDabVarMap, PolynomialQuery, QueryClass};

use crate::assignment::{QueryAssignment, ValidityRange};
use crate::cache::{solve_cached, UnitCache};
use crate::context::SolveContext;
use crate::error::DabError;

/// Ratio of secondary to primary DABs in the feasible starting point.
const START_C_OVER_B: f64 = 2.0;

/// Optimal-Refresh assignment for a PPQ (§III-A.1).
///
/// # Errors
/// [`DabError::UnsupportedQueryClass`] if the query has negative
/// coefficients (use the heuristics of [`crate::heuristics`] instead) or
/// is linear (use the closed forms of [`crate::laq`]).
pub fn optimal_refresh(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
) -> Result<QueryAssignment, DabError> {
    optimal_refresh_cached(query, ctx, None)
}

/// [`optimal_refresh`] with an optional warm-start cache: when `cache` is
/// supplied the GP is solved through [`crate::cache::solve_cached`]
/// (compiled-posynomial reuse + warm start from the last optimum).
pub(crate) fn optimal_refresh_cached(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    require_ppq(query)?;
    let vmap = DabVarMap::for_polynomial(query.poly(), false);
    let n = vmap.n_items();

    let mut problem = GpProblem::new(n);
    let mut objective = Posynomial::zero();
    for (k, &item) in vmap.items().iter().enumerate() {
        let lambda = ctx.rate(item)?;
        objective.push(
            ctx.ddm
                .refresh_monomial(lambda, k)
                .expect("rate is floored positive"),
        );
    }
    problem.set_objective(objective)?;
    let condition = deviation_posynomial(query.poly(), ctx.values, &vmap)?;
    problem.add_constraint_le(condition.clone(), query.qab())?;

    let start = scalar_feasible_start(&condition, query.qab(), n, |s, x| {
        x[..n].iter_mut().for_each(|v| *v = s);
    })?;
    let sol = match cache {
        Some(c) => solve_cached(&problem, &start, &ctx.gp, c)?,
        None => pq_gp::solve_with_start(&problem, &start, &ctx.gp)?,
    };

    let primary: BTreeMap<_, _> = vmap
        .items()
        .iter()
        .enumerate()
        .map(|(k, &item)| (item, sol.x[k]))
        .collect();
    let anchor = anchor_map(vmap.items(), ctx)?;
    Ok(QueryAssignment {
        primary,
        validity: ValidityRange::AnchorOnly,
        anchor,
        recompute_rate: 0.0,
        refresh_rate: sol.objective,
    })
}

/// Dual-DAB assignment for a PPQ (§III-A.2–3).
///
/// `mu` is the recomputation cost in messages (§III-A.3); larger `mu`
/// buys larger validity ranges (fewer recomputations) with tighter primary
/// DABs (more refreshes).
///
/// # Errors
/// [`DabError::InvalidMu`] unless `mu > 0` and finite; query-class errors
/// as for [`optimal_refresh`].
pub fn dual_dab(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    mu: f64,
) -> Result<QueryAssignment, DabError> {
    dual_dab_cached(query, ctx, mu, None)
}

/// [`dual_dab`] with an optional warm-start cache (see
/// [`crate::cache::solve_cached`]).
pub(crate) fn dual_dab_cached(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    mu: f64,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(DabError::InvalidMu(mu));
    }
    require_ppq(query)?;
    // Secondary DABs only for items whose reference value can invalidate
    // the condition; linear-only items get `c = infinity` (they never
    // trigger recomputation, like LAQ items).
    let vmap = PartialDabVarMap::for_polynomial(query.poly());
    let n = vmap.n_items();
    let n_coupled = vmap.coupled().len();
    let r_var = vmap.n_vars(); // b: 0..n, c: n..n+n_coupled, R last.

    let mut problem = GpProblem::new(r_var + 1);
    // Objective: sum_i refresh(lambda_i, b_i) + mu * R.
    let mut objective = Posynomial::zero();
    let mut lambdas = Vec::with_capacity(n);
    for (k, &item) in vmap.items().iter().enumerate() {
        let lambda = ctx.rate(item)?;
        lambdas.push(lambda);
        objective.push(
            ctx.ddm
                .refresh_monomial(lambda, k)
                .expect("rate is floored positive"),
        );
    }
    objective.push(Monomial::new(mu, [(r_var, 1.0)])?);
    problem.set_objective(objective)?;

    // QAB condition over the validity range (Eq. 2).
    let condition = deviation_posynomial(query.poly(), ctx.values, &vmap)?;
    problem.add_constraint_le(condition.clone(), query.qab())?;

    // For coupled items: b_i <= c_i and recompute-rate coupling
    // rate(lambda_i, c_i) <= R.
    let mut coupled_lambdas = Vec::with_capacity(n_coupled);
    for (j, &item) in vmap.coupled().iter().enumerate() {
        let b_var = vmap
            .items()
            .binary_search(&item)
            .expect("coupled is subset");
        let c_var = n + j;
        let lambda = lambdas[b_var];
        coupled_lambdas.push(lambda);
        problem.add_var_le_var(b_var, c_var)?;
        let escape = ctx
            .ddm
            .refresh_monomial(lambda, c_var)
            .expect("rate is floored positive");
        let coupled = escape.mul(&Monomial::new(1.0, [(r_var, -1.0)])?);
        problem.add_constraint(Posynomial::monomial(coupled))?;
    }

    // Strictly feasible start: b = s, c = 2s, R comfortably above the
    // implied escape rates.
    let ddm = ctx.ddm;
    let lambdas_for_start = coupled_lambdas.clone();
    let start = scalar_feasible_start(&condition, query.qab(), r_var + 1, move |s, x| {
        for v in x[..n].iter_mut() {
            *v = s;
        }
        for v in x[n..n + n_coupled].iter_mut() {
            *v = START_C_OVER_B * s;
        }
        let worst = lambdas_for_start
            .iter()
            .map(|&l| ddm.refresh_rate(l, START_C_OVER_B * s))
            .fold(0.0_f64, f64::max);
        x[r_var] = 2.0 * worst + 1.0;
    })?;
    let sol = match cache {
        Some(c) => solve_cached(&problem, &start, &ctx.gp, c)?,
        None => pq_gp::solve_with_start(&problem, &start, &ctx.gp)?,
    };

    let primary: BTreeMap<_, _> = vmap
        .items()
        .iter()
        .enumerate()
        .map(|(k, &item)| (item, sol.x[k]))
        .collect();
    let mut secondary: BTreeMap<_, _> = vmap
        .items()
        .iter()
        .map(|&item| (item, f64::INFINITY))
        .collect();
    for (j, &item) in vmap.coupled().iter().enumerate() {
        secondary.insert(item, sol.x[n + j]);
    }
    let refresh_rate: f64 = lambdas
        .iter()
        .zip(&sol.x[..n])
        .map(|(&l, &b)| ctx.ddm.refresh_rate(l, b))
        .sum();
    ctx.gp
        .obs
        .emit_with(pq_obs::names::DAB_SOLVE, pq_obs::EventKind::Point, |e| {
            e.with("kind", "dual-dab")
                .with("items", n)
                .with("coupled", n_coupled)
                .with("mu", mu)
                .with("refresh_rate", refresh_rate)
                .with("recompute_rate", sol.x[r_var])
        });
    let anchor = anchor_map(vmap.items(), ctx)?;
    Ok(QueryAssignment {
        primary,
        validity: ValidityRange::Box(secondary),
        anchor,
        recompute_rate: sol.x[r_var],
        refresh_rate,
    })
}

fn require_ppq(query: &PolynomialQuery) -> Result<(), DabError> {
    match query.class() {
        QueryClass::PositiveCoefficient => Ok(()),
        QueryClass::LinearAggregate => Err(DabError::UnsupportedQueryClass {
            detail: "linear query: use the closed forms in pq_core::laq",
        }),
        QueryClass::General => Err(DabError::UnsupportedQueryClass {
            detail: "mixed-sign query: use pq_core::heuristics (Half-and-Half / Different Sum)",
        }),
    }
}

fn anchor_map(
    items: &[pq_poly::ItemId],
    ctx: &SolveContext<'_>,
) -> Result<BTreeMap<pq_poly::ItemId, f64>, DabError> {
    items
        .iter()
        .map(|&item| Ok((item, ctx.value(item)?)))
        .collect()
}

/// Finds a scalar `s` such that the point produced by `fill(s, ..)` is
/// strictly feasible for `condition <= qab` (the only coupling
/// constraint): the condition is increasing in every variable, so halving
/// `s` always makes progress.
fn scalar_feasible_start(
    condition: &Posynomial,
    qab: f64,
    n_vars: usize,
    fill: impl Fn(f64, &mut [f64]),
) -> Result<Vec<f64>, DabError> {
    let target = 0.5 * qab;
    let mut s = 1.0_f64;
    let mut x = vec![1.0; n_vars];
    for _ in 0..400 {
        fill(s, &mut x);
        let g = condition.eval(&x);
        if g.is_finite() && g <= target {
            // Grow back toward the target for a better-centred start.
            for _ in 0..100 {
                let mut trial = x.clone();
                fill(s * 2.0, &mut trial);
                let g2 = condition.eval(&trial);
                if g2.is_finite() && g2 <= target {
                    s *= 2.0;
                    x = trial;
                } else {
                    break;
                }
            }
            return Ok(x);
        }
        s *= 0.5;
    }
    Err(DabError::NoFeasibleStart)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_ddm::DataDynamicsModel;
    use pq_poly::{ItemId, PTerm, Polynomial};

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn product_query(qab: f64) -> PolynomialQuery {
        PolynomialQuery::new(
            Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap()),
            qab,
        )
        .unwrap()
    }

    /// Brute-force reference for optimal refresh on Q = xy : B with the
    /// monotonic ddm: minimize l0/bx + l1/by s.t. Vx by + Vy bx + bx by <= B.
    fn grid_optimal(v: [f64; 2], l: [f64; 2], qab: f64) -> f64 {
        let mut best = f64::INFINITY;
        let steps = 2000;
        let hi = qab / v[1].min(v[0]) * 2.0;
        for i in 1..steps {
            let bx = hi * i as f64 / steps as f64;
            // Given bx, the best by saturates the constraint.
            let by = (qab - v[1] * bx) / (v[0] + bx);
            if by <= 0.0 {
                continue;
            }
            best = best.min(l[0] / bx + l[1] / by);
        }
        best
    }

    #[test]
    fn optimal_refresh_matches_grid_on_product_query() {
        let q = product_query(5.0);
        let values = [40.0, 20.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = optimal_refresh(&q, &ctx).unwrap();
        let got = a.refresh_rate;
        let want = grid_optimal([40.0, 20.0], [1.0, 1.0], 5.0);
        assert!(
            (got - want).abs() < 1e-3 * want,
            "solver {got} vs grid {want}"
        );
        assert!(a.respects_qab(&q, 1e-6));
        assert_eq!(a.validity, ValidityRange::AnchorOnly);
    }

    #[test]
    fn optimal_refresh_favours_fast_items_with_wide_dabs() {
        // Item 0 changes 100x faster; its DAB should be wider than item 1's
        // (wider filter = fewer refreshes for the fast mover).
        let q = product_query(5.0);
        let values = [20.0, 20.0];
        let rates = [100.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = optimal_refresh(&q, &ctx).unwrap();
        let b0 = a.primary_dab(x(0)).unwrap();
        let b1 = a.primary_dab(x(1)).unwrap();
        assert!(b0 > b1, "b0 = {b0}, b1 = {b1}");
    }

    #[test]
    fn dual_dab_is_valid_over_its_whole_range() {
        let q = product_query(5.0);
        let values = [2.0, 2.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = dual_dab(&q, &ctx, 5.0).unwrap();
        assert!(a.respects_qab(&q, 1e-6));
        match &a.validity {
            ValidityRange::Box(c) => {
                for (&item, &cx) in c {
                    assert!(
                        cx >= a.primary_dab(item).unwrap() - 1e-9,
                        "secondary must dominate primary"
                    );
                }
            }
            other => panic!("expected Box validity, got {other:?}"),
        }
        assert!(a.recompute_rate > 0.0);
    }

    #[test]
    fn dual_dab_trades_refreshes_for_recomputations() {
        // Versus Optimal Refresh: more refreshes, but a real validity
        // range; and larger mu widens the range further (fewer recomputes).
        let q = product_query(5.0);
        let values = [20.0, 30.0];
        let rates = [2.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let opt = optimal_refresh(&q, &ctx).unwrap();
        let d1 = dual_dab(&q, &ctx, 1.0).unwrap();
        let d10 = dual_dab(&q, &ctx, 10.0).unwrap();
        assert!(d1.refresh_rate >= opt.refresh_rate - 1e-6);
        assert!(d10.refresh_rate >= d1.refresh_rate - 1e-6);
        assert!(
            d10.recompute_rate <= d1.recompute_rate + 1e-9,
            "larger mu must not increase the recompute rate: {} vs {}",
            d10.recompute_rate,
            d1.recompute_rate
        );
        // Secondary ranges grow with mu.
        let c1: f64 = d1.secondary_dab(x(0)).unwrap();
        let c10: f64 = d10.secondary_dab(x(0)).unwrap();
        assert!(c10 >= c1 - 1e-9, "c grew {c1} -> {c10}");
    }

    #[test]
    fn dual_dab_total_cost_beats_optimal_refresh_with_recompute_costs() {
        // The whole point of §III-A.2: once recomputations cost mu messages
        // (and Optimal Refresh recomputes on *every* refresh), Dual-DAB's
        // modelled total cost wins.
        let q = product_query(5.0);
        let values = [20.0, 30.0];
        let rates = [2.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        for mu in [1.0, 5.0, 10.0] {
            let opt = optimal_refresh(&q, &ctx).unwrap();
            let dual = dual_dab(&q, &ctx, mu).unwrap();
            let opt_cost = opt.refresh_rate * (1.0 + mu); // every refresh recomputes
            let dual_cost = dual.refresh_rate + mu * dual.recompute_rate;
            assert!(
                dual_cost < opt_cost,
                "mu={mu}: dual {dual_cost} vs optimal-refresh {opt_cost}"
            );
        }
    }

    #[test]
    fn random_walk_model_gives_less_stringent_dabs() {
        // §V-B.1: the (lambda/b)^2 objective pushes toward larger b.
        let q = product_query(5.0);
        let values = [20.0, 30.0];
        let rates = [0.05, 0.02];
        let mono = SolveContext::new(&values, &rates);
        let walk = SolveContext::new(&values, &rates).with_ddm(DataDynamicsModel::RandomWalk);
        let am = dual_dab(&q, &mono, 5.0).unwrap();
        let aw = dual_dab(&q, &walk, 5.0).unwrap();
        let sum_m: f64 = am.primary.values().sum();
        let sum_w: f64 = aw.primary.values().sum();
        assert!(
            sum_w > sum_m,
            "random-walk DABs should be wider: {sum_w} vs {sum_m}"
        );
    }

    #[test]
    fn rejects_wrong_classes_and_bad_mu() {
        let laq = PolynomialQuery::linear_aggregate([(1.0, x(0))], 1.0).unwrap();
        let values = [1.0];
        let rates = [1.0];
        let ctx = SolveContext::new(&values, &rates);
        assert!(matches!(
            optimal_refresh(&laq, &ctx),
            Err(DabError::UnsupportedQueryClass { .. })
        ));
        let q = product_query(5.0);
        let values = [2.0, 2.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        assert!(matches!(
            dual_dab(&q, &ctx, 0.0),
            Err(DabError::InvalidMu(_))
        ));
        assert!(matches!(
            dual_dab(&q, &ctx, f64::NAN),
            Err(DabError::InvalidMu(_))
        ));
    }

    #[test]
    fn portfolio_query_with_shared_items_solves() {
        // sum of products sharing item x1: w1 x0 x1 + w2 x1 x2 : B.
        let p = Polynomial::from_terms([
            PTerm::new(2.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(3.0, [(x(1), 1), (x(2), 1)]).unwrap(),
        ]);
        let q = PolynomialQuery::new(p, 10.0).unwrap();
        let values = [50.0, 2.0, 30.0];
        let rates = [0.5, 0.01, 0.3];
        let ctx = SolveContext::new(&values, &rates);
        let a = dual_dab(&q, &ctx, 5.0).unwrap();
        assert_eq!(a.primary.len(), 3);
        assert!(a.respects_qab(&q, 1e-6));
    }

    #[test]
    fn tight_qab_still_finds_feasible_start() {
        let q = product_query(1e-6);
        let values = [1000.0, 1000.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = optimal_refresh(&q, &ctx).unwrap();
        assert!(a.respects_qab(&q, 1e-9));
    }
}
