//! Shared inputs to every DAB-assignment algorithm.

use pq_ddm::DataDynamicsModel;
use pq_gp::SolverOptions;
use pq_poly::ItemId;

use crate::error::DabError;

/// Everything an assignment algorithm needs besides the query itself:
/// current data values, per-item rate-of-change estimates, the assumed
/// data-dynamics model and GP solver options.
///
/// `values` and `rates` are indexed by [`ItemId::index`].
#[derive(Debug, Clone)]
pub struct SolveContext<'a> {
    /// Current data values `V` at the coordinator.
    pub values: &'a [f64],
    /// Estimated rates of change `lambda_i`.
    pub rates: &'a [f64],
    /// Assumed data-dynamics model (affects the refresh objective).
    pub ddm: DataDynamicsModel,
    /// GP solver tuning.
    pub gp: SolverOptions,
}

impl<'a> SolveContext<'a> {
    /// Context with default solver options and the monotonic ddm.
    pub fn new(values: &'a [f64], rates: &'a [f64]) -> Self {
        SolveContext {
            values,
            rates,
            ddm: DataDynamicsModel::Monotonic,
            gp: SolverOptions::default(),
        }
    }

    /// Replaces the data-dynamics model.
    pub fn with_ddm(mut self, ddm: DataDynamicsModel) -> Self {
        self.ddm = ddm;
        self
    }

    /// The rate for `item`, floored to a tiny positive value so that GP
    /// objectives stay well-posed for (nearly) immobile items.
    pub fn rate(&self, item: ItemId) -> Result<f64, DabError> {
        let r = *self
            .rates
            .get(item.index())
            .ok_or(DabError::MissingRate { item: item.0 })?;
        if !r.is_finite() || r < 0.0 {
            return Err(DabError::MissingRate { item: item.0 });
        }
        Ok(r.max(1e-9))
    }

    /// The current value for `item`.
    pub fn value(&self, item: ItemId) -> Result<f64, DabError> {
        self.values.get(item.index()).copied().ok_or(DabError::Poly(
            pq_poly::PolyError::MissingValue { item: item.0 },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_floored_and_bounds_checked() {
        let values = [1.0, 2.0];
        let rates = [0.0, 3.0];
        let ctx = SolveContext::new(&values, &rates);
        assert_eq!(ctx.rate(ItemId(0)).unwrap(), 1e-9);
        assert_eq!(ctx.rate(ItemId(1)).unwrap(), 3.0);
        assert!(matches!(
            ctx.rate(ItemId(2)),
            Err(DabError::MissingRate { item: 2 })
        ));
    }

    #[test]
    fn nan_rates_are_rejected() {
        let values = [1.0];
        let rates = [f64::NAN];
        let ctx = SolveContext::new(&values, &rates);
        assert!(ctx.rate(ItemId(0)).is_err());
    }

    #[test]
    fn value_lookup_errors_when_missing() {
        let values = [1.0];
        let rates = [1.0];
        let ctx = SolveContext::new(&values, &rates);
        assert_eq!(ctx.value(ItemId(0)).unwrap(), 1.0);
        assert!(ctx.value(ItemId(1)).is_err());
    }
}
