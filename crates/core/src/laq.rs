//! Closed-form DABs for Linear Aggregate Queries.
//!
//! For `Q = sum_i w_i x_i : B`, the worst-case deviation is
//! `sum_i |w_i| b_i` — independent of the current data values. The
//! necessary-and-sufficient condition is therefore *stable*: the
//! assignment never needs recomputation (the paper treats LAQs separately
//! for exactly this reason; §I-A, footnote 2).
//!
//! Both ddms admit Lagrange closed forms:
//!
//! * monotonic: minimize `sum lambda_i / b_i` s.t. `sum a_i b_i <= B`
//!   gives `b_i = sqrt(lambda_i / a_i) * B / sum_j sqrt(lambda_j a_j)`;
//! * random walk: minimize `sum (lambda_i / b_i)^2` gives
//!   `b_i ∝ (lambda_i^2 / a_i)^{1/3}`, scaled so the constraint is tight.

use std::collections::BTreeMap;

use pq_ddm::DataDynamicsModel;
use pq_poly::{PolynomialQuery, QueryClass};

use crate::assignment::{QueryAssignment, ValidityRange};
use crate::context::SolveContext;
use crate::error::DabError;

/// Closed-form optimal DABs for a linear aggregate query.
///
/// # Errors
/// [`DabError::UnsupportedQueryClass`] for non-linear queries.
pub fn linear_closed_form(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
) -> Result<QueryAssignment, DabError> {
    if query.class() != QueryClass::LinearAggregate {
        return Err(DabError::UnsupportedQueryClass {
            detail: "closed form applies to degree-1 queries only",
        });
    }

    // Collect (item, |w|, lambda); the polynomial merges items, and the
    // constant term (no vars) does not affect the deviation.
    let mut entries = Vec::new();
    for t in query.poly().terms() {
        match t.vars() {
            [] => {}
            [(item, 1)] => entries.push((*item, t.coef().abs(), ctx.rate(*item)?)),
            _ => unreachable!("degree-1 polynomial has single-variable terms"),
        }
    }
    if entries.is_empty() {
        return Err(DabError::Poly(pq_poly::PolyError::EmptyPolynomial));
    }

    let b_total = query.qab();
    let dabs: Vec<f64> = match ctx.ddm {
        DataDynamicsModel::Monotonic => {
            let denom: f64 = entries.iter().map(|&(_, a, l)| (l * a).sqrt()).sum();
            entries
                .iter()
                .map(|&(_, a, l)| (l / a).sqrt() * b_total / denom)
                .collect()
        }
        DataDynamicsModel::RandomWalk => {
            let shape: Vec<f64> = entries
                .iter()
                .map(|&(_, a, l)| (l * l / a).powf(1.0 / 3.0))
                .collect();
            let denom: f64 = entries
                .iter()
                .zip(&shape)
                .map(|(&(_, a, _), s)| a * s)
                .sum();
            shape.iter().map(|s| s * b_total / denom).collect()
        }
    };

    let primary: BTreeMap<_, _> = entries
        .iter()
        .zip(&dabs)
        .map(|(&(item, _, _), &b)| (item, b))
        .collect();
    let refresh_rate = entries
        .iter()
        .zip(&dabs)
        .map(|(&(_, _, l), &b)| ctx.ddm.refresh_rate(l, b))
        .sum();
    let anchor = entries
        .iter()
        .map(|&(item, _, _)| Ok((item, ctx.value(item)?)))
        .collect::<Result<_, DabError>>()?;
    Ok(QueryAssignment {
        primary,
        validity: ValidityRange::Always,
        anchor,
        recompute_rate: 0.0,
        refresh_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_gp::{GpProblem, Monomial, Posynomial, SolverOptions};
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    /// Solves the same LAQ program with the GP solver for cross-checking.
    fn gp_reference(
        weights: &[(f64, ItemId)],
        rates: &[f64],
        qab: f64,
        ddm: DataDynamicsModel,
    ) -> Vec<f64> {
        let n = weights.len();
        let mut p = GpProblem::new(n);
        let mut obj = Posynomial::zero();
        for (k, &(_, item)) in weights.iter().enumerate() {
            obj.push(ddm.refresh_monomial(rates[item.index()], k).unwrap());
        }
        p.set_objective(obj).unwrap();
        let mut c = Posynomial::zero();
        for (k, &(w, _)) in weights.iter().enumerate() {
            c.push(Monomial::new(w.abs(), [(k, 1.0)]).unwrap());
        }
        p.add_constraint_le(c, qab).unwrap();
        let wsum: f64 = weights.iter().map(|&(w, _)| w.abs()).sum();
        let start = vec![0.25 * qab / wsum; n];
        pq_gp::solve_with_start(&p, &start, &SolverOptions::default())
            .unwrap()
            .x
    }

    #[test]
    fn closed_form_matches_gp_solver_monotonic() {
        let weights = [(2.0, x(0)), (-3.0, x(1)), (1.0, x(2))];
        let values = [10.0, 20.0, 30.0];
        let rates = [1.0, 4.0, 0.25];
        let q = PolynomialQuery::linear_aggregate(weights, 2.0).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = linear_closed_form(&q, &ctx).unwrap();
        let gp = gp_reference(&weights, &rates, 2.0, DataDynamicsModel::Monotonic);
        for (k, &(_, item)) in weights.iter().enumerate() {
            let b = a.primary_dab(item).unwrap();
            assert!(
                (b - gp[k]).abs() < 1e-4 * gp[k],
                "item {item}: closed {b} vs gp {}",
                gp[k]
            );
        }
        assert_eq!(a.validity, ValidityRange::Always);
        assert_eq!(a.recompute_rate, 0.0);
    }

    #[test]
    fn closed_form_matches_gp_solver_random_walk() {
        let weights = [(1.0, x(0)), (5.0, x(1))];
        let values = [10.0, 20.0];
        let rates = [2.0, 0.5];
        let q = PolynomialQuery::linear_aggregate(weights, 3.0).unwrap();
        let ctx = SolveContext::new(&values, &rates).with_ddm(DataDynamicsModel::RandomWalk);
        let a = linear_closed_form(&q, &ctx).unwrap();
        let gp = gp_reference(&weights, &rates, 3.0, DataDynamicsModel::RandomWalk);
        for (k, &(_, item)) in weights.iter().enumerate() {
            let b = a.primary_dab(item).unwrap();
            assert!(
                (b - gp[k]).abs() < 1e-3 * gp[k],
                "item {item}: closed {b} vs gp {}",
                gp[k]
            );
        }
    }

    #[test]
    fn constraint_is_tight_and_respected() {
        let weights = [(2.0, x(0)), (-7.0, x(1))];
        let values = [1.0, 1.0];
        let rates = [1.0, 1.0];
        let q = PolynomialQuery::linear_aggregate(weights, 4.0).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = linear_closed_form(&q, &ctx).unwrap();
        let used: f64 = weights
            .iter()
            .map(|&(w, item)| w.abs() * a.primary_dab(item).unwrap())
            .sum();
        assert!((used - 4.0).abs() < 1e-9, "budget should be saturated");
        assert!(a.respects_qab(&q, 1e-9));
    }

    #[test]
    fn rejects_nonlinear_queries() {
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 1.0).unwrap();
        let values = [1.0, 1.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        assert!(matches!(
            linear_closed_form(&q, &ctx),
            Err(DabError::UnsupportedQueryClass { .. })
        ));
    }

    #[test]
    fn equal_rates_and_weights_split_evenly() {
        let weights = [(1.0, x(0)), (1.0, x(1)), (1.0, x(2)), (1.0, x(3))];
        let values = [1.0; 4];
        let rates = [1.0; 4];
        let q = PolynomialQuery::linear_aggregate(weights, 8.0).unwrap();
        let ctx = SolveContext::new(&values, &rates);
        let a = linear_closed_form(&q, &ctx).unwrap();
        for &(_, item) in &weights {
            assert!((a.primary_dab(item).unwrap() - 2.0).abs() < 1e-12);
        }
    }
}
