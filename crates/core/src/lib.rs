//! # pq-core — DAB assignment for polynomial queries
//!
//! The primary contribution of Shah & Ramamritham (ICDE 2008): given
//! continuous polynomial queries with Query Accuracy Bounds (QABs) at a
//! coordinator, derive per-item Data Accuracy Bounds (DABs — source-side
//! push filters) that (1) guarantee every QAB, (2) minimize refreshes, and
//! (3) minimize DAB *recomputations*, whose cost the paper shows can
//! dominate for non-linear queries.
//!
//! * [`ppq`] — Optimal Refresh and the novel Dual-DAB geometric programs
//!   for positive-coefficient queries (§III-A);
//! * [`laq`] — closed forms for linear queries;
//! * [`heuristics`] — Half-and-Half and Different Sum for mixed-sign
//!   queries (§III-B);
//! * [`multi`] — EQI and AAO for many queries at one coordinator (§IV);
//! * [`baseline`] — Sharfman-style per-item split and equal-width
//!   baselines (§II, §V-A);
//! * [`assignment`] — the assignment/validity-range types shared by all;
//! * [`strategy`] — a single dispatch point used by the simulator.
//!
//! ```
//! use pq_core::{assign_query, AssignmentStrategy, PqHeuristic, SolveContext};
//! use pq_poly::{ItemId, PolynomialQuery};
//!
//! // Fig. 2's query: Q = x*y with QAB 5, at V = (2, 2).
//! let q = PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 5.0).unwrap();
//! let values = [2.0, 2.0];
//! let rates = [1.0, 1.0];
//! let ctx = SolveContext::new(&values, &rates);
//! let a = assign_query(&q, &ctx, AssignmentStrategy::DualDab { mu: 5.0 },
//!                      PqHeuristic::DifferentSum).unwrap();
//! assert!(a.respects_qab(&q, 1e-6));
//! ```

#![warn(missing_docs)]

pub mod assignment;
pub mod baseline;
pub mod cache;
pub mod context;
pub mod error;
pub mod heuristics;
pub mod laq;
pub mod linearized;
pub mod multi;
pub mod partition;
pub mod ppq;
pub mod strategy;

pub use assignment::{CoordinatorAssignment, QueryAssignment, ValidityRange};
pub use cache::{
    default_recompute_threads, filter_changed, recompute_parallel, RecomputeDone, RecomputeJob,
    SolveCache, UnitCache,
};
pub use context::SolveContext;
pub use error::DabError;
pub use heuristics::{general_pq, PpqMethod, PqHeuristic};
pub use laq::linear_closed_form;
pub use linearized::linearized_filter;
pub use multi::{aao, aao_program, eqi, AaoProgram};
pub use partition::{
    partition, partition_with_slack, CrossEdge, PartitionInput, PartitionPlan, DEFAULT_SPLIT_SLACK,
    SPARSE_SPLIT_SLACK,
};
pub use ppq::{dual_dab, optimal_refresh};
pub use strategy::{
    assign_query, assign_unit, assign_unit_cached, assignment_units, estimate_mu,
    AssignmentStrategy, AssignmentUnit,
};
