//! Multiple queries at one coordinator (§IV).
//!
//! * **EQI** (*Each Query Independently*): solve every query on its own and
//!   install, per item, the minimum primary DAB across queries. Scales to
//!   thousands of queries; per-query DABs are individually optimal but the
//!   combination is not.
//!
//! * **AAO** (*All At Once*): one joint geometric program. The primary DAB
//!   of each item is shared across all queries; each `<query, item>` pair
//!   gets its own secondary DAB and each query its own recomputation rate
//!   `R_q`. Globally optimal under the model, but the variable count grows
//!   with the number of queries, so it is practical only for small query
//!   sets (the paper uses 10).

use std::collections::BTreeMap;

use pq_gp::{GpProblem, Monomial, Posynomial};
use pq_poly::{
    coupled_items, deviation_posynomial, DabVarIndexer, ItemId, Polynomial, PolynomialQuery,
};

use crate::assignment::{CoordinatorAssignment, QueryAssignment, ValidityRange};
use crate::context::SolveContext;
use crate::error::DabError;
use crate::heuristics::{general_pq, PpqMethod, PqHeuristic};

/// EQI: each query independently, minimum DAB per item (§IV).
pub fn eqi(
    queries: &[PolynomialQuery],
    ctx: &SolveContext<'_>,
    heuristic: PqHeuristic,
    method: PpqMethod,
) -> Result<CoordinatorAssignment, DabError> {
    let per_query = queries
        .iter()
        .map(|q| general_pq(q, ctx, heuristic, method))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CoordinatorAssignment::from_queries(per_query))
}

/// Variable indexer for one query inside the AAO joint program: primary
/// DABs are shared (indexed by the global item map); secondary DABs are
/// per `<query, coupled item>` (linear-only items need none — see
/// [`coupled_items`]).
struct AaoIndexer<'a> {
    b_index: &'a BTreeMap<ItemId, usize>,
    coupled: &'a [ItemId],
    c_base: usize,
}

impl DabVarIndexer for AaoIndexer<'_> {
    fn primary(&self, item: ItemId) -> usize {
        self.b_index[&item]
    }

    fn secondary(&self, item: ItemId) -> Option<usize> {
        self.coupled
            .binary_search(&item)
            .ok()
            .map(|pos| self.c_base + pos)
    }
}

/// The joint AAO geometric program for a query set, built but not yet
/// solved: the GP, a strictly feasible start, and the variable layout
/// needed to unpack a solution. Produced by [`aao_program`]; [`aao`]
/// solves it immediately, benchmarks use it to build AAO-structured
/// programs of controlled size without paying for a solve.
#[derive(Debug, Clone)]
pub struct AaoProgram {
    /// The joint GP (`b` per distinct item, then per-query `c` blocks
    /// over coupled items, then per-query `R`).
    pub problem: GpProblem,
    /// A strictly feasible starting point for the solver.
    pub start: Vec<f64>,
    b_index: BTreeMap<ItemId, usize>,
    per_query_items: Vec<Vec<ItemId>>,
    per_query_coupled: Vec<Vec<ItemId>>,
    c_base: Vec<usize>,
    r_base: usize,
    lambdas: Vec<f64>,
}

/// AAO: one joint GP over all queries (§IV).
///
/// Mixed-sign queries are first transformed by Different Sum
/// (`P -> P1 + P2`), which preserves correctness (Claim 1). The result's
/// `item_dabs` are the shared primary DABs; `per_query` carries each
/// query's secondary box and recomputation-rate estimate.
///
/// # Errors
/// [`DabError::InvalidMu`] unless `mu > 0`; solver errors otherwise.
pub fn aao(
    queries: &[PolynomialQuery],
    ctx: &SolveContext<'_>,
    mu: f64,
) -> Result<CoordinatorAssignment, DabError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(DabError::InvalidMu(mu));
    }
    if queries.is_empty() {
        return Ok(CoordinatorAssignment::default());
    }
    let program = aao_program(queries, ctx, mu)?;
    let sol = pq_gp::solve_with_start(&program.problem, &program.start, &ctx.gp)?;
    program.into_assignment(&sol, ctx)
}

/// Builds the joint AAO program (variables, objective, constraints and a
/// feasible start) without solving it. See [`aao`] for the formulation.
///
/// # Errors
/// [`DabError::InvalidMu`] unless `mu > 0`; [`DabError::NoFeasibleStart`]
/// when the scalar start search fails; construction errors otherwise.
///
/// # Panics
/// Panics on an empty query set ([`aao`] short-circuits that case).
pub fn aao_program(
    queries: &[PolynomialQuery],
    ctx: &SolveContext<'_>,
    mu: f64,
) -> Result<AaoProgram, DabError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(DabError::InvalidMu(mu));
    }
    assert!(!queries.is_empty(), "AAO program needs at least one query");

    // Different-Sum transform for mixed signs; collect per-query item lists.
    let bodies: Vec<Polynomial> = queries
        .iter()
        .map(|q| {
            let (p1, p2) = q.poly().split_pos_neg();
            if p2.is_zero() {
                p1
            } else if p1.is_zero() {
                p2
            } else {
                p1.add(&p2)
            }
        })
        .collect();
    let per_query_items: Vec<Vec<ItemId>> = bodies.iter().map(Polynomial::items).collect();
    let per_query_coupled: Vec<Vec<ItemId>> = bodies.iter().map(coupled_items).collect();

    // Global variable layout: b per distinct item, then per-query c blocks
    // (coupled items only), then per-query R.
    let mut all_items: Vec<ItemId> = per_query_items.iter().flatten().copied().collect();
    all_items.sort();
    all_items.dedup();
    let b_index: BTreeMap<ItemId, usize> =
        all_items.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let n_items = all_items.len();
    let mut c_base = vec![0usize; queries.len()];
    let mut next = n_items;
    for (qi, coupled) in per_query_coupled.iter().enumerate() {
        c_base[qi] = next;
        next += coupled.len();
    }
    let r_base = next;
    let n_vars = r_base + queries.len();

    let mut problem = GpProblem::new(n_vars);

    // Objective: refresh rates on shared b + mu * sum_q R_q.
    let mut objective = Posynomial::zero();
    let mut lambdas = vec![0.0; n_items];
    for (&item, &k) in &b_index {
        let lambda = ctx.rate(item)?;
        lambdas[k] = lambda;
        objective.push(
            ctx.ddm
                .refresh_monomial(lambda, k)
                .expect("rate is floored positive"),
        );
    }
    for qi in 0..queries.len() {
        objective.push(Monomial::new(mu, [(r_base + qi, 1.0)])?);
    }
    problem.set_objective(objective)?;

    // Per-query constraints.
    let mut conditions = Vec::with_capacity(queries.len());
    for (qi, (query, body)) in queries.iter().zip(&bodies).enumerate() {
        let indexer = AaoIndexer {
            b_index: &b_index,
            coupled: &per_query_coupled[qi],
            c_base: c_base[qi],
        };
        let condition = deviation_posynomial(body, ctx.values, &indexer)?;
        problem.add_constraint_le(condition.clone(), query.qab())?;
        conditions.push((condition, query.qab()));
        for (pos, &item) in per_query_coupled[qi].iter().enumerate() {
            let b_var = b_index[&item];
            let c_var = c_base[qi] + pos;
            problem.add_var_le_var(b_var, c_var)?;
            let escape = ctx
                .ddm
                .refresh_monomial(lambdas[b_var], c_var)
                .expect("rate is floored positive");
            let coupled = escape.mul(&Monomial::new(1.0, [(r_base + qi, -1.0)])?);
            problem.add_constraint(Posynomial::monomial(coupled))?;
        }
    }

    // Scalar feasible start: b = s, every c = 2s, R_q above escape rates.
    let ddm = ctx.ddm;
    let max_lambda = lambdas.iter().fold(1e-9_f64, |m, &l| m.max(l));
    let mut s = 1.0_f64;
    let mut x = vec![1.0; n_vars];
    let mut found = false;
    'search: for _ in 0..400 {
        for v in x[..r_base].iter_mut() {
            *v = s;
        }
        for v in x[n_items..r_base].iter_mut() {
            *v = 2.0 * s;
        }
        let r0 = 2.0 * ddm.refresh_rate(max_lambda, 2.0 * s) + 1.0;
        for v in x[r_base..].iter_mut() {
            *v = r0;
        }
        if conditions
            .iter()
            .all(|(cnd, qab)| cnd.eval(&x) <= 0.5 * qab)
        {
            found = true;
            break 'search;
        }
        s *= 0.5;
    }
    if !found {
        return Err(DabError::NoFeasibleStart);
    }

    Ok(AaoProgram {
        problem,
        start: x,
        b_index,
        per_query_items,
        per_query_coupled,
        c_base,
        r_base,
        lambdas,
    })
}

impl AaoProgram {
    /// Unpacks a solution of [`AaoProgram::problem`] into shared item
    /// DABs plus per-query assignments.
    fn into_assignment(
        self,
        sol: &pq_gp::GpSolution,
        ctx: &SolveContext<'_>,
    ) -> Result<CoordinatorAssignment, DabError> {
        let item_dabs: BTreeMap<ItemId, f64> = self
            .b_index
            .iter()
            .map(|(&item, &k)| (item, sol.x[k]))
            .collect();
        let mut per_query = Vec::with_capacity(self.per_query_items.len());
        for (qi, items) in self.per_query_items.iter().enumerate() {
            let primary: BTreeMap<ItemId, f64> =
                items.iter().map(|&i| (i, item_dabs[&i])).collect();
            let mut secondary: BTreeMap<ItemId, f64> =
                items.iter().map(|&i| (i, f64::INFINITY)).collect();
            for (pos, &i) in self.per_query_coupled[qi].iter().enumerate() {
                secondary.insert(i, sol.x[self.c_base[qi] + pos]);
            }
            let anchor = items
                .iter()
                .map(|&i| Ok((i, ctx.value(i)?)))
                .collect::<Result<_, DabError>>()?;
            let refresh_rate = items
                .iter()
                .map(|&i| {
                    ctx.ddm
                        .refresh_rate(self.lambdas[self.b_index[&i]], item_dabs[&i])
                })
                .sum();
            per_query.push(QueryAssignment {
                primary,
                validity: ValidityRange::Box(secondary),
                anchor,
                recompute_rate: sol.x[self.r_base + qi],
                refresh_rate,
            });
        }
        Ok(CoordinatorAssignment {
            item_dabs,
            per_query,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn two_portfolios() -> Vec<PolynomialQuery> {
        vec![
            PolynomialQuery::portfolio([(2.0, x(0), x(1)), (1.0, x(2), x(3))], 6.0).unwrap(),
            PolynomialQuery::portfolio([(3.0, x(1), x(2))], 4.0).unwrap(),
        ]
    }

    fn data() -> ([f64; 4], [f64; 4]) {
        ([20.0, 3.0, 15.0, 2.0], [0.5, 0.05, 0.4, 0.02])
    }

    #[test]
    fn eqi_installs_minimum_dabs() {
        let queries = two_portfolios();
        let (values, rates) = data();
        let ctx = SolveContext::new(&values, &rates);
        let ca = eqi(
            &queries,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::DualDab { mu: 5.0 },
        )
        .unwrap();
        assert_eq!(ca.per_query.len(), 2);
        assert_eq!(ca.item_dabs.len(), 4);
        // Installed DAB for shared items is the min over the two queries.
        for item in [x(1), x(2)] {
            let installed = ca.item_dab(item).unwrap();
            for qa in &ca.per_query {
                if let Some(b) = qa.primary_dab(item) {
                    assert!(installed <= b + 1e-12);
                }
            }
        }
        // Every per-query assignment individually respects its QAB.
        for (qa, q) in ca.per_query.iter().zip(&queries) {
            assert!(qa.respects_qab(q, 1e-6));
        }
    }

    #[test]
    fn aao_shares_primary_dabs_across_queries() {
        let queries = two_portfolios();
        let (values, rates) = data();
        let ctx = SolveContext::new(&values, &rates);
        let ca = aao(&queries, &ctx, 5.0).unwrap();
        assert_eq!(ca.per_query.len(), 2);
        for qa in &ca.per_query {
            for (&item, &b) in &qa.primary {
                assert_eq!(b, ca.item_dab(item).unwrap(), "shared primary for {item}");
            }
            assert!(matches!(qa.validity, ValidityRange::Box(_)));
        }
        for (qa, q) in ca.per_query.iter().zip(&queries) {
            assert!(qa.respects_qab(q, 1e-6));
        }
    }

    #[test]
    fn aao_total_cost_at_most_eqi() {
        // AAO is the globally optimal formulation of the same model, so its
        // modelled total cost must not exceed EQI's (§V-B.1, Fig. 7).
        let queries = two_portfolios();
        let (values, rates) = data();
        let ctx = SolveContext::new(&values, &rates);
        let mu = 5.0;
        let a = aao(&queries, &ctx, mu).unwrap();
        let e = eqi(
            &queries,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::DualDab { mu },
        )
        .unwrap();
        let model_cost = |ca: &CoordinatorAssignment| -> f64 {
            // Shared-filter refresh cost: per item the installed (min) DAB.
            let refresh: f64 = ca
                .item_dabs
                .iter()
                .map(|(&item, &b)| ctx.ddm.refresh_rate(ctx.rate(item).unwrap(), b))
                .sum();
            let recompute: f64 = ca.per_query.iter().map(|qa| qa.recompute_rate).sum();
            refresh + mu * recompute
        };
        assert!(
            model_cost(&a) <= model_cost(&e) * 1.01,
            "AAO {} vs EQI {}",
            model_cost(&a),
            model_cost(&e)
        );
    }

    #[test]
    fn aao_handles_mixed_sign_queries_via_different_sum() {
        let queries =
            vec![
                PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 5.0).unwrap(),
            ];
        let (values, rates) = data();
        let ctx = SolveContext::new(&values, &rates);
        let ca = aao(&queries, &ctx, 2.0).unwrap();
        assert!(ca.per_query[0].respects_qab(&queries[0], 1e-6));
    }

    #[test]
    fn aao_rejects_bad_mu_and_empty_is_ok() {
        let (values, rates) = data();
        let ctx = SolveContext::new(&values, &rates);
        assert!(matches!(
            aao(&two_portfolios(), &ctx, -1.0),
            Err(DabError::InvalidMu(_))
        ));
        let ca = aao(&[], &ctx, 1.0).unwrap();
        assert!(ca.per_query.is_empty());
        assert!(ca.item_dabs.is_empty());
    }

    #[test]
    fn eqi_scales_to_many_queries() {
        // 40 two-leg portfolios over 10 items.
        let mut queries = Vec::new();
        for k in 0u32..40 {
            let a = k % 10;
            let b = (k + 3) % 10;
            let c = (k + 5) % 10;
            let d = (k + 7) % 10;
            queries.push(
                PolynomialQuery::portfolio(
                    [(1.0 + k as f64, x(a), x(b)), (2.0, x(c), x(d))],
                    50.0 + k as f64,
                )
                .unwrap(),
            );
        }
        let values = vec![10.0; 10];
        let rates = vec![0.1; 10];
        let ctx = SolveContext::new(&values, &rates);
        let ca = eqi(
            &queries,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::DualDab { mu: 5.0 },
        )
        .unwrap();
        assert_eq!(ca.per_query.len(), 40);
        for (qa, q) in ca.per_query.iter().zip(&queries) {
            assert!(qa.respects_qab(q, 1e-6));
        }
    }
}
