//! DAB assignments: the output of every algorithm in this crate.

use std::collections::BTreeMap;

use pq_poly::{ItemId, PolynomialQuery};

/// Over what data movements an assignment's primary DABs remain valid
/// (i.e. continue to guarantee the QAB) without recomputation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidityRange {
    /// The condition is value-independent (linear queries, §I-A): the
    /// assignment never needs recomputation.
    Always,
    /// Valid only at the anchor values (single-DAB assignments for
    /// non-linear queries, §I-B): any refresh of a referenced item
    /// invalidates the assignment and forces a recomputation.
    AnchorOnly,
    /// Valid while every item stays within `anchor ± secondary[item]`
    /// (the Dual-DAB approach, §III-A.2).
    Box(BTreeMap<ItemId, f64>),
}

/// A DAB assignment for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAssignment {
    /// Primary DAB `b_x` per referenced item — the filter width installed
    /// at the item's source.
    pub primary: BTreeMap<ItemId, f64>,
    /// Validity range of the primary DABs.
    pub validity: ValidityRange,
    /// Data values `V` at which the assignment was computed.
    pub anchor: BTreeMap<ItemId, f64>,
    /// Model-estimated recomputations per unit time (`R` in §III-A.2);
    /// zero when the validity range is `Always` or not modelled.
    pub recompute_rate: f64,
    /// Model-estimated refreshes per unit time under the assumed ddm.
    pub refresh_rate: f64,
}

impl QueryAssignment {
    /// The primary DAB of `item`, if assigned.
    pub fn primary_dab(&self, item: ItemId) -> Option<f64> {
        self.primary.get(&item).copied()
    }

    /// The secondary DAB of `item` (`Box` ranges only).
    pub fn secondary_dab(&self, item: ItemId) -> Option<f64> {
        match &self.validity {
            ValidityRange::Box(c) => c.get(&item).copied(),
            _ => None,
        }
    }

    /// True if the assignment is still valid when the coordinator's cached
    /// values are `values` (indexed by item id).
    ///
    /// For `AnchorOnly`, validity requires the cached values to still equal
    /// the anchor (up to floating-point identity): in the push protocol
    /// this means "no refresh has arrived since the assignment was made".
    pub fn is_valid_at(&self, values: &[f64]) -> bool {
        match &self.validity {
            ValidityRange::Always => true,
            ValidityRange::AnchorOnly => self
                .anchor
                .iter()
                .all(|(item, v)| values.get(item.index()) == Some(v)),
            ValidityRange::Box(c) => self.anchor.iter().all(|(item, v0)| {
                let now = values.get(item.index()).copied().unwrap_or(f64::NAN);
                let cx = c.get(item).copied().unwrap_or(0.0);
                (now - v0).abs() <= cx
            }),
        }
    }

    /// Numerically verifies Condition 1 at the anchor: the worst-case query
    /// deviation over the primary-DAB box (shifted to the worst point of
    /// the validity range, if any) does not exceed `qab`.
    ///
    /// Used by tests and debug assertions; `tolerance` absorbs solver
    /// slack (constraints are active at the optimum, so equality holds up
    /// to the duality gap).
    pub fn respects_qab(&self, query: &PolynomialQuery, tolerance: f64) -> bool {
        let n = self.anchor.keys().map(|i| i.index() + 1).max().unwrap_or(0);
        let mut values = vec![0.0; n];
        let mut dabs = vec![0.0; n];
        for (&item, &v) in &self.anchor {
            values[item.index()] = v;
        }
        for (&item, &b) in &self.primary {
            dabs[item.index()] = b;
        }
        match &self.validity {
            ValidityRange::Box(c) => {
                // An infinite secondary DAB claims "this item's reference
                // value can never invalidate the assignment" — sound only
                // for items appearing linearly everywhere (uncoupled).
                let coupled = pq_poly::coupled_items(query.poly());
                for (&item, &cx) in c {
                    if cx.is_infinite() && coupled.binary_search(&item).is_ok() {
                        return false;
                    }
                }
                // Worst reference point: anchor shifted to a corner of the
                // secondary box (uncoupled items stay put — their shift
                // provably cannot change the deviation). For positive data
                // the all-up corner dominates, but we enumerate all corners
                // to stay strategy-agnostic.
                let items: Vec<ItemId> = self.anchor.keys().copied().collect();
                assert!(items.len() <= 20, "corner enumeration capped at 20 items");
                let mut shifted = values.clone();
                for mask in 0u32..(1u32 << items.len()) {
                    for (bit, &it) in items.iter().enumerate() {
                        let cx = c.get(&it).copied().unwrap_or(0.0);
                        let cx = if cx.is_infinite() { 0.0 } else { cx };
                        let v0 = values[it.index()];
                        shifted[it.index()] = if mask >> bit & 1 == 1 {
                            v0 + cx
                        } else {
                            (v0 - cx).max(0.0)
                        };
                    }
                    let dev = query.poly().max_abs_deviation_over_box(&shifted, &dabs);
                    if dev > query.qab() + tolerance {
                        return false;
                    }
                }
                true
            }
            _ => {
                let dev = query.poly().max_abs_deviation_over_box(&values, &dabs);
                dev <= query.qab() + tolerance
            }
        }
    }
}

/// Per-coordinator assignment across all queries: each item's installed
/// filter is the *minimum* primary DAB over the queries that reference it
/// (EQI / minimum rule, §IV).
#[derive(Debug, Clone, Default)]
pub struct CoordinatorAssignment {
    /// Installed filter per item.
    pub item_dabs: BTreeMap<ItemId, f64>,
    /// The per-query assignments the minimum was taken over.
    pub per_query: Vec<QueryAssignment>,
}

impl CoordinatorAssignment {
    /// Combines per-query assignments with the minimum rule.
    pub fn from_queries(per_query: Vec<QueryAssignment>) -> Self {
        let mut item_dabs: BTreeMap<ItemId, f64> = BTreeMap::new();
        for qa in &per_query {
            for (&item, &b) in &qa.primary {
                item_dabs
                    .entry(item)
                    .and_modify(|cur| *cur = cur.min(b))
                    .or_insert(b);
            }
        }
        CoordinatorAssignment {
            item_dabs,
            per_query,
        }
    }

    /// The installed (minimum) DAB for `item`.
    pub fn item_dab(&self, item: ItemId) -> Option<f64> {
        self.item_dabs.get(&item).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_poly::{PTerm, Polynomial};

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn product_query(qab: f64) -> PolynomialQuery {
        PolynomialQuery::new(
            Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap()),
            qab,
        )
        .unwrap()
    }

    fn map(pairs: &[(u32, f64)]) -> BTreeMap<ItemId, f64> {
        pairs.iter().map(|&(i, v)| (x(i), v)).collect()
    }

    #[test]
    fn anchor_only_invalidates_on_any_change() {
        let qa = QueryAssignment {
            primary: map(&[(0, 1.0), (1, 1.0)]),
            validity: ValidityRange::AnchorOnly,
            anchor: map(&[(0, 2.0), (1, 2.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        assert!(qa.is_valid_at(&[2.0, 2.0]));
        assert!(!qa.is_valid_at(&[3.0, 2.0]));
    }

    #[test]
    fn box_range_validity_matches_fig4() {
        // Fig. 4: Q = xy : 5, anchor (2, 2), b = 0.5, c = (3.5, 2.5):
        // valid at (3, 2) and (3.9, 2.9), invalid past (5.5, 4.5).
        let qa = QueryAssignment {
            primary: map(&[(0, 0.5), (1, 0.5)]),
            validity: ValidityRange::Box(map(&[(0, 3.5), (1, 2.5)])),
            anchor: map(&[(0, 2.0), (1, 2.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        assert!(qa.is_valid_at(&[3.0, 2.0]));
        assert!(qa.is_valid_at(&[3.9, 2.9]));
        assert!(qa.is_valid_at(&[5.5, 4.5]));
        assert!(!qa.is_valid_at(&[5.6, 4.5]));
        assert!(!qa.is_valid_at(&[2.0, 4.6]));
    }

    #[test]
    fn always_valid_never_invalidates() {
        let qa = QueryAssignment {
            primary: map(&[(0, 1.0)]),
            validity: ValidityRange::Always,
            anchor: map(&[(0, 5.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        assert!(qa.is_valid_at(&[1e9]));
    }

    #[test]
    fn respects_qab_detects_fig2_violation() {
        // Fig. 2: b = (1, 1) at anchor (3, 2) violates Q = xy : 5
        // (worst corner deviation 6 > 5), while at (2, 2) it is tight.
        let q = product_query(5.0);
        let bad = QueryAssignment {
            primary: map(&[(0, 1.0), (1, 1.0)]),
            validity: ValidityRange::AnchorOnly,
            anchor: map(&[(0, 3.0), (1, 2.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        assert!(!bad.respects_qab(&q, 1e-9));
        let good = QueryAssignment {
            anchor: map(&[(0, 2.0), (1, 2.0)]),
            ..bad
        };
        assert!(good.respects_qab(&q, 1e-9));
    }

    #[test]
    fn respects_qab_checks_whole_validity_range() {
        // b = (0.5, 0.5) with c = (3.5, 2.5) at anchor (2, 2) is exactly
        // the Fig. 4 assignment; at the top of the range (5.5, 4.5) the
        // worst deviation is 0.5*4.5+0.5*5.5+0.25 = 5.25 > 5 -> invalid.
        let q = product_query(5.0);
        let qa = QueryAssignment {
            primary: map(&[(0, 0.5), (1, 0.5)]),
            validity: ValidityRange::Box(map(&[(0, 3.5), (1, 2.5)])),
            anchor: map(&[(0, 2.0), (1, 2.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        assert!(!qa.respects_qab(&q, 1e-9));
        // Shrinking the secondary range restores validity:
        // at (2+c) = (4.4, 3.4): dev = 0.5*(3.4+4.4)+0.25 = 4.15 <= 5.
        let qa2 = QueryAssignment {
            validity: ValidityRange::Box(map(&[(0, 2.4), (1, 1.4)])),
            ..qa
        };
        assert!(qa2.respects_qab(&q, 1e-9));
    }

    #[test]
    fn coordinator_assignment_takes_minimum() {
        let qa1 = QueryAssignment {
            primary: map(&[(0, 1.0), (1, 3.0)]),
            validity: ValidityRange::AnchorOnly,
            anchor: map(&[(0, 1.0), (1, 1.0)]),
            recompute_rate: 0.0,
            refresh_rate: 0.0,
        };
        let qa2 = QueryAssignment {
            primary: map(&[(1, 2.0), (2, 5.0)]),
            ..qa1.clone()
        };
        let ca = CoordinatorAssignment::from_queries(vec![qa1, qa2]);
        assert_eq!(ca.item_dab(x(0)), Some(1.0));
        assert_eq!(ca.item_dab(x(1)), Some(2.0));
        assert_eq!(ca.item_dab(x(2)), Some(5.0));
        assert_eq!(ca.item_dab(x(3)), None);
    }
}
