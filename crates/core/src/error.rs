//! Error type for DAB assignment.

use pq_gp::GpError;
use pq_poly::PolyError;

/// Errors from DAB assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum DabError {
    /// Underlying geometric-program failure.
    Gp(GpError),
    /// Polynomial / constraint construction failure.
    Poly(PolyError),
    /// No rate-of-change estimate was supplied for a referenced item.
    MissingRate {
        /// The item without a rate.
        item: u32,
    },
    /// The recomputation-cost parameter `mu` must be non-negative & finite.
    InvalidMu(f64),
    /// A strictly feasible starting DAB vector could not be constructed
    /// (the QAB is too tight relative to numeric precision).
    NoFeasibleStart,
    /// The strategy cannot handle this query class (e.g. asking the PPQ
    /// formulations to handle a mixed-sign polynomial directly).
    UnsupportedQueryClass {
        /// Human-readable detail.
        detail: &'static str,
    },
}

impl From<GpError> for DabError {
    fn from(e: GpError) -> Self {
        DabError::Gp(e)
    }
}

impl From<PolyError> for DabError {
    fn from(e: PolyError) -> Self {
        DabError::Poly(e)
    }
}

impl std::fmt::Display for DabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DabError::Gp(e) => write!(f, "geometric program failed: {e}"),
            DabError::Poly(e) => write!(f, "constraint construction failed: {e}"),
            DabError::MissingRate { item } => {
                write!(f, "no rate-of-change estimate for item x{item}")
            }
            DabError::InvalidMu(mu) => {
                write!(f, "recomputation cost mu must be >= 0 and finite, got {mu}")
            }
            DabError::NoFeasibleStart => {
                write!(f, "could not construct a strictly feasible starting point")
            }
            DabError::UnsupportedQueryClass { detail } => {
                write!(f, "unsupported query class: {detail}")
            }
        }
    }
}

impl std::error::Error for DabError {}
