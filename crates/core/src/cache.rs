//! Warm-start caches for incremental DAB recomputation.
//!
//! The paper's central cost is DAB *recomputation* (§III-A.2–3): every
//! refresh that escapes a validity range triggers a fresh GP solve. Between
//! consecutive recomputations the data drifts only a little (each movement
//! is bounded by the very DABs being maintained), so the previous optimum
//! is an excellent warm start. A [`UnitCache`] keeps, per assignment unit:
//!
//! * the compiled [`pq_gp::CompiledGp`] (coefficients refreshed in place
//!   each recompute — the exponent structure is stable across drift);
//! * the last optimal point, warm-started via the shrink-toward-interior
//!   ladder of [`pq_gp::CompiledGp::solve_warm`];
//! * a [`pq_gp::SolveWorkspace`] so barrier iterations are allocation-free.
//!
//! The fallback ladder is: warm hit (lightly blended previous optimum is
//! strictly feasible) → warm repair (deeper blend toward the interior
//! point) → cold fallback (full phase-I [`pq_gp::solve`]). Each outcome
//! bumps a `solve.*` counter so `pq-trace summary` can attribute the win.

use pq_gp::{GpProblem, GpSolution, SolveWorkspace, SolverOptions, WarmStart};
use pq_obs::names;

use crate::assignment::QueryAssignment;
use crate::context::SolveContext;
use crate::error::DabError;
use crate::strategy::{assign_unit_cached, AssignmentStrategy, AssignmentUnit};

/// Warm-start state for one assignment unit (one GP shape).
#[derive(Debug, Default)]
pub struct UnitCache {
    compiled: Option<pq_gp::CompiledGp>,
    last_x: Vec<f64>,
    ws: SolveWorkspace,
    /// `solve.*` outcome counters, resolved through the registry once
    /// per unit instead of once per solve (the recompute hot path).
    counters: Option<SolveCounters>,
}

/// Pre-resolved handles for the four `solve.*` outcome counters, tagged
/// with the registry they came from so a cache handed a *different*
/// `Obs` later (e.g. an untimed seeding pass on `Obs::null()`, then the
/// real run) re-resolves instead of incrementing the stale registry.
#[derive(Debug, Clone)]
struct SolveCounters {
    obs: pq_obs::Obs,
    warm_hit: std::sync::Arc<pq_obs::Counter>,
    warm_repair: std::sync::Arc<pq_obs::Counter>,
    cold_fallback: std::sync::Arc<pq_obs::Counter>,
    cold_start: std::sync::Arc<pq_obs::Counter>,
}

impl SolveCounters {
    fn resolve(obs: &pq_obs::Obs) -> Self {
        SolveCounters {
            obs: obs.clone(),
            warm_hit: obs.counter(names::SOLVE_WARM_HIT),
            warm_repair: obs.counter(names::SOLVE_WARM_REPAIR),
            cold_fallback: obs.counter(names::SOLVE_COLD_FALLBACK),
            cold_start: obs.counter(names::SOLVE_COLD_START),
        }
    }
}

impl UnitCache {
    /// An empty cache: the first solve through it is a cold start.
    pub fn new() -> Self {
        UnitCache::default()
    }

    /// True once a solution has been cached (subsequent solves warm-start).
    pub fn has_solution(&self) -> bool {
        !self.last_x.is_empty()
    }

    /// Forgets the cached solution and compiled program.
    pub fn clear(&mut self) {
        self.compiled = None;
        self.last_x.clear();
    }
}

/// Solves `problem` through `cache`, warm-starting from the last cached
/// optimum when one exists. `interior` must be a strictly feasible point
/// (the cold start the caller would otherwise use); it anchors the
/// shrink-toward-interior repair ladder.
///
/// Telemetry: bumps `solve.warm_hit`, `solve.warm_repair`,
/// `solve.cold_fallback` or `solve.cold_start` on `options.obs`.
pub(crate) fn solve_cached(
    problem: &GpProblem,
    interior: &[f64],
    options: &SolverOptions,
    cache: &mut UnitCache,
) -> Result<GpSolution, DabError> {
    let stale = cache
        .counters
        .as_ref()
        .is_none_or(|c| !c.obs.same_registry(&options.obs));
    if stale {
        cache.counters = Some(SolveCounters::resolve(&options.obs));
    }
    let counters = cache.counters.clone().expect("resolved above");
    let compiled = match cache.compiled.as_mut() {
        Some(c) => {
            c.update_from(problem)?;
            c
        }
        None => cache.compiled.insert(pq_gp::CompiledGp::compile(problem)?),
    };
    let solution = if cache.last_x.len() == problem.n_vars() {
        match compiled.solve_warm(&cache.last_x, interior, options, &mut cache.ws) {
            Ok((sol, WarmStart::Hit)) => {
                counters.warm_hit.inc();
                sol
            }
            Ok((sol, WarmStart::Repaired)) => {
                counters.warm_repair.inc();
                sol
            }
            Err(_) => {
                // Repair exhausted: pay the full cold phase-I price.
                counters.cold_fallback.inc();
                pq_gp::solve(problem, options)?
            }
        }
    } else {
        counters.cold_start.inc();
        match compiled.solve_from(interior, options, &mut cache.ws) {
            Ok(sol) => sol,
            Err(_) => pq_gp::solve(problem, options)?,
        }
    };
    cache.last_x.clear();
    cache.last_x.extend_from_slice(&solution.x);
    Ok(solution)
}

/// Per-query × per-unit warm-start caches for a whole monitored workload,
/// shaped to match the unit decomposition of
/// [`crate::strategy::assignment_units`].
#[derive(Debug, Default)]
pub struct SolveCache {
    units: Vec<Vec<UnitCache>>,
}

impl SolveCache {
    /// An empty cache; call [`SolveCache::resize`] to shape it.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Shapes the cache to `unit_counts[qi]` units per query, preserving
    /// existing entries where the shape is unchanged.
    pub fn resize(&mut self, unit_counts: &[usize]) {
        self.units.resize_with(unit_counts.len(), Vec::new);
        for (row, &n) in self.units.iter_mut().zip(unit_counts) {
            row.resize_with(n, UnitCache::new);
        }
        self.units.truncate(unit_counts.len());
    }

    /// The cache for unit `ui` of query `qi`.
    ///
    /// # Panics
    /// Panics if the cache was not sized to cover `(qi, ui)`.
    pub fn unit_mut(&mut self, qi: usize, ui: usize) -> &mut UnitCache {
        &mut self.units[qi][ui]
    }

    /// Takes unit `(qi, ui)`'s cache out (for a worker thread), leaving an
    /// empty one in its place; return it with [`SolveCache::put_back`].
    pub fn take(&mut self, qi: usize, ui: usize) -> UnitCache {
        std::mem::take(&mut self.units[qi][ui])
    }

    /// Restores a cache taken with [`SolveCache::take`].
    pub fn put_back(&mut self, qi: usize, ui: usize, cache: UnitCache) {
        self.units[qi][ui] = cache;
    }
}

/// One pending unit recomputation, ready to run on any thread.
///
/// The job *owns* its [`UnitCache`] (taken out of a [`SolveCache`] with
/// [`SolveCache::take`]) so workers never alias shared mutable state; the
/// caller puts the cache back when merging results.
pub struct RecomputeJob<'a> {
    /// Index of the query this unit belongs to.
    pub qi: usize,
    /// Index of the unit within the query.
    pub ui: usize,
    /// The unit to re-solve.
    pub unit: &'a AssignmentUnit,
    /// Solve context snapshot (values/rates/ddm/solver options).
    pub ctx: SolveContext<'a>,
    /// The unit's warm-start cache, owned for the duration of the job.
    pub cache: UnitCache,
}

/// A finished [`RecomputeJob`]: same `(qi, ui)`, the cache to put back,
/// and the solve outcome.
pub struct RecomputeDone {
    /// Index of the query this unit belongs to.
    pub qi: usize,
    /// Index of the unit within the query.
    pub ui: usize,
    /// The warm-start cache, updated with the new optimum on success.
    pub cache: UnitCache,
    /// The recomputed assignment.
    pub result: Result<QueryAssignment, DabError>,
}

fn run_job(job: RecomputeJob<'_>, strategy: AssignmentStrategy) -> RecomputeDone {
    let RecomputeJob {
        qi,
        ui,
        unit,
        ctx,
        mut cache,
    } = job;
    let result = assign_unit_cached(unit, &ctx, strategy, &mut cache);
    RecomputeDone {
        qi,
        ui,
        cache,
        result,
    }
}

/// The default recompute fan-out width: one worker per available core.
pub fn default_recompute_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a batch of independent unit recomputations, fanning out over at
/// most `max_threads` scoped worker threads (clamped to the job count and
/// to [`default_recompute_threads`]).
///
/// Results come back in **job order** regardless of thread count, and each
/// job touches only its own [`UnitCache`], so the outcome is byte-identical
/// to running the jobs serially — callers merge results in order and keep
/// serial semantics for counters, filter derivation and messages.
pub fn recompute_parallel(
    jobs: Vec<RecomputeJob<'_>>,
    strategy: AssignmentStrategy,
    max_threads: usize,
) -> Vec<RecomputeDone> {
    let n = jobs.len();
    let workers = max_threads
        .max(1)
        .min(default_recompute_threads())
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| run_job(j, strategy)).collect();
    }
    // Contiguous chunks keep each (qi, ui) on exactly one worker; slots are
    // pre-sized so workers write disjoint ranges.
    let chunk = n.div_ceil(workers);
    let mut jobs: Vec<Option<RecomputeJob<'_>>> = jobs.into_iter().map(Some).collect();
    let mut slots: Vec<Option<RecomputeDone>> = Vec::new();
    slots.resize_with(n, || None);
    // Spans opened by workers (gp.solve etc.) parent under whatever span
    // the dispatching thread has open, keeping the fan-out causally
    // attributed in traces.
    let causal = pq_obs::SpanContext::current();
    std::thread::scope(|s| {
        for (job_chunk, slot_chunk) in jobs.chunks_mut(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                let _causal = causal.enter();
                for (job, slot) in job_chunk.iter_mut().zip(slot_chunk) {
                    let job = job.take().expect("job taken once");
                    *slot = Some(run_job(job, strategy));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|d| d.expect("every slot filled"))
        .collect()
}

/// True when a derived per-item filter width meaningfully changed — the
/// shared mixed absolute/relative tolerance used by the monitor and the
/// simulator when deciding whether to send a DAB-change message.
///
/// A pure relative test (`|new - old| > eps * |old|`) misclassifies
/// `old == 0`: *any* new width would count as unchanged. The absolute
/// floor fixes that while the relative term keeps large widths from
/// flapping on rounding noise.
pub fn filter_changed(old: f64, new: f64) -> bool {
    let scale = old.abs().max(new.abs());
    (new - old).abs() > f64::max(1e-12, 1e-12 * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_gp::{GpProblem, Monomial, Posynomial};

    fn mono(c: f64, e: &[(usize, f64)]) -> Posynomial {
        Posynomial::monomial(Monomial::new(c, e.iter().copied()).unwrap())
    }

    /// min a/x + b/y s.t. x + y <= budget.
    fn problem(a: f64, b: f64, budget: f64) -> GpProblem {
        let mut p = GpProblem::new(2);
        let mut obj = mono(a, &[(0, -1.0)]);
        obj.add(&mono(b, &[(1, -1.0)]));
        p.set_objective(obj).unwrap();
        let mut c = mono(1.0, &[(0, 1.0)]);
        c.add(&mono(1.0, &[(1, 1.0)]));
        p.add_constraint_le(c, budget).unwrap();
        p
    }

    #[test]
    fn cached_solves_track_drift_and_count_outcomes() {
        let (obs, _ring) = pq_obs::Obs::ring(16);
        let options = SolverOptions {
            obs: obs.clone(),
            ..SolverOptions::default()
        };
        let mut cache = UnitCache::new();
        let interior = [0.25, 0.25];

        let first = solve_cached(&problem(1.0, 1.0, 1.0), &interior, &options, &mut cache).unwrap();
        assert!((first.x[0] - 0.5).abs() < 1e-5);
        assert!(cache.has_solution());

        for step in 1..=5 {
            let a = 1.0 + 0.02 * step as f64;
            let p = problem(a, 1.0, 1.0);
            let sol = solve_cached(&p, &interior, &options, &mut cache).unwrap();
            let cold = pq_gp::solve_with_start(&p, &interior, &SolverOptions::default()).unwrap();
            assert!(
                (sol.objective - cold.objective).abs() < 1e-5 * cold.objective,
                "step {step}: warm {} vs cold {}",
                sol.objective,
                cold.objective
            );
            assert!(p.max_violation(&sol.x) <= 0.0);
        }
        let snap = obs.snapshot();
        let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(count(names::SOLVE_COLD_START), 1);
        assert_eq!(
            count(names::SOLVE_WARM_HIT) + count(names::SOLVE_WARM_REPAIR),
            5,
            "every recompute warm-started"
        );
        assert_eq!(count(names::SOLVE_COLD_FALLBACK), 0);
    }

    /// A cache seeded under one `Obs` (the untimed `Obs::null()` warm-up
    /// pass in benchmarks) must re-resolve its counter handles when the
    /// caller switches to the real registry — otherwise every warm-hit
    /// increment lands on the discarded seeding registry.
    #[test]
    fn counters_follow_a_registry_swap() {
        let mut cache = UnitCache::new();
        let interior = [0.25, 0.25];
        let seed_options = SolverOptions {
            obs: pq_obs::Obs::null(),
            ..SolverOptions::default()
        };
        solve_cached(
            &problem(1.0, 1.0, 1.0),
            &interior,
            &seed_options,
            &mut cache,
        )
        .unwrap();

        let (obs, _ring) = pq_obs::Obs::ring(16);
        let options = SolverOptions {
            obs: obs.clone(),
            ..SolverOptions::default()
        };
        solve_cached(&problem(1.02, 1.0, 1.0), &interior, &options, &mut cache).unwrap();
        let snap = obs.snapshot();
        let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(
            count(names::SOLVE_WARM_HIT) + count(names::SOLVE_WARM_REPAIR),
            1,
            "warm outcome must be recorded on the registry passed to *this* solve"
        );
    }

    #[test]
    fn shape_change_recompiles_instead_of_failing() {
        let options = SolverOptions {
            obs: pq_obs::Obs::null(),
            ..SolverOptions::default()
        };
        let mut cache = UnitCache::new();
        solve_cached(&problem(1.0, 1.0, 1.0), &[0.25, 0.25], &options, &mut cache).unwrap();
        // Different shape: 1 variable, different constraint count.
        let mut p1 = GpProblem::new(1);
        p1.set_objective(mono(1.0, &[(0, 1.0)])).unwrap();
        p1.add_lower_bound(0, 2.0).unwrap();
        let sol = solve_cached(&p1, &[4.0], &options, &mut cache).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn solve_cache_shapes_and_takes() {
        let mut cache = SolveCache::new();
        cache.resize(&[1, 2]);
        assert!(!cache.unit_mut(1, 1).has_solution());
        let taken = cache.take(0, 0);
        cache.put_back(0, 0, taken);
        // Reshaping preserves rows it can.
        cache.resize(&[1, 1]);
        let _ = cache.unit_mut(1, 0);
    }

    #[test]
    fn filter_change_tolerance_handles_zero_old_width() {
        // The regression this replaces: old == 0.0 made the pure relative
        // test classify every new width as "unchanged".
        assert!(filter_changed(0.0, 0.5));
        assert!(filter_changed(0.5, 0.0));
        assert!(!filter_changed(0.0, 0.0));
        assert!(!filter_changed(1.0, 1.0 + 1e-15));
        assert!(filter_changed(1.0, 1.001));
        assert!(!filter_changed(1e9, 1e9 * (1.0 + 1e-15)));
    }
}
