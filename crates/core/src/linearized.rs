//! First-order (gradient-bound) DAB assignment — an ablation baseline.
//!
//! Instead of the exact necessary-and-sufficient condition
//! `P(V+b) − P(V) ≤ B`, this scheme optimizes the refresh objective under
//! the *sufficient* first-order bound
//! `sum_i b_i · max_box |∂P/∂x_i| ≤ B`
//! (see [`pq_poly::linearized_sufficient`]). This is the natural
//! adaptation of gradient-style filter allocation (Olston & Widom's
//! adaptive filters reason this way for linear queries) to non-linear
//! polynomials: correct, rate-aware, optimally allocated — but built on a
//! conservative condition, so its DABs are strictly tighter than Optimal
//! Refresh's and it refreshes more. Isolates the value of the paper's
//! exact condition.

use std::collections::BTreeMap;

use pq_gp::{GpProblem, Posynomial};
use pq_poly::{linearized_sufficient, DabVarMap, PolynomialQuery};

use crate::assignment::{QueryAssignment, ValidityRange};
use crate::cache::{solve_cached, UnitCache};
use crate::context::SolveContext;
use crate::error::DabError;

/// Optimal refresh allocation under the first-order sufficient condition.
///
/// Accepts any query: mixed-sign bodies are first made conservative with
/// absolute coefficients (`P1 + P2`), as in [`crate::baseline`].
pub fn linearized_filter(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
) -> Result<QueryAssignment, DabError> {
    linearized_filter_cached(query, ctx, None)
}

/// [`linearized_filter`] with an optional warm-start cache (see
/// [`crate::cache::solve_cached`]).
pub(crate) fn linearized_filter_cached(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    let (p1, p2) = query.poly().split_pos_neg();
    let body = if p2.is_zero() {
        p1
    } else if p1.is_zero() {
        p2
    } else {
        p1.add(&p2)
    };
    let vmap = DabVarMap::for_polynomial(&body, false);
    let n = vmap.n_items();

    let mut problem = GpProblem::new(n);
    let mut objective = Posynomial::zero();
    let mut lambdas = Vec::with_capacity(n);
    for (k, &item) in vmap.items().iter().enumerate() {
        let lambda = ctx.rate(item)?;
        lambdas.push(lambda);
        objective.push(
            ctx.ddm
                .refresh_monomial(lambda, k)
                .expect("rate is floored positive"),
        );
    }
    problem.set_objective(objective)?;
    let condition = linearized_sufficient(&body, ctx.values, &vmap)?;
    problem.add_constraint_le(condition.clone(), query.qab())?;

    // Scalar strictly feasible start (the condition grows in every b).
    let mut s = 1.0_f64;
    let mut start = vec![s; n];
    let mut found = false;
    for _ in 0..400 {
        start.iter_mut().for_each(|v| *v = s);
        if condition.eval(&start) <= 0.5 * query.qab() {
            found = true;
            break;
        }
        s *= 0.5;
    }
    if !found {
        return Err(DabError::NoFeasibleStart);
    }
    let sol = match cache {
        Some(c) => solve_cached(&problem, &start, &ctx.gp, c)?,
        None => pq_gp::solve_with_start(&problem, &start, &ctx.gp)?,
    };

    let primary: BTreeMap<_, _> = vmap
        .items()
        .iter()
        .enumerate()
        .map(|(k, &item)| (item, sol.x[k]))
        .collect();
    let anchor = vmap
        .items()
        .iter()
        .map(|&item| Ok((item, ctx.value(item)?)))
        .collect::<Result<_, DabError>>()?;
    Ok(QueryAssignment {
        primary,
        validity: ValidityRange::AnchorOnly,
        anchor,
        recompute_rate: 0.0,
        refresh_rate: sol.objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppq::optimal_refresh;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn linearized_is_correct_but_tighter_than_optimal() {
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap();
        let values = [40.0, 20.0];
        let rates = [1.0, 2.0];
        let ctx = SolveContext::new(&values, &rates);
        let lin = linearized_filter(&q, &ctx).unwrap();
        let opt = optimal_refresh(&q, &ctx).unwrap();
        assert!(lin.respects_qab(&q, 1e-6));
        assert!(
            lin.refresh_rate >= opt.refresh_rate - 1e-9,
            "linearized {} must refresh at least as much as optimal {}",
            lin.refresh_rate,
            opt.refresh_rate
        );
    }

    #[test]
    fn handles_mixed_sign_queries() {
        let q = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 5.0).unwrap();
        let values = [20.0, 3.0, 18.0, 3.0];
        let rates = [1.0; 4];
        let ctx = SolveContext::new(&values, &rates);
        let a = linearized_filter(&q, &ctx).unwrap();
        assert!(a.respects_qab(&q, 1e-6));
        assert_eq!(a.validity, ValidityRange::AnchorOnly);
    }

    #[test]
    fn rate_awareness_still_applies() {
        // The faster item still gets the wider DAB under the linearized
        // condition.
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap();
        let values = [20.0, 20.0];
        let rates = [100.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = linearized_filter(&q, &ctx).unwrap();
        assert!(a.primary_dab(x(0)).unwrap() > a.primary_dab(x(1)).unwrap());
    }
}
