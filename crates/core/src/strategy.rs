//! One entry point dispatching over all assignment strategies.
//!
//! The simulator and bench harnesses treat strategies uniformly through
//! [`AssignmentStrategy`]; each variant maps to the algorithm described in
//! the module docs of [`crate::ppq`], [`crate::baseline`] and
//! [`crate::heuristics`].

use pq_poly::{Polynomial, PolynomialQuery, QueryClass};

use crate::assignment::QueryAssignment;
use crate::baseline::{equal_dab, per_item_split};
use crate::cache::UnitCache;
use crate::context::SolveContext;
use crate::error::DabError;
use crate::heuristics::{general_pq, solve_positive_cached, PpqMethod, PqHeuristic};
use crate::laq::linear_closed_form;

/// A complete per-query DAB assignment policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignmentStrategy {
    /// §III-A.1: optimal in refreshes; recomputes on every refresh.
    OptimalRefresh,
    /// §III-A.2: the paper's Dual-DAB approach with recomputation cost `mu`.
    DualDab {
        /// Recomputation cost in messages.
        mu: f64,
    },
    /// Sharfman-style per-item budget split (§II / §V-A comparison).
    PerItemSplit,
    /// Naive equal-width filter baseline.
    EqualDab,
    /// First-order gradient-bound allocation (ablation baseline; see
    /// [`crate::linearized`]).
    LinearizedFilter,
}

impl AssignmentStrategy {
    /// The modelled per-recomputation cost in messages: `mu` for Dual-DAB,
    /// the caller-chosen accounting constant elsewhere.
    pub fn mu(&self) -> Option<f64> {
        match self {
            AssignmentStrategy::DualDab { mu } => Some(*mu),
            _ => None,
        }
    }
}

impl std::fmt::Display for AssignmentStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentStrategy::OptimalRefresh => write!(f, "optimal-refresh"),
            AssignmentStrategy::DualDab { mu } => write!(f, "dual-dab(mu={mu})"),
            AssignmentStrategy::PerItemSplit => write!(f, "per-item-split"),
            AssignmentStrategy::EqualDab => write!(f, "equal-dab"),
            AssignmentStrategy::LinearizedFilter => write!(f, "linearized-filter"),
        }
    }
}

/// Assigns DABs for one query under `strategy`, using `heuristic` for
/// mixed-sign bodies. Linear queries take the closed form regardless of
/// strategy (they are strictly easier; §I-A), except under the baselines,
/// which apply their own rule uniformly.
pub fn assign_query(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    strategy: AssignmentStrategy,
    heuristic: PqHeuristic,
) -> Result<QueryAssignment, DabError> {
    let _span = ctx.gp.obs.timed(pq_obs::names::DAB_SOLVE);
    ctx.gp
        .obs
        .emit_with(pq_obs::names::CORE_ASSIGN, pq_obs::EventKind::Point, |e| {
            e.with("strategy", strategy.to_string())
                .with("heuristic", heuristic.name())
                .with("class", format!("{:?}", query.class()))
        });
    match strategy {
        AssignmentStrategy::PerItemSplit => per_item_split(query, ctx),
        AssignmentStrategy::EqualDab => equal_dab(query, ctx),
        AssignmentStrategy::LinearizedFilter => crate::linearized::linearized_filter(query, ctx),
        AssignmentStrategy::OptimalRefresh => {
            if query.class() == QueryClass::LinearAggregate {
                linear_closed_form(query, ctx)
            } else {
                general_pq(query, ctx, heuristic, PpqMethod::OptimalRefresh)
            }
        }
        AssignmentStrategy::DualDab { mu } => {
            if query.class() == QueryClass::LinearAggregate {
                linear_closed_form(query, ctx)
            } else {
                general_pq(query, ctx, heuristic, PpqMethod::DualDab { mu })
            }
        }
    }
}

/// Estimates the recomputation cost `mu` in messages, following the
/// worked example of §III-A.3: the solver's own cost is nominal; each
/// recomputation sends a DAB-change message to every source, and any
/// dissemination-network reorganization stalls the system for a period
/// equivalent to `reorganization_secs / mean_message_delay_secs`
/// messages.
///
/// The paper's example — 5 sources, a 1 s reorganization, 200 ms mean
/// message delay — gives `mu = 10`.
pub fn estimate_mu(
    n_sources: usize,
    reorganization_secs: f64,
    mean_message_delay_secs: f64,
) -> f64 {
    assert!(mean_message_delay_secs > 0.0 && reorganization_secs >= 0.0);
    n_sources as f64 + (reorganization_secs / mean_message_delay_secs).ceil()
}

/// One independently maintained piece of a query's DAB problem.
///
/// Most queries have a single unit (their own body and QAB). Under
/// **Half-and-Half** a mixed-sign query splits into *two* units —
/// `P1 : B/2` and `P2 : B/2` — each solved, validated and recomputed on
/// its own, exactly as §III-B.2 describes ("solve separately ... the DAB
/// for C is the minimum amongst the primary DABs calculated for P1 and
/// P2"). The simulator maintains units independently: a data movement
/// that only invalidates one side recomputes only that side.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentUnit {
    /// The unit's polynomial body (positive-coefficient for split units).
    pub body: Polynomial,
    /// The unit's accuracy budget.
    pub qab: f64,
}

/// Decomposes a query into its independently maintained units under
/// `strategy` + `heuristic`.
pub fn assignment_units(
    query: &PolynomialQuery,
    strategy: AssignmentStrategy,
    heuristic: PqHeuristic,
) -> Vec<AssignmentUnit> {
    let whole = || {
        vec![AssignmentUnit {
            body: query.poly().clone(),
            qab: query.qab(),
        }]
    };
    match strategy {
        // Baselines and the linearized filter handle mixed signs
        // internally and keep one unit.
        AssignmentStrategy::PerItemSplit
        | AssignmentStrategy::EqualDab
        | AssignmentStrategy::LinearizedFilter => whole(),
        AssignmentStrategy::OptimalRefresh | AssignmentStrategy::DualDab { .. } => {
            if query.class() != QueryClass::General {
                return whole();
            }
            let (p1, p2) = query.poly().split_pos_neg();
            if p1.is_zero() || p2.is_zero() {
                // Purely negative body: |deviation(-P2)| = |deviation(P2)|.
                return vec![AssignmentUnit {
                    body: if p1.is_zero() { p2 } else { p1 },
                    qab: query.qab(),
                }];
            }
            match heuristic {
                PqHeuristic::DifferentSum => vec![AssignmentUnit {
                    body: p1.add(&p2),
                    qab: query.qab(),
                }],
                PqHeuristic::HalfAndHalf => {
                    let half = query.qab() / 2.0;
                    vec![
                        AssignmentUnit {
                            body: p1,
                            qab: half,
                        },
                        AssignmentUnit {
                            body: p2,
                            qab: half,
                        },
                    ]
                }
            }
        }
    }
}

/// Solves one unit under `strategy`.
pub fn assign_unit(
    unit: &AssignmentUnit,
    ctx: &SolveContext<'_>,
    strategy: AssignmentStrategy,
) -> Result<QueryAssignment, DabError> {
    assign_unit_with_cache(unit, ctx, strategy, None)
}

/// Solves one unit under `strategy`, warm-starting the GP solve from
/// `cache` (and updating it with the new optimum). Closed-form strategies
/// ignore the cache; GP-backed ones reuse the compiled program, the last
/// solution and the solver workspace stored in it.
pub fn assign_unit_cached(
    unit: &AssignmentUnit,
    ctx: &SolveContext<'_>,
    strategy: AssignmentStrategy,
    cache: &mut UnitCache,
) -> Result<QueryAssignment, DabError> {
    assign_unit_with_cache(unit, ctx, strategy, Some(cache))
}

fn assign_unit_with_cache(
    unit: &AssignmentUnit,
    ctx: &SolveContext<'_>,
    strategy: AssignmentStrategy,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    let _span = ctx.gp.obs.timed(pq_obs::names::DAB_SOLVE);
    match strategy {
        AssignmentStrategy::PerItemSplit => {
            per_item_split(&PolynomialQuery::new(unit.body.clone(), unit.qab)?, ctx)
        }
        AssignmentStrategy::EqualDab => {
            equal_dab(&PolynomialQuery::new(unit.body.clone(), unit.qab)?, ctx)
        }
        AssignmentStrategy::LinearizedFilter => crate::linearized::linearized_filter_cached(
            &PolynomialQuery::new(unit.body.clone(), unit.qab)?,
            ctx,
            cache,
        ),
        AssignmentStrategy::OptimalRefresh => {
            solve_positive_or_general(unit, ctx, PpqMethod::OptimalRefresh, cache)
        }
        AssignmentStrategy::DualDab { mu } => {
            solve_positive_or_general(unit, ctx, PpqMethod::DualDab { mu }, cache)
        }
    }
}

fn solve_positive_or_general(
    unit: &AssignmentUnit,
    ctx: &SolveContext<'_>,
    method: PpqMethod,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    if unit.body.is_positive_coefficient() {
        solve_positive_cached(&unit.body, unit.qab, ctx, method, cache)
    } else {
        // A mixed-sign unit only arises when the caller bypassed
        // `assignment_units`; fall back to Different Sum.
        general_pq(
            &PolynomialQuery::new(unit.body.clone(), unit.qab)?,
            ctx,
            PqHeuristic::DifferentSum,
            method,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::ValidityRange;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn dispatch_covers_every_strategy_and_class() {
        let values = [20.0, 3.0, 15.0, 2.0];
        let rates = [0.5, 0.05, 0.4, 0.02];
        let ctx = SolveContext::new(&values, &rates);
        let queries = [
            PolynomialQuery::linear_aggregate([(1.0, x(0)), (2.0, x(1))], 1.0).unwrap(),
            PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap(),
            PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 5.0).unwrap(),
        ];
        let strategies = [
            AssignmentStrategy::OptimalRefresh,
            AssignmentStrategy::DualDab { mu: 5.0 },
            AssignmentStrategy::PerItemSplit,
            AssignmentStrategy::EqualDab,
            AssignmentStrategy::LinearizedFilter,
        ];
        for q in &queries {
            for &s in &strategies {
                let a = assign_query(q, &ctx, s, PqHeuristic::DifferentSum)
                    .unwrap_or_else(|e| panic!("{s} on {q}: {e}"));
                assert!(a.respects_qab(q, 1e-6), "{s} on {q}");
            }
        }
    }

    #[test]
    fn linear_queries_never_recompute_under_optimal_strategies() {
        let values = [20.0, 3.0];
        let rates = [0.5, 0.05];
        let ctx = SolveContext::new(&values, &rates);
        let q = PolynomialQuery::linear_aggregate([(1.0, x(0)), (2.0, x(1))], 1.0).unwrap();
        for s in [
            AssignmentStrategy::OptimalRefresh,
            AssignmentStrategy::DualDab { mu: 5.0 },
        ] {
            let a = assign_query(&q, &ctx, s, PqHeuristic::DifferentSum).unwrap();
            assert_eq!(a.validity, ValidityRange::Always, "{s}");
        }
    }

    #[test]
    fn units_split_only_under_half_and_half() {
        let values = [20.0, 3.0, 15.0, 2.0];
        let rates = [0.5, 0.05, 0.4, 0.02];
        let ctx = SolveContext::new(&values, &rates);
        let pq = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 5.0).unwrap();
        let dual = AssignmentStrategy::DualDab { mu: 5.0 };

        let hh = assignment_units(&pq, dual, PqHeuristic::HalfAndHalf);
        assert_eq!(hh.len(), 2);
        assert!(hh.iter().all(|u| u.body.is_positive_coefficient()));
        assert!(hh.iter().all(|u| (u.qab - 2.5).abs() < 1e-12));

        let ds = assignment_units(&pq, dual, PqHeuristic::DifferentSum);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].body.is_positive_coefficient());
        assert_eq!(ds[0].qab, 5.0);

        // PPQs and baselines keep one unit.
        let ppq = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap();
        assert_eq!(
            assignment_units(&ppq, dual, PqHeuristic::HalfAndHalf).len(),
            1
        );
        assert_eq!(
            assignment_units(
                &pq,
                AssignmentStrategy::PerItemSplit,
                PqHeuristic::HalfAndHalf
            )
            .len(),
            1
        );

        // Each unit solves and respects its own budget.
        for u in hh.iter().chain(&ds) {
            let a = assign_unit(u, &ctx, dual).unwrap();
            let uq = PolynomialQuery::new(u.body.clone(), u.qab).unwrap();
            assert!(a.respects_qab(&uq, 1e-6));
        }
    }

    #[test]
    fn mu_estimate_matches_papers_worked_example() {
        // §III-A.3: 5 sources, 1 s reorganization, 200 ms mean delay.
        assert_eq!(estimate_mu(5, 1.0, 0.2), 10.0);
        // No reorganization: only the DAB-change messages count.
        assert_eq!(estimate_mu(20, 0.0, 0.1), 20.0);
    }

    #[test]
    fn purely_negative_query_gets_single_unit() {
        let q = PolynomialQuery::arbitrage([], [(1.0, x(0), x(1))], 5.0).unwrap();
        let units = assignment_units(
            &q,
            AssignmentStrategy::DualDab { mu: 5.0 },
            PqHeuristic::HalfAndHalf,
        );
        assert_eq!(units.len(), 1);
        assert!(units[0].body.is_positive_coefficient());
        assert_eq!(units[0].qab, 5.0);
    }

    #[test]
    fn mu_accessor() {
        assert_eq!(AssignmentStrategy::DualDab { mu: 3.0 }.mu(), Some(3.0));
        assert_eq!(AssignmentStrategy::OptimalRefresh.mu(), None);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            AssignmentStrategy::OptimalRefresh.to_string(),
            "optimal-refresh"
        );
        assert_eq!(
            AssignmentStrategy::DualDab { mu: 5.0 }.to_string(),
            "dual-dab(mu=5)"
        );
    }
}
