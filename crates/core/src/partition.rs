//! Partitioning the query↔item bipartite graph into balanced shards.
//!
//! The AAO decomposition (§III) already solves independently per
//! connected unit of the query↔item graph, so connected components are
//! a natural shard seam: two queries that share no item (directly or
//! transitively) never interact — not through DAB minima, not through
//! refresh processing, not through joint solves. The partitioner
//! computes those components with a union-find over items, estimates
//! each component's refresh/recompute load, and packs whole components
//! onto `k` shards with an LPT (longest-processing-time) greedy bin
//! packing.
//!
//! A component whose load alone exceeds its fair share cannot be
//! packed whole without starving the other shards; such components are
//! split with a min-cut-style region-growing heuristic: queries are
//! peeled off greedily in order of shared-item affinity with the piece
//! grown so far, which keeps strongly coupled queries together and
//! pushes the cut through weakly shared items. Each item referenced
//! from more than one shard keeps a **home** shard (where its source
//! lives) and the remaining references become **cross edges** the
//! engine routes over inter-shard rings.
//!
//! Everything here is deterministic: ties break on lowest index, and
//! the plan depends only on the inputs, never on iteration order of a
//! hash map.

/// Inputs to [`partition`]: the bipartite graph plus per-node load
/// estimates. Loads are abstract weights (the simulator passes
/// estimated per-item refresh rates and per-query recompute costs);
/// only their ratios matter.
#[derive(Debug, Clone, Copy)]
pub struct PartitionInput<'a> {
    /// `query_items[q]` lists the items referenced by query `q`
    /// (duplicates allowed; they are ignored).
    pub query_items: &'a [Vec<u32>],
    /// Total number of items (ids in `query_items` must be `< n_items`).
    pub n_items: usize,
    /// Estimated load contributed by each item (e.g. refresh rate).
    pub item_load: &'a [f64],
    /// Estimated load contributed by each query (e.g. recompute cost;
    /// under shared cross-query evaluation, the marginal eval cost from
    /// `pq_poly::shared_query_loads` — distinct monomials a query
    /// introduces plus a small per-subscription scatter charge).
    pub query_load: &'a [f64],
}

/// One item referenced by queries outside its home shard. The home
/// shard owns the source (drifts the value, applies the installed
/// filter) and forwards accepted refreshes to each remote shard; remote
/// shards ship their local DAB minima back so the home's installed
/// filter stays the global minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdge {
    /// Global item id.
    pub item: u32,
    /// Shard owning the item's source.
    pub home: u32,
    /// A shard with at least one query referencing the item. Never
    /// equal to `home`; each `(item, remote)` pair appears exactly once.
    pub remote: u32,
}

/// The output of [`partition`]: a disjoint cover of queries and items
/// by `n_shards` shards, plus the cross edges of split components.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Number of shards (the `k` requested, possibly reduced when there
    /// is less work than shards — always at least 1).
    pub n_shards: usize,
    /// Shard of each query.
    pub query_shard: Vec<u32>,
    /// Home shard of each item (items referenced by no query are spread
    /// by load).
    pub item_home: Vec<u32>,
    /// Estimated load packed onto each shard. Sums to the total input
    /// load (cross edges do not double-count: an item's load stays with
    /// its home).
    pub shard_loads: Vec<f64>,
    /// Every `(item, home, remote)` reference crossing a shard
    /// boundary, each pair accounted exactly once, sorted by
    /// `(item, remote)`.
    pub cross_edges: Vec<CrossEdge>,
    /// Connected components found before any splitting.
    pub n_components: usize,
}

impl PartitionPlan {
    /// True when no component had to be split — every shard is fully
    /// independent and the engine needs no inter-shard rings.
    pub fn is_clean(&self) -> bool {
        self.cross_edges.is_empty()
    }

    /// The remote shards referencing each item (grouped view of
    /// [`PartitionPlan::cross_edges`]): `(item, remotes)` sorted by
    /// item, remotes sorted ascending.
    pub fn subscribers(&self) -> Vec<(u32, Vec<u32>)> {
        let mut out: Vec<(u32, Vec<u32>)> = Vec::new();
        for e in &self.cross_edges {
            match out.last_mut() {
                Some((item, remotes)) if *item == e.item => remotes.push(e.remote),
                _ => out.push((e.item, vec![e.remote])),
            }
        }
        out
    }
}

/// A component packed whole may exceed the ideal share by this factor
/// before it is split ([`partition`]'s default). Splitting buys balance
/// but costs ring traffic, so mild imbalance is preferred to a cut.
pub const DEFAULT_SPLIT_SLACK: f64 = 1.25;

/// Split slack to use when the GP layer solves with the sparse KKT
/// backend ([`pq_gp::KktMode::Sparse`]): sparse factorization keeps the
/// per-unit solve near-linear in terms instead of cubic in variables,
/// so much larger units stay cheap and avoiding ring traffic is worth
/// far more imbalance than the dense default tolerates.
pub const SPARSE_SPLIT_SLACK: f64 = 8.0;

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins: keeps component ids stable and ordered.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Packs the query↔item graph into `k` balanced shards. See the module
/// docs for the algorithm; the invariants (each tested by the
/// partition proptest):
///
/// * every query and every item lands on exactly one shard;
/// * `shard_loads` sums to the total input load;
/// * for every query `q` and item `i ∈ q`: either
///   `item_home[i] == query_shard[q]`, or `cross_edges` contains
///   `(i, item_home[i], query_shard[q])` exactly once;
/// * with `k == 1` there are no cross edges.
///
/// # Panics
/// Panics if `k == 0`, a load slice length mismatches, or an item id
/// is out of range.
pub fn partition(input: &PartitionInput<'_>, k: usize) -> PartitionPlan {
    partition_with_slack(input, k, DEFAULT_SPLIT_SLACK)
}

/// [`partition`] with an explicit split-slack factor: a component whose
/// load exceeds `total / k * slack` is split. The default
/// ([`partition`]) uses a tight slack tuned for dense per-unit solves;
/// pass [`SPARSE_SPLIT_SLACK`] to keep large components whole when the
/// solver's sparse KKT backend makes big units affordable.
///
/// # Panics
/// Panics if `k == 0`, `slack` is not finite and `>= 1`, a load slice
/// length mismatches, or an item id is out of range.
pub fn partition_with_slack(input: &PartitionInput<'_>, k: usize, slack: f64) -> PartitionPlan {
    assert!(k > 0, "cannot partition into zero shards");
    assert!(
        slack.is_finite() && slack >= 1.0,
        "split slack must be finite and >= 1, got {slack}"
    );
    assert_eq!(input.item_load.len(), input.n_items, "item_load length");
    assert_eq!(
        input.query_load.len(),
        input.query_items.len(),
        "query_load length"
    );
    let n_items = input.n_items;
    let n_queries = input.query_items.len();

    // Connected components over items (via queries).
    let mut uf = UnionFind::new(n_items);
    for items in input.query_items {
        if let Some((&first, rest)) = items.split_first() {
            assert!((first as usize) < n_items, "item {first} out of range");
            for &i in rest {
                assert!((i as usize) < n_items, "item {i} out of range");
                uf.union(first, i);
            }
        }
    }
    // Dense component ids in order of first item appearance.
    let mut comp_of_root: Vec<u32> = vec![u32::MAX; n_items];
    let mut item_comp: Vec<u32> = vec![u32::MAX; n_items];
    let mut n_components = 0u32;
    for i in 0..n_items as u32 {
        let root = uf.find(i);
        if comp_of_root[root as usize] == u32::MAX {
            comp_of_root[root as usize] = n_components;
            n_components += 1;
        }
        item_comp[i as usize] = comp_of_root[root as usize];
    }

    // Component membership and loads. Queries with no items attach to
    // no component; they are placed individually at the end.
    let nc = n_components as usize;
    let mut comp_queries: Vec<Vec<u32>> = vec![Vec::new(); nc];
    let mut comp_items: Vec<Vec<u32>> = vec![Vec::new(); nc];
    let mut comp_load = vec![0.0f64; nc];
    let mut referenced = vec![false; n_items];
    for (qi, items) in input.query_items.iter().enumerate() {
        if let Some(&first) = items.first() {
            let c = item_comp[first as usize] as usize;
            comp_queries[c].push(qi as u32);
            comp_load[c] += input.query_load[qi];
            for &i in items {
                referenced[i as usize] = true;
            }
        }
    }
    for i in 0..n_items {
        if referenced[i] {
            let c = item_comp[i] as usize;
            comp_items[c].push(i as u32);
            comp_load[c] += input.item_load[i];
        }
    }

    let total_load: f64 = comp_load.iter().sum::<f64>()
        + (0..n_items)
            .filter(|&i| !referenced[i])
            .map(|i| input.item_load[i])
            .sum::<f64>()
        + input
            .query_items
            .iter()
            .enumerate()
            .filter(|(_, items)| items.is_empty())
            .map(|(qi, _)| input.query_load[qi])
            .sum::<f64>();
    let threshold = total_load / k as f64 * slack;

    let mut query_shard = vec![u32::MAX; n_queries];
    let mut item_home = vec![u32::MAX; n_items];
    let mut shard_loads = vec![0.0f64; k];
    let least_loaded = |loads: &[f64]| -> usize {
        let mut best = 0;
        for (s, &l) in loads.iter().enumerate().skip(1) {
            if l < loads[best] {
                best = s;
            }
        }
        best
    };

    // LPT over whole components that fit; oversized ones split first.
    // Order: descending load, ties by lowest component id.
    let mut order: Vec<u32> = (0..n_components).collect();
    order.sort_by(|&a, &b| {
        comp_load[b as usize]
            .partial_cmp(&comp_load[a as usize])
            .expect("finite loads")
            .then(a.cmp(&b))
    });
    let mut cross_pairs: Vec<(u32, u32)> = Vec::new(); // (item, remote shard)
    for &c in &order {
        let c = c as usize;
        if comp_queries[c].is_empty() {
            continue;
        }
        if k > 1 && comp_load[c] > threshold {
            split_component(
                input,
                &comp_queries[c],
                comp_load[c],
                &mut query_shard,
                &mut item_home,
                &mut shard_loads,
                &mut cross_pairs,
                threshold,
            );
        } else {
            let s = least_loaded(&shard_loads) as u32;
            shard_loads[s as usize] += comp_load[c];
            for &qi in &comp_queries[c] {
                query_shard[qi as usize] = s;
            }
            for &i in &comp_items[c] {
                item_home[i as usize] = s;
            }
        }
    }
    // Itemless queries: cheapest shard each, in query order.
    for (qi, items) in input.query_items.iter().enumerate() {
        if items.is_empty() {
            let s = least_loaded(&shard_loads) as u32;
            shard_loads[s as usize] += input.query_load[qi];
            query_shard[qi] = s;
        }
    }
    // Unreferenced items: spread by load so their drift cost balances.
    for i in 0..n_items {
        if !referenced[i] {
            let s = least_loaded(&shard_loads) as u32;
            shard_loads[s as usize] += input.item_load[i];
            item_home[i] = s;
        }
    }

    cross_pairs.sort_unstable();
    cross_pairs.dedup();
    let cross_edges = cross_pairs
        .into_iter()
        .map(|(item, remote)| CrossEdge {
            item,
            home: item_home[item as usize],
            remote,
        })
        .collect();

    PartitionPlan {
        n_shards: k,
        query_shard,
        item_home,
        shard_loads,
        cross_edges,
        n_components: nc,
    }
}

/// Splits one oversized component across shards by greedy region
/// growing. Pieces are grown query by query: the next query added is
/// the unplaced one sharing the most items with the piece so far
/// (lowest query id on ties) — a local min-cut heuristic that keeps
/// densely coupled queries on one side of the cut. A piece closes when
/// its load reaches the component's fair share; each piece then lands
/// on the currently least-loaded shard. Items are homed on the shard
/// of the first piece that references them; every later reference from
/// a different shard becomes a cross pair.
#[allow(clippy::too_many_arguments)]
fn split_component(
    input: &PartitionInput<'_>,
    queries: &[u32],
    comp_load: f64,
    query_shard: &mut [u32],
    item_home: &mut [u32],
    shard_loads: &mut [f64],
    cross_pairs: &mut Vec<(u32, u32)>,
    threshold: f64,
) {
    // Fair share per piece; the last piece absorbs the remainder.
    let n_pieces = (comp_load / threshold).ceil().max(2.0) as usize;
    let piece_target = comp_load / n_pieces as f64;

    let mut item_first_shard: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    let mut remaining: Vec<u32> = queries.to_vec();
    while !remaining.is_empty() {
        // Open a new piece on the least-loaded shard.
        let shard = {
            let mut best = 0usize;
            for (s, &l) in shard_loads.iter().enumerate().skip(1) {
                if l < shard_loads[best] {
                    best = s;
                }
            }
            best as u32
        };
        let mut piece_load = 0.0f64;
        let mut piece_items: std::collections::HashSet<u32> = std::collections::HashSet::new();
        // Seed: the unplaced query with the highest total load (it
        // anchors the region; ties to lowest id).
        let mut seed_idx = 0usize;
        let mut seed_load = f64::NEG_INFINITY;
        for (idx, &qi) in remaining.iter().enumerate() {
            let l = input.query_load[qi as usize];
            if l > seed_load {
                seed_load = l;
                seed_idx = idx;
            }
        }
        let mut next = Some(seed_idx);
        while let Some(idx) = next {
            let qi = remaining.swap_remove(idx);
            remaining.sort_unstable(); // keep deterministic order after swap_remove
            query_shard[qi as usize] = shard;
            piece_load += input.query_load[qi as usize];
            for &i in &input.query_items[qi as usize] {
                if piece_items.insert(i) {
                    match item_first_shard.entry(i) {
                        std::collections::hash_map::Entry::Vacant(v) => {
                            // First reference anywhere: this shard is home
                            // and carries the item's load.
                            v.insert(shard);
                            item_home[i as usize] = shard;
                            piece_load += input.item_load[i as usize];
                        }
                        std::collections::hash_map::Entry::Occupied(o) => {
                            let home = *o.get();
                            if home != shard {
                                cross_pairs.push((i, shard));
                            }
                        }
                    }
                }
            }
            if piece_load >= piece_target || remaining.is_empty() {
                next = None;
            } else {
                // Affinity: most shared items with the piece; ties to
                // lowest query id (remaining is sorted, so the first
                // max wins).
                let mut best_idx = 0usize;
                let mut best_aff = -1i64;
                for (jdx, &cand) in remaining.iter().enumerate() {
                    let aff = input.query_items[cand as usize]
                        .iter()
                        .filter(|i| piece_items.contains(i))
                        .count() as i64;
                    if aff > best_aff {
                        best_aff = aff;
                        best_idx = jdx;
                    }
                }
                next = Some(best_idx);
            }
        }
        shard_loads[shard as usize] += piece_load;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    /// Checks the plan invariants against its input; returns cross-edge
    /// count. The integration proptest mirrors these checks.
    fn check_invariants(input: &PartitionInput<'_>, plan: &PartitionPlan) -> usize {
        let k = plan.n_shards as u32;
        assert_eq!(plan.query_shard.len(), input.query_items.len());
        assert_eq!(plan.item_home.len(), input.n_items);
        for &s in &plan.query_shard {
            assert!(s < k, "query shard {s} out of range");
        }
        for &s in &plan.item_home {
            assert!(s < k, "item home {s} out of range");
        }
        // Every cross-shard reference accounted exactly once.
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (qi, items) in input.query_items.iter().enumerate() {
            let qs = plan.query_shard[qi];
            for &i in items {
                let home = plan.item_home[i as usize];
                if home != qs {
                    expected.push((i, qs));
                }
            }
        }
        expected.sort_unstable();
        expected.dedup();
        let actual: Vec<(u32, u32)> = plan
            .cross_edges
            .iter()
            .map(|e| (e.item, e.remote))
            .collect();
        assert_eq!(actual, expected, "cross edges must match references");
        for e in &plan.cross_edges {
            assert_eq!(e.home, plan.item_home[e.item as usize]);
            assert_ne!(e.home, e.remote);
        }
        // Loads sum to the unsharded total.
        let total: f64 = input.item_load.iter().sum::<f64>() + input.query_load.iter().sum::<f64>();
        let packed: f64 = plan.shard_loads.iter().sum();
        assert!(
            (total - packed).abs() <= 1e-9 * (1.0 + total.abs()),
            "load sum {packed} != total {total}"
        );
        plan.cross_edges.len()
    }

    #[test]
    fn single_shard_is_trivial_and_clean() {
        let query_items = vec![vec![0, 1], vec![1, 2], vec![3, 4]];
        let input = PartitionInput {
            query_items: &query_items,
            n_items: 5,
            item_load: &uniform(5),
            query_load: &uniform(3),
        };
        let plan = partition(&input, 1);
        check_invariants(&input, &plan);
        assert!(plan.is_clean());
        assert!(plan.query_shard.iter().all(|&s| s == 0));
        assert!(plan.item_home.iter().all(|&s| s == 0));
        assert_eq!(plan.n_components, 2); // {0,1,2} and {3,4}
    }

    #[test]
    fn disjoint_components_pack_without_cross_edges() {
        // Four independent two-item queries -> 2 shards, clean split.
        let query_items = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]];
        let input = PartitionInput {
            query_items: &query_items,
            n_items: 8,
            item_load: &uniform(8),
            query_load: &uniform(4),
        };
        let plan = partition(&input, 2);
        check_invariants(&input, &plan);
        assert!(plan.is_clean());
        let l0 = plan.shard_loads[0];
        let l1 = plan.shard_loads[1];
        assert!((l0 - l1).abs() <= 1e-9, "balanced: {l0} vs {l1}");
        // Items follow their query's shard.
        for (qi, items) in query_items.iter().enumerate() {
            for &i in items {
                assert_eq!(plan.item_home[i as usize], plan.query_shard[qi]);
            }
        }
    }

    #[test]
    fn one_giant_component_splits_with_cross_edges() {
        // A chain q_i = {i, i+1} over 33 items: one component far above
        // any fair share at k = 4 -> must split, and the chain structure
        // means each cut costs exactly one shared item.
        let query_items: Vec<Vec<u32>> = (0..32u32).map(|i| vec![i, i + 1]).collect();
        let input = PartitionInput {
            query_items: &query_items,
            n_items: 33,
            item_load: &uniform(33),
            query_load: &uniform(32),
        };
        let plan = partition(&input, 4);
        check_invariants(&input, &plan);
        assert!(!plan.is_clean(), "a giant chain must split");
        let shards_used: std::collections::HashSet<u32> =
            plan.query_shard.iter().copied().collect();
        assert!(shards_used.len() >= 2, "split must use multiple shards");
        // Region growing over a chain keeps cuts rare: far fewer cross
        // edges than references.
        assert!(
            plan.cross_edges.len() < 16,
            "chain cut too wide: {} cross edges",
            plan.cross_edges.len()
        );
    }

    #[test]
    fn widened_slack_keeps_large_components_whole() {
        // The 33-item chain splits at the default slack (previous test)
        // but packs whole — no cross edges — once the slack admits a
        // component holding most of the total load.
        let query_items: Vec<Vec<u32>> = (0..32u32).map(|i| vec![i, i + 1]).collect();
        let input = PartitionInput {
            query_items: &query_items,
            n_items: 33,
            item_load: &uniform(33),
            query_load: &uniform(32),
        };
        let plan = partition_with_slack(&input, 4, SPARSE_SPLIT_SLACK);
        check_invariants(&input, &plan);
        assert!(plan.is_clean(), "wide slack must avoid the split");
        let first = plan.query_shard[0];
        assert!(plan.query_shard.iter().all(|&s| s == first));
    }

    #[test]
    #[should_panic(expected = "split slack")]
    fn rejects_sub_unit_slack() {
        let input = PartitionInput {
            query_items: &[],
            n_items: 0,
            item_load: &[],
            query_load: &[],
        };
        partition_with_slack(&input, 1, 0.5);
    }

    #[test]
    fn unreferenced_items_and_itemless_queries_are_spread() {
        let query_items = vec![vec![0u32], vec![]];
        let input = PartitionInput {
            query_items: &query_items,
            n_items: 4,
            item_load: &[10.0, 1.0, 1.0, 1.0],
            query_load: &[1.0, 1.0],
        };
        let plan = partition(&input, 2);
        check_invariants(&input, &plan);
        // Items 1..3 are unreferenced but still get homes.
        assert!(plan.item_home.iter().all(|&s| s < 2));
        assert!(plan.query_shard.iter().all(|&s| s < 2));
    }

    #[test]
    fn subscribers_group_cross_edges_by_item() {
        let plan = PartitionPlan {
            n_shards: 3,
            query_shard: vec![],
            item_home: vec![0, 0],
            shard_loads: vec![0.0; 3],
            cross_edges: vec![
                CrossEdge {
                    item: 0,
                    home: 0,
                    remote: 1,
                },
                CrossEdge {
                    item: 0,
                    home: 0,
                    remote: 2,
                },
                CrossEdge {
                    item: 1,
                    home: 0,
                    remote: 2,
                },
            ],
            n_components: 1,
        };
        assert_eq!(plan.subscribers(), vec![(0, vec![1, 2]), (1, vec![2])]);
    }
}
