//! Baseline DAB-assignment schemes for comparison (§II, §V-A).
//!
//! * [`per_item_split`] — an adaptation of the geometric approach of
//!   Sharfman et al. (SIGMOD'06), reference \[5\] of the paper: instead of
//!   one necessary-and-sufficient condition, the accuracy budget `B` is
//!   split into `n` per-item sufficient conditions (`B/n` each), yielding
//!   more stringent DABs than the optimal formulation (§V-A,
//!   "Comparison with related work"). A final global scale-down keeps the
//!   combined cross terms within `B`, preserving correctness.
//!
//! * [`equal_dab`] — the naive scheme: one common DAB width for every
//!   item, as large as the QAB allows. Ignores both weights and rates.
//!
//! Both are value-dependent with no validity range, so — like Optimal
//! Refresh — they must be recomputed on every refresh.

use std::collections::BTreeMap;

use pq_poly::{deviation_posynomial, DabVarMap, Polynomial, PolynomialQuery};

use crate::assignment::{QueryAssignment, ValidityRange};
use crate::context::SolveContext;
use crate::error::DabError;

/// Per-item budget-split baseline (Sharfman-style, adapted).
pub fn per_item_split(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
) -> Result<QueryAssignment, DabError> {
    let body = abs_body(query.poly());
    let vmap = DabVarMap::for_polynomial(&body, false);
    let n = vmap.n_items();
    let condition = deviation_posynomial(&body, ctx.values, &vmap)?;
    let budget = query.qab() / n as f64;

    // Per-item: largest b_i whose solo deviation fits B/n.
    let mut dabs = vec![0.0; n];
    let mut probe = vec![0.0; n];
    for k in 0..n {
        probe.iter_mut().for_each(|v| *v = 0.0);
        // Zero entries are fine: deviation posynomials have positive
        // exponents only, so 0^e = 0 and untouched items contribute 0.
        dabs[k] = bisect_largest(|b| {
            probe[k] = b;
            let g = condition.eval(&probe);
            probe[k] = 0.0;
            g <= budget
        });
    }

    // Global correctness pass: cross terms (b_i * b_j) can push the
    // combined deviation past B; scale down uniformly if needed.
    let total = condition.eval(&dabs);
    if total > query.qab() {
        let t = bisect_largest(|t| {
            let scaled: Vec<f64> = dabs.iter().map(|b| b * t).collect();
            condition.eval(&scaled) <= query.qab()
        });
        for b in &mut dabs {
            *b *= t.min(1.0);
        }
    }

    finish(ctx, &vmap, dabs)
}

/// Equal-width baseline: the largest common DAB satisfying the QAB.
pub fn equal_dab(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
) -> Result<QueryAssignment, DabError> {
    let body = abs_body(query.poly());
    let vmap = DabVarMap::for_polynomial(&body, false);
    let n = vmap.n_items();
    let condition = deviation_posynomial(&body, ctx.values, &vmap)?;
    let s = bisect_largest(|s| condition.eval(&vec![s; n]) <= query.qab());
    finish(ctx, &vmap, vec![s; n])
}

/// Conservative positive-coefficient body: `P1 + P2` (abs coefficients);
/// its deviation dominates the deviation of `P = P1 - P2` (Claim 1).
fn abs_body(poly: &Polynomial) -> Polynomial {
    let (p1, p2) = poly.split_pos_neg();
    if p2.is_zero() {
        p1
    } else if p1.is_zero() {
        p2
    } else {
        p1.add(&p2)
    }
}

fn finish(
    ctx: &SolveContext<'_>,
    vmap: &DabVarMap,
    dabs: Vec<f64>,
) -> Result<QueryAssignment, DabError> {
    let mut primary = BTreeMap::new();
    let mut anchor = BTreeMap::new();
    let mut refresh_rate = 0.0;
    for (k, &item) in vmap.items().iter().enumerate() {
        primary.insert(item, dabs[k]);
        anchor.insert(item, ctx.value(item)?);
        refresh_rate += ctx.ddm.refresh_rate(ctx.rate(item)?, dabs[k].max(1e-300));
    }
    Ok(QueryAssignment {
        primary,
        validity: ValidityRange::AnchorOnly,
        anchor,
        recompute_rate: 0.0,
        refresh_rate,
    })
}

/// Largest `v > 0` satisfying the monotone predicate, via doubling then
/// 80 bisection steps. Returns 0 if even tiny values fail.
fn bisect_largest(mut ok: impl FnMut(f64) -> bool) -> f64 {
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    if ok(hi) {
        for _ in 0..200 {
            let next = hi * 2.0;
            if ok(next) {
                hi = next;
            } else {
                break;
            }
        }
        lo = hi;
        hi *= 2.0;
    } else {
        // Shrink until feasible to establish a bracket.
        let mut found = false;
        for _ in 0..400 {
            hi *= 0.5;
            if ok(hi) {
                lo = hi;
                hi *= 2.0;
                found = true;
                break;
            }
        }
        if !found {
            return 0.0;
        }
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppq::optimal_refresh;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn per_item_split_is_more_stringent_than_optimal() {
        // §V-A: the n-sufficient-conditions approach yields tighter DABs,
        // hence more refreshes, than Optimal Refresh.
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 5.0).unwrap();
        let values = [40.0, 20.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let base = per_item_split(&q, &ctx).unwrap();
        let opt = optimal_refresh(&q, &ctx).unwrap();
        assert!(
            base.refresh_rate >= opt.refresh_rate,
            "baseline refreshes {} must be >= optimal {}",
            base.refresh_rate,
            opt.refresh_rate
        );
        assert!(base.respects_qab(&q, 1e-6));
    }

    #[test]
    fn per_item_split_handles_cross_terms_correctly() {
        // Without the scale-down pass, xy with per-item budgets B/2 each
        // would overshoot by b_x * b_y.
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 4.0).unwrap();
        let values = [2.0, 2.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = per_item_split(&q, &ctx).unwrap();
        assert!(a.respects_qab(&q, 1e-9));
        let bx = a.primary_dab(x(0)).unwrap();
        let by = a.primary_dab(x(1)).unwrap();
        // Solo budgets alone give b = 1 each; total 2+2+1 = 5 > 4, so the
        // scale-down must have fired.
        assert!(bx < 1.0 && by < 1.0, "bx={bx} by={by}");
    }

    #[test]
    fn equal_dab_assigns_common_width() {
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1)), (1.0, x(2), x(3))], 6.0).unwrap();
        let values = [10.0, 1.0, 5.0, 2.0];
        let rates = [1.0; 4];
        let ctx = SolveContext::new(&values, &rates);
        let a = equal_dab(&q, &ctx).unwrap();
        let widths: Vec<f64> = a.primary.values().copied().collect();
        assert!(widths.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert!(a.respects_qab(&q, 1e-6));
    }

    #[test]
    fn baselines_handle_mixed_sign_queries() {
        let q = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 5.0).unwrap();
        let values = [20.0, 3.0, 18.0, 3.0];
        let rates = [1.0; 4];
        let ctx = SolveContext::new(&values, &rates);
        for a in [
            per_item_split(&q, &ctx).unwrap(),
            equal_dab(&q, &ctx).unwrap(),
        ] {
            assert!(a.respects_qab(&q, 1e-6));
            assert_eq!(a.validity, ValidityRange::AnchorOnly);
        }
    }

    #[test]
    fn matches_paper_comparison_shape() {
        // §V-A comparison (B = 50 at V = (40, 20)): the per-item-split
        // baseline solves n sufficient conditions and ends up with a worse
        // refresh objective than Optimal Refresh's single
        // necessary-and-sufficient condition.
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 50.0).unwrap();
        let values = [40.0, 20.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let base = per_item_split(&q, &ctx).unwrap();
        let opt = optimal_refresh(&q, &ctx).unwrap();
        assert!(
            opt.refresh_rate < base.refresh_rate,
            "optimal {} vs baseline {}",
            opt.refresh_rate,
            base.refresh_rate
        );
        // Both saturate the QAB but allocate differently: the baseline's
        // per-item budgets force b_x/b_y = V_y-to-V_x inverse proportions.
        let ratio = base.primary_dab(x(0)).unwrap() / base.primary_dab(x(1)).unwrap();
        assert!((ratio - 2.0).abs() < 1e-6, "baseline ratio {ratio}");
    }
}
