//! Heuristics for general (mixed-sign) polynomial queries (§III-B).
//!
//! No efficient technique finds optimal DABs for a polynomial with
//! positive *and* negative coefficients — the QAB condition stops being a
//! posynomial constraint. The paper's key observation: any polynomial
//! splits as `P = P1 − P2` with `P1, P2` positive-coefficient. Two
//! heuristics follow:
//!
//! * **Half and Half** — solve `P1 : B/2` and `P2 : B/2` separately and
//!   install the per-item minimum. Correct because `|ΔP| > B` implies
//!   `|ΔP1| > B/2` or `|ΔP2| > B/2`.
//! * **Different Sum** — solve the single PPQ `P1 + P2 : B`. Correct by
//!   Claim 1 (the `Q' = P1 + P2` condition dominates the `Q = P1 − P2`
//!   condition term-by-term), and provably near-optimal for independent
//!   sub-polynomials with small DABs (Claim 2: within `1/(1−α)^d` of
//!   optimal under the monotonic ddm).

use pq_poly::{Polynomial, PolynomialQuery, QueryClass};

use crate::assignment::{QueryAssignment, ValidityRange};
use crate::cache::UnitCache;
use crate::context::SolveContext;
use crate::error::DabError;
use crate::laq::linear_closed_form;
use crate::ppq::{dual_dab_cached, optimal_refresh_cached};

/// Which §III-B heuristic to use for mixed-sign queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqHeuristic {
    /// Solve `P1 : B/2` and `P2 : B/2` separately; min per item.
    HalfAndHalf,
    /// Solve `P1 + P2 : B` as one PPQ (the paper's recommendation).
    DifferentSum,
}

impl PqHeuristic {
    /// Stable lowercase name used in telemetry and result tables.
    pub fn name(&self) -> &'static str {
        match self {
            PqHeuristic::HalfAndHalf => "half-and-half",
            PqHeuristic::DifferentSum => "different-sum",
        }
    }
}

/// How each positive-coefficient (sub-)problem is solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PpqMethod {
    /// §III-A.1 — optimal in refreshes, recomputes on every refresh.
    OptimalRefresh,
    /// §III-A.2 — Dual-DAB with recomputation cost `mu`.
    DualDab {
        /// Recomputation cost in messages.
        mu: f64,
    },
}

/// Assigns DABs for a general polynomial query `P : B` via `heuristic`,
/// solving each positive-coefficient piece with `method`.
///
/// Also accepts pure PPQs and LAQs (they skip the split).
pub fn general_pq(
    query: &PolynomialQuery,
    ctx: &SolveContext<'_>,
    heuristic: PqHeuristic,
    method: PpqMethod,
) -> Result<QueryAssignment, DabError> {
    let (p1, p2) = query.poly().split_pos_neg();
    let split = if p2.is_zero() || p1.is_zero() {
        "single-sign"
    } else {
        heuristic.name()
    };
    ctx.gp
        .obs
        .emit_with(pq_obs::names::CORE_ASSIGN, pq_obs::EventKind::Point, |e| {
            e.with("split", split).with("qab", query.qab()).with(
                "method",
                match method {
                    PpqMethod::OptimalRefresh => "optimal-refresh",
                    PpqMethod::DualDab { .. } => "dual-dab",
                },
            )
        });
    if p2.is_zero() {
        return solve_positive(&p1, query.qab(), ctx, method);
    }
    if p1.is_zero() {
        // P = -P2: the deviation of -P2 equals the deviation of P2.
        return solve_positive(&p2, query.qab(), ctx, method);
    }
    match heuristic {
        PqHeuristic::DifferentSum => solve_positive(&p1.add(&p2), query.qab(), ctx, method),
        PqHeuristic::HalfAndHalf => {
            let half = query.qab() / 2.0;
            let a1 = solve_positive(&p1, half, ctx, method)?;
            let a2 = solve_positive(&p2, half, ctx, method)?;
            Ok(merge_min(a1, a2, ctx))
        }
    }
}

/// Solves a positive-coefficient polynomial `P : B`, dispatching linear
/// bodies to the closed form.
pub(crate) fn solve_positive(
    poly: &Polynomial,
    qab: f64,
    ctx: &SolveContext<'_>,
    method: PpqMethod,
) -> Result<QueryAssignment, DabError> {
    solve_positive_cached(poly, qab, ctx, method, None)
}

/// [`solve_positive`] with an optional warm-start cache. Linear bodies take
/// the closed form (nothing to cache); GP solves thread the cache through.
pub(crate) fn solve_positive_cached(
    poly: &Polynomial,
    qab: f64,
    ctx: &SolveContext<'_>,
    method: PpqMethod,
    cache: Option<&mut UnitCache>,
) -> Result<QueryAssignment, DabError> {
    let q = PolynomialQuery::new(poly.clone(), qab)?;
    match q.class() {
        QueryClass::LinearAggregate => linear_closed_form(&q, ctx),
        _ => match method {
            PpqMethod::OptimalRefresh => optimal_refresh_cached(&q, ctx, cache),
            PpqMethod::DualDab { mu } => dual_dab_cached(&q, ctx, mu, cache),
        },
    }
}

/// Half-and-Half combination: per-item minimum primary DAB, intersection
/// of validity ranges, summed recomputation rates.
fn merge_min(a1: QueryAssignment, a2: QueryAssignment, ctx: &SolveContext<'_>) -> QueryAssignment {
    let mut primary = a1.primary.clone();
    for (&item, &b) in &a2.primary {
        primary
            .entry(item)
            .and_modify(|cur| *cur = cur.min(b))
            .or_insert(b);
    }
    let mut anchor = a1.anchor.clone();
    for (&item, &v) in &a2.anchor {
        anchor.entry(item).or_insert(v);
    }

    let validity = match (&a1.validity, &a2.validity) {
        (ValidityRange::Always, ValidityRange::Always) => ValidityRange::Always,
        (ValidityRange::Always, ValidityRange::Box(c)) => ValidityRange::Box(c.clone()),
        (ValidityRange::Box(c), ValidityRange::Always) => ValidityRange::Box(c.clone()),
        (ValidityRange::Box(c1), ValidityRange::Box(c2)) => {
            let mut merged = c1.clone();
            for (&item, &c) in c2 {
                merged
                    .entry(item)
                    .and_modify(|cur| *cur = cur.min(c))
                    .or_insert(c);
            }
            ValidityRange::Box(merged)
        }
        // Any AnchorOnly side makes the combination anchor-only.
        _ => ValidityRange::AnchorOnly,
    };

    // The installed (minimum) DABs change the actual refresh rate.
    let refresh_rate = primary
        .iter()
        .map(|(&item, &b)| {
            let lambda = ctx.rate(item).unwrap_or(1e-9);
            ctx.ddm.refresh_rate(lambda, b)
        })
        .sum();
    QueryAssignment {
        primary,
        validity,
        anchor,
        recompute_rate: a1.recompute_rate + a2.recompute_rate,
        refresh_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_poly::ItemId;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    /// Q = x0 x1 - x2 x3 : B — the paper's running example (§III-B).
    fn arbitrage(qab: f64) -> PolynomialQuery {
        PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], qab).unwrap()
    }

    fn ctx_data() -> ([f64; 4], [f64; 4]) {
        ([20.0, 30.0, 25.0, 24.0], [1.0, 0.5, 0.7, 0.3])
    }

    #[test]
    fn both_heuristics_produce_valid_assignments() {
        let q = arbitrage(5.0);
        let (values, rates) = ctx_data();
        let ctx = SolveContext::new(&values, &rates);
        for h in [PqHeuristic::HalfAndHalf, PqHeuristic::DifferentSum] {
            let a = general_pq(&q, &ctx, h, PpqMethod::DualDab { mu: 5.0 }).unwrap();
            assert_eq!(a.primary.len(), 4, "{h:?}");
            assert!(
                a.respects_qab(&q, 1e-6),
                "{h:?} must satisfy the general-PQ QAB over its range"
            );
        }
    }

    #[test]
    fn claim1_different_sum_condition_dominates() {
        // DABs feasible for Q' = P1 + P2 : B are feasible for
        // Q = P1 - P2 : B (checked numerically over the box).
        let q = arbitrage(5.0);
        let (values, rates) = ctx_data();
        let ctx = SolveContext::new(&values, &rates);
        let a = general_pq(
            &q,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::OptimalRefresh,
        )
        .unwrap();
        // Worst-case deviation of the SUM bound also bounds the difference.
        let (p1, p2) = q.poly().split_pos_neg();
        let sum = p1.add(&p2);
        let mut dabs = vec![0.0; 4];
        for (&item, &b) in &a.primary {
            dabs[item.index()] = b;
        }
        let dev_sum = sum.max_abs_deviation_over_box(&values, &dabs);
        let dev_diff = q.poly().max_abs_deviation_over_box(&values, &dabs);
        assert!(dev_diff <= dev_sum + 1e-9);
        assert!(dev_sum <= 5.0 + 1e-6);
    }

    #[test]
    fn different_sum_beats_half_and_half_on_modelled_cost() {
        // The B/2-B/2 split is generally suboptimal (§III-B.2); DS should
        // not cost more on the modelled objective for this workload.
        let q = arbitrage(5.0);
        let (values, rates) = ctx_data();
        let ctx = SolveContext::new(&values, &rates);
        let mu = 5.0;
        let hh = general_pq(
            &q,
            &ctx,
            PqHeuristic::HalfAndHalf,
            PpqMethod::DualDab { mu },
        )
        .unwrap();
        let ds = general_pq(
            &q,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::DualDab { mu },
        )
        .unwrap();
        let cost = |a: &QueryAssignment| a.refresh_rate + mu * a.recompute_rate;
        assert!(
            cost(&ds) <= cost(&hh) * 1.05,
            "DS {} vs HH {}",
            cost(&ds),
            cost(&hh)
        );
    }

    #[test]
    fn pure_ppq_skips_the_split() {
        let q = PolynomialQuery::portfolio([(2.0, x(0), x(1))], 5.0).unwrap();
        let values = [10.0, 10.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = general_pq(
            &q,
            &ctx,
            PqHeuristic::HalfAndHalf,
            PpqMethod::OptimalRefresh,
        )
        .unwrap();
        // No halving happened: the assignment saturates the full B = 5.
        let mut dabs = vec![0.0; 2];
        for (&item, &b) in &a.primary {
            dabs[item.index()] = b;
        }
        let dev = q.poly().max_abs_deviation_over_box(&values, &dabs);
        assert!(dev > 4.0, "full budget should be used, got deviation {dev}");
    }

    #[test]
    fn all_negative_polynomial_is_handled() {
        // Q = -x0 x1 : B behaves like x0 x1 : B.
        let q = PolynomialQuery::arbitrage([], [(1.0, x(0), x(1))], 5.0).unwrap();
        let values = [10.0, 10.0];
        let rates = [1.0, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        let a = general_pq(
            &q,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::OptimalRefresh,
        )
        .unwrap();
        assert!(a.respects_qab(&q, 1e-6));
    }

    #[test]
    fn linear_minus_product_mixes_closed_form_and_gp() {
        // Q = x0 - x1 x2 : B (the paper's §III-B example `x - uv`).
        let poly = {
            use pq_poly::{PTerm, Polynomial};
            Polynomial::from_terms([
                PTerm::new(1.0, [(x(0), 1)]).unwrap(),
                PTerm::new(-1.0, [(x(1), 1), (x(2), 1)]).unwrap(),
            ])
        };
        let q = PolynomialQuery::new(poly, 4.0).unwrap();
        let values = [100.0, 10.0, 9.0];
        let rates = [2.0, 0.5, 0.5];
        let ctx = SolveContext::new(&values, &rates);
        let hh = general_pq(
            &q,
            &ctx,
            PqHeuristic::HalfAndHalf,
            PpqMethod::DualDab { mu: 2.0 },
        )
        .unwrap();
        assert!(hh.respects_qab(&q, 1e-6));
        // P1 = x0 is linear: its half contributes no recomputations, so the
        // merged validity is a Box from the P2 side.
        assert!(matches!(hh.validity, ValidityRange::Box(_)));
        let ds = general_pq(
            &q,
            &ctx,
            PqHeuristic::DifferentSum,
            PpqMethod::DualDab { mu: 2.0 },
        )
        .unwrap();
        assert!(ds.respects_qab(&q, 1e-6));
    }

    #[test]
    fn dependent_subpolynomials_still_valid() {
        // P1 and P2 share item x1: Q = x0 x1 - x1 x2 : B (§V-B.2, Fig 8b).
        let q = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(1), x(2))], 3.0).unwrap();
        let values = [15.0, 2.0, 14.0];
        let rates = [1.0, 0.1, 1.0];
        let ctx = SolveContext::new(&values, &rates);
        for h in [PqHeuristic::HalfAndHalf, PqHeuristic::DifferentSum] {
            let a = general_pq(&q, &ctx, h, PpqMethod::DualDab { mu: 5.0 }).unwrap();
            assert!(a.respects_qab(&q, 1e-6), "{h:?}");
        }
    }
}
